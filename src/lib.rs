//! # astdme — Associative Skew Clock Routing
//!
//! A Rust reproduction of *"Associative Skew Clock Routing for Difficult
//! Instances"* (Min-seok Kim, Texas A&M, 2006): the **AST-DME** algorithm,
//! which builds a clock routing tree enforcing skew constraints only within
//! identified groups of sinks, together with the classic substrates it
//! builds on (DME zero-skew routing, bounded-skew BST routing) and the
//! baselines it is evaluated against.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`astdme_core`] (re-exported at the root) — the routing algorithms:
//!   [`AstDme`], [`ExtBst`], [`GreedyDme`], [`StitchPerGroup`], all
//!   implementing [`ClockRouter`]. Every router runs the shared staged
//!   [`pipeline`] (group → merge → embed → repair
//!   → audit); [`ClockRouter::route_traced`] returns the tree together
//!   with its audit report and per-stage [`StageStats`], and
//!   [`route_batch`] fans whole instance portfolios out across
//!   work-stealing threads — scheduled costliest-first by a
//!   [`CostModel`]-driven [`BatchPlan`] — with input-ordered,
//!   bit-identical results and per-instance failure isolation (a
//!   panicking route surfaces as [`RouteError::Panicked`] in its own
//!   slot).
//! * [`instances`] — benchmark instance synthesis (`r1`–`r5` equivalents)
//!   and group partitioners.
//!
//! # Quickstart
//!
//! ```
//! use astdme::{audit, AstDme, ClockRouter, DelayModel, Groups, Instance, Point, RcParams, Sink};
//!
//! // Four sinks in two associated groups (0 and 1), intermingled.
//! let sinks = vec![
//!     Sink::new(Point::new(0.0, 0.0), 1e-14),
//!     Sink::new(Point::new(1000.0, 0.0), 1e-14),
//!     Sink::new(Point::new(0.0, 1000.0), 1e-14),
//!     Sink::new(Point::new(1000.0, 1000.0), 1e-14),
//! ];
//! let groups = Groups::from_assignments(vec![0, 1, 0, 1], 2)?;
//! let inst = Instance::new(sinks, groups, RcParams::default(), Point::new(500.0, 500.0))?;
//!
//! let routed = AstDme::new().route(&inst)?;
//! let report = audit(&routed, &inst, &DelayModel::elmore(*inst.rc()));
//! assert!(report.max_intra_group_skew() < 1e-16); // zero skew within groups
//! # Ok::<(), astdme::RouteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use astdme_core::*;

/// Benchmark instance synthesis: seeded `r1`–`r5` equivalents, clustered and
/// intermingled group partitioners, JSON instance I/O.
pub mod instances {
    pub use astdme_instances::*;
}
