//! Property-based tests for the Manhattan-geometry substrate.
//!
//! These pin down the algebraic identities the embedding engine relies on:
//! the rotation isometry, the metric laws of TRR distance, the exactness of
//! iso-distance merge loci, and nearest-point optimality.

use astdme_geom::{merge_locus, sdr_sample_arcs, Point, Trr};
use proptest::prelude::*;

const TOL: f64 = 1e-7;

fn coord() -> impl Strategy<Value = f64> {
    // Die-scale coordinates, including negatives and zero.
    prop_oneof![Just(0.0), -1e4..1e4f64]
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn trr() -> impl Strategy<Value = Trr> {
    // Random point dilated by a random radius, or a Manhattan arc.
    prop_oneof![
        point().prop_map(Trr::from_point),
        (point(), 0.0..500.0f64).prop_map(|(p, r)| Trr::from_point(p).dilate(r)),
        (point(), -300.0..300.0f64, prop::bool::ANY).prop_map(|(p, d, pos)| {
            let q = if pos {
                Point::new(p.x + d, p.y + d)
            } else {
                Point::new(p.x + d, p.y - d)
            };
            Trr::manhattan_arc(p, q).expect("constructed arc has slope +/-1")
        }),
    ]
}

proptest! {
    #[test]
    fn rotation_is_an_isometry(a in point(), b in point()) {
        let d_real = a.dist(b);
        let d_rot = a.to_rot().dist_linf(b.to_rot());
        prop_assert!((d_real - d_rot).abs() <= TOL * (1.0 + d_real));
    }

    #[test]
    fn rotation_roundtrips(p in point()) {
        prop_assert!(p.approx_eq(p.to_rot().to_real(), 1e-9));
    }

    #[test]
    fn trr_distance_is_symmetric(a in trr(), b in trr()) {
        prop_assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn trr_distance_triangle_inequality(a in trr(), b in trr(), c in trr()) {
        // Set distance satisfies d(a,c) <= d(a,b) + diam(b) + d(b,c).
        let lhs = a.distance(&c);
        let rhs = a.distance(&b) + b.diameter() + b.distance(&c);
        prop_assert!(lhs <= rhs + TOL * (1.0 + rhs.abs()));
    }

    #[test]
    fn dilation_contains_original_and_grows_distance_linearly(a in trr(), b in trr(), r in 0.0..200.0f64) {
        prop_assert!(a.dilate(r).contains_trr(&a, 1e-9));
        let d = a.distance(&b);
        let dd = a.dilate(r).distance(&b);
        prop_assert!((dd - (d - r).max(0.0)).abs() <= TOL * (1.0 + d));
    }

    #[test]
    fn nearest_point_is_optimal_against_corner_samples(t in trr(), p in point()) {
        let n = t.nearest_point(p);
        prop_assert!(t.contains(n, 1e-7));
        let d = t.distance_to_point(p);
        prop_assert!((p.dist(n) - d).abs() <= TOL * (1.0 + d));
        // No corner (or center) is closer.
        for c in t.corners().into_iter().chain([t.center()]) {
            prop_assert!(p.dist(c) >= d - TOL * (1.0 + d));
        }
    }

    #[test]
    fn closest_pair_realizes_set_distance(a in trr(), b in trr()) {
        let (p, q) = a.closest_pair(&b);
        let d = a.distance(&b);
        prop_assert!(a.contains(p, 1e-6));
        prop_assert!(b.contains(q, 1e-6));
        prop_assert!((p.dist(q) - d).abs() <= TOL * (1.0 + d));
    }

    #[test]
    fn exact_split_locus_is_isodistant(a in trr(), b in trr(), f in 0.0..=1.0f64) {
        let d = a.distance(&b);
        prop_assume!(d > 1e-6);
        let ea = f * d;
        let locus = merge_locus(&a, &b, ea, d - ea).expect("exact split is feasible");
        let tol = TOL * (1.0 + d);
        prop_assert!((a.distance(&locus) - ea).abs() <= tol);
        prop_assert!((b.distance(&locus) - (d - ea)).abs() <= tol);
        // Pointwise, too: corners lie at exactly the split distances.
        for c in locus.corners() {
            prop_assert!((a.distance_to_point(c) - ea).abs() <= tol);
            prop_assert!((b.distance_to_point(c) - (d - ea)).abs() <= tol);
        }
    }

    #[test]
    fn snaking_locus_contains_exact_locus(a in trr(), b in trr(), f in 0.0..=1.0f64, extra in 0.0..100.0f64) {
        let d = a.distance(&b);
        prop_assume!(d > 1e-6);
        let ea = f * d;
        let exact = merge_locus(&a, &b, ea, d - ea).unwrap();
        let slack = merge_locus(&a, &b, ea + extra, d - ea + extra).unwrap();
        prop_assert!(slack.contains_trr(&exact, 1e-6));
    }

    #[test]
    fn underfunded_locus_is_none(a in trr(), b in trr()) {
        let d = a.distance(&b);
        prop_assume!(d > 1.0);
        prop_assert!(merge_locus(&a, &b, 0.25 * d, 0.25 * d).is_none());
    }

    #[test]
    fn sdr_samples_lie_on_shortest_paths(a in trr(), b in trr()) {
        let d = a.distance(&b);
        prop_assume!(d > 1e-6);
        for (ea, locus) in sdr_sample_arcs(&a, &b, 6) {
            let tol = TOL * (1.0 + d);
            prop_assert!((a.distance(&locus) - ea).abs() <= tol);
            for c in locus.corners() {
                let through = a.distance_to_point(c) + b.distance_to_point(c);
                prop_assert!((through - d).abs() <= tol);
            }
        }
    }

    #[test]
    fn intersection_is_contained_in_both(a in trr(), b in trr()) {
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_trr(&i, 1e-9));
            prop_assert!(b.contains_trr(&i, 1e-9));
            prop_assert!(a.distance(&b) <= TOL);
        } else {
            prop_assert!(a.distance(&b) > 0.0);
        }
    }

    #[test]
    fn hull_contains_both(a in trr(), b in trr()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_trr(&a, 1e-9));
        prop_assert!(h.contains_trr(&b, 1e-9));
    }

    #[test]
    fn translate_preserves_shape_and_moves_distance_consistently(t in trr(), dx in -100.0..100.0f64, dy in -100.0..100.0f64) {
        let moved = t.translate(dx, dy);
        prop_assert!((moved.half_perimeter() - t.half_perimeter()).abs() <= 1e-9 * (1.0 + t.half_perimeter()));
        let c = t.center();
        let mc = moved.center();
        prop_assert!((mc.x - (c.x + dx)).abs() <= 1e-9 * (1.0 + c.x.abs() + dx.abs()));
        prop_assert!((mc.y - (c.y + dy)).abs() <= 1e-9 * (1.0 + c.y.abs() + dy.abs()));
    }
}
