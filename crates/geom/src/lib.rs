//! Manhattan-plane geometry substrate for deferred-merge clock routing.
//!
//! Clock routing algorithms in the DME/BST family (Chao et al. 1992, Cong et
//! al. 1998) operate in the rectilinear (Manhattan, L1) plane. Their central
//! geometric objects are:
//!
//! * **Manhattan arcs** — line segments of slope ±1 (or single points). The
//!   locus of zero-skew merge points in DME is always a Manhattan arc.
//! * **Tilted rectangular regions (TRRs)** — rectangles whose sides are
//!   Manhattan arcs. The set of points within L1 distance `r` of a Manhattan
//!   arc is a TRR; bounded-skew merging regions are built from TRRs.
//! * **Shortest-distance regions (SDRs)** — the set of points lying on some
//!   shortest rectilinear path between two regions; the merging region used
//!   when subtrees from *different* sink groups merge (Kim 2006, Fig. 3).
//!
//! The crate works in *rotated coordinates* `u = x + y`, `v = x - y`, under
//! which L1 distance becomes L∞ distance, Manhattan arcs become axis-aligned
//! segments, and TRRs become axis-aligned rectangles. All set operations
//! (dilation, intersection, distance, nearest point) then reduce to
//! per-dimension interval arithmetic, which is exact up to floating-point
//! rounding.
//!
//! # Example
//!
//! ```
//! use astdme_geom::{Point, Trr};
//!
//! let a = Trr::from_point(Point::new(0.0, 0.0));
//! let b = Trr::from_point(Point::new(3.0, 1.0));
//! assert_eq!(a.distance(&b), 4.0); // L1 distance
//!
//! // All points reachable with 1 unit of wire from `a` and 3 from `b`:
//! let locus = a.dilate(1.0).intersect(&b.dilate(3.0)).unwrap();
//! assert!(locus.contains(Point::new(1.0, 0.0), 1e-9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod point;
mod rect;
mod sdr;
mod tol;
mod trr;

pub use interval::Interval;
pub use point::{Point, RotPoint};
pub use rect::Rect;
pub use sdr::{merge_locus, sdr_diameter_samples, sdr_outline, sdr_sample_arcs};
pub use tol::{approx_eq, approx_ge, approx_le, DEFAULT_TOL};
pub use trr::Trr;
