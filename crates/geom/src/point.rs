//! Points in the Manhattan plane and their rotated-coordinate images.

use core::fmt;

/// A point in the ordinary (x, y) plane, with distances measured in the L1
/// (Manhattan) metric.
///
/// ```
/// use astdme_geom::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, -1.0);
/// assert_eq!(a.dist(b), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// L1 (Manhattan) distance to `other`.
    #[inline]
    pub fn dist(self, other: Self) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Image of this point under the 45° rotation `u = x + y`, `v = x - y`.
    ///
    /// L1 distance between points equals L∞ distance between their images,
    /// which is what makes TRR arithmetic per-axis.
    #[inline]
    pub fn to_rot(self) -> RotPoint {
        RotPoint {
            u: self.x + self.y,
            v: self.x - self.y,
        }
    }

    /// Componentwise midpoint.
    #[inline]
    pub fn midpoint(self, other: Self) -> Self {
        Self::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// The point translated by `(dx, dy)`.
    #[inline]
    pub fn translated(self, dx: f64, dy: f64) -> Self {
        Self::new(self.x + dx, self.y + dy)
    }

    /// Returns `true` if both coordinates are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol && (self.y - other.y).abs() <= tol
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Self::new(x, y)
    }
}

/// A point in rotated coordinates `u = x + y`, `v = x - y`.
///
/// The rotation is a bijection; [`RotPoint::to_real`] inverts it. L∞
/// distance here equals L1 distance in the real plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RotPoint {
    /// `x + y`.
    pub u: f64,
    /// `x - y`.
    pub v: f64,
}

impl RotPoint {
    /// Creates a rotated-space point.
    #[inline]
    pub fn new(u: f64, v: f64) -> Self {
        Self { u, v }
    }

    /// Maps back to the real plane: `x = (u + v) / 2`, `y = (u - v) / 2`.
    #[inline]
    pub fn to_real(self) -> Point {
        Point::new(0.5 * (self.u + self.v), 0.5 * (self.u - self.v))
    }

    /// L∞ (Chebyshev) distance to `other`; equals the L1 distance between
    /// the corresponding real points.
    #[inline]
    pub fn dist_linf(self, other: Self) -> f64 {
        (self.u - other.u).abs().max((self.v - other.v).abs())
    }
}

impl fmt::Display for RotPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(u={}, v={})", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_roundtrips() {
        let p = Point::new(3.25, -1.5);
        let q = p.to_rot().to_real();
        assert!(p.approx_eq(q, 1e-12));
    }

    #[test]
    fn l1_equals_linf_after_rotation() {
        let cases = [
            (Point::new(0.0, 0.0), Point::new(1.0, 2.0)),
            (Point::new(-5.0, 3.0), Point::new(2.0, 2.0)),
            (Point::new(1.5, 1.5), Point::new(1.5, 1.5)),
        ];
        for (a, b) in cases {
            assert!(
                (a.dist(b) - a.to_rot().dist_linf(b.to_rot())).abs() < 1e-12,
                "mismatch for {a} {b}"
            );
        }
    }

    #[test]
    fn midpoint_is_halfway_in_l1() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 2.0);
        let m = a.midpoint(b);
        assert_eq!(a.dist(m), m.dist(b));
        assert_eq!(a.dist(m) + m.dist(b), a.dist(b));
    }

    #[test]
    fn dist_is_a_metric_on_samples() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
        ];
        for &a in &pts {
            assert_eq!(a.dist(a), 0.0);
            for &b in &pts {
                assert_eq!(a.dist(b), b.dist(a));
                for &c in &pts {
                    assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn translated_shifts_componentwise() {
        let p = Point::new(1.5, -2.0).translated(2.5, 3.0);
        assert_eq!(p, Point::new(4.0, 1.0));
        // Subtracting a coordinate from itself is exactly +0.0, the
        // identity the routing cache's normalization leans on.
        let q = Point::new(7.25, -3.5);
        let n = q.translated(-q.x, -q.y);
        assert_eq!(n.x.to_bits(), 0.0f64.to_bits());
        assert_eq!(n.y.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }
}
