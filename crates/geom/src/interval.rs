//! Closed 1-D intervals `[lo, hi]` with the operations needed for tilted
//! rectangular region (TRR) arithmetic: dilation, intersection, gap, clamp.

use core::fmt;

/// A non-empty closed interval `[lo, hi]` on the real line.
///
/// `Interval` is one axis of a [`crate::Trr`] in rotated coordinates; TRR
/// dilation, intersection and distance all reduce to per-axis interval
/// operations.
///
/// ```
/// use astdme_geom::Interval;
///
/// let a = Interval::new(0.0, 2.0);
/// let b = Interval::new(5.0, 6.0);
/// assert_eq!(a.gap(&b), 3.0);
/// assert_eq!(a.dilate(1.5).intersect(&b.dilate(1.5)).unwrap(), Interval::new(3.5, 3.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN. Use [`Interval::try_new`]
    /// for a fallible constructor.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        Self::try_new(lo, hi)
            .unwrap_or_else(|| panic!("invalid interval [{lo}, {hi}]: need lo <= hi, non-NaN"))
    }

    /// Creates the interval `[lo, hi]`, or `None` if `lo > hi` or a bound is
    /// NaN.
    #[inline]
    pub fn try_new(lo: f64, hi: f64) -> Option<Self> {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            None
        } else {
            Some(Self { lo, hi })
        }
    }

    /// The degenerate interval `[x, x]`.
    #[inline]
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `hi - lo`.
    #[inline]
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// Returns `true` if the interval is a single point (within `tol`).
    #[inline]
    pub fn is_degenerate(&self, tol: f64) -> bool {
        self.len() <= tol
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Returns `true` if `x` lies in `[lo - tol, hi + tol]`.
    #[inline]
    pub fn contains(&self, x: f64, tol: f64) -> bool {
        x >= self.lo - tol && x <= self.hi + tol
    }

    /// Expands both ends by `r >= 0` (Minkowski sum with `[-r, r]`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative or NaN.
    #[inline]
    pub fn dilate(&self, r: f64) -> Self {
        assert!(r >= 0.0, "dilation radius must be non-negative, got {r}");
        Self::new(self.lo - r, self.hi + r)
    }

    /// Shrinks both ends by `r >= 0`, or `None` if the interval vanishes.
    #[inline]
    pub fn shrink(&self, r: f64) -> Option<Self> {
        assert!(r >= 0.0, "shrink radius must be non-negative, got {r}");
        Self::try_new(self.lo + r, self.hi - r)
    }

    /// Intersection with `other`, or `None` if disjoint.
    #[inline]
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        Self::try_new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Smallest interval containing both `self` and `other`.
    #[inline]
    pub fn hull(&self, other: &Self) -> Self {
        Self::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Distance between the intervals: `0` if they overlap, otherwise the
    /// length of the gap separating them.
    #[inline]
    pub fn gap(&self, other: &Self) -> f64 {
        (self.lo - other.hi).max(other.lo - self.hi).max(0.0)
    }

    /// Nearest point of the interval to `x` (i.e. `x` clamped to `[lo, hi]`).
    #[inline]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }

    /// Translates the interval by `dx`.
    #[inline]
    pub fn translate(&self, dx: f64) -> Self {
        Self::new(self.lo + dx, self.hi + dx)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_inverted_and_nan() {
        assert!(Interval::try_new(1.0, 0.0).is_none());
        assert!(Interval::try_new(f64::NAN, 1.0).is_none());
        assert!(Interval::try_new(0.0, f64::NAN).is_none());
        assert!(Interval::try_new(0.0, 0.0).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn new_panics_on_inverted() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn gap_zero_when_overlapping() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.gap(&b), 0.0);
        assert_eq!(b.gap(&a), 0.0);
        // Touching intervals have zero gap.
        let c = Interval::new(2.0, 4.0);
        assert_eq!(a.gap(&c), 0.0);
    }

    #[test]
    fn gap_is_symmetric_and_positive_when_disjoint() {
        let a = Interval::new(-1.0, 0.0);
        let b = Interval::new(2.5, 3.0);
        assert_eq!(a.gap(&b), 2.5);
        assert_eq!(b.gap(&a), 2.5);
    }

    #[test]
    fn dilate_then_shrink_roundtrips() {
        let a = Interval::new(1.0, 4.0);
        assert_eq!(a.dilate(2.0).shrink(2.0).unwrap(), a);
    }

    #[test]
    fn shrink_past_midpoint_vanishes() {
        let a = Interval::new(0.0, 1.0);
        assert!(a.shrink(0.6).is_none());
        assert!(a.shrink(0.5).is_some());
    }

    #[test]
    fn intersect_of_dilations_meets_at_weighted_point() {
        // Dilating two points by radii that exactly cover their gap meets in
        // a single point at distance ea from a.
        let a = Interval::point(0.0);
        let b = Interval::point(10.0);
        let m = a.dilate(3.0).intersect(&b.dilate(7.0)).unwrap();
        assert_eq!(m, Interval::point(3.0));
    }

    #[test]
    fn clamp_and_contains_agree() {
        let a = Interval::new(-2.0, 5.0);
        for x in [-3.0, -2.0, 0.0, 5.0, 9.0] {
            let c = a.clamp(x);
            assert!(a.contains(c, 0.0));
            if a.contains(x, 0.0) {
                assert_eq!(c, x);
            }
        }
    }

    #[test]
    fn hull_contains_both() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(4.0, 6.0);
        let h = a.hull(&b);
        assert_eq!(h, Interval::new(0.0, 6.0));
    }

    #[test]
    fn mid_and_len() {
        let a = Interval::new(2.0, 6.0);
        assert_eq!(a.mid(), 4.0);
        assert_eq!(a.len(), 4.0);
        assert!(!a.is_degenerate(1e-9));
        assert!(Interval::point(3.0).is_degenerate(0.0));
    }

    #[test]
    fn translate_shifts_both_ends() {
        let a = Interval::new(1.0, 2.0).translate(-1.5);
        assert_eq!(a, Interval::new(-0.5, 0.5));
    }
}
