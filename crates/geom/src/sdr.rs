//! Shortest-distance regions and merge loci.
//!
//! When two subtrees from *different* sink groups merge (Kim 2006, Fig. 3),
//! the merging region is the shortest-distance region (SDR) between the two
//! child regions: every point lying on some shortest rectilinear path
//! between them. This module decomposes the SDR into the 1-parameter family
//! of *iso-distance loci*: for each wire split `(ea, eb)` with
//! `ea + eb = distance`, the locus of points exactly `ea` from one region
//! and `eb` from the other. Each locus is a TRR on which delays are
//! constant, which is what lets the engine keep exact per-candidate delay
//! bookkeeping (see `astdme-engine`).

use crate::{Point, Trr};

/// The locus of merge points for electrical wire lengths `ea` to `a` and
/// `eb` to `b`: `a.dilate(ea) ∩ b.dilate(eb)`.
///
/// Returns `None` when `ea + eb < a.distance(&b)` (not enough wire to reach
/// both regions). When `ea + eb` equals the distance the locus is a
/// Manhattan arc (or point) at *exactly* distance `ea` from `a` and `eb`
/// from `b`; when it exceeds the distance the locus is a 2-D TRR whose
/// points are within `ea` of `a` and `eb` of `b` (the slack is routed as a
/// snaking detour during embedding).
///
/// ```
/// use astdme_geom::{merge_locus, Point, Trr};
///
/// let a = Trr::from_point(Point::new(0.0, 0.0));
/// let b = Trr::from_point(Point::new(10.0, 0.0));
/// let m = merge_locus(&a, &b, 4.0, 6.0).unwrap();
/// assert!((a.distance(&m) - 4.0).abs() < 1e-9);
/// assert!(merge_locus(&a, &b, 1.0, 2.0).is_none());
/// ```
pub fn merge_locus(a: &Trr, b: &Trr, ea: f64, eb: f64) -> Option<Trr> {
    debug_assert!(ea >= 0.0 && eb >= 0.0, "wire lengths must be non-negative");
    // `ea + eb` computed by callers as fractions of the distance can land a
    // few ulps short of it; treat deficits within rounding noise as exact
    // splits by padding both radii just enough to meet.
    let d = a.distance(b);
    let deficit = d - (ea + eb);
    let tol = 1e-9 * (1.0 + d.abs());
    if deficit > tol {
        return None;
    }
    let pad = deficit.max(0.0) * 0.5 + f64::EPSILON * (1.0 + d.abs());
    let locus = a
        .dilate(ea + pad)
        .intersect(&b.dilate(eb + pad))
        .expect("padded dilations must intersect");
    Some(locus)
}

/// Samples the SDR between `a` and `b` as `k >= 2` iso-distance loci with
/// splits `ea` evenly spaced on `[0, distance]`.
///
/// The union of all such loci over the continuum of splits is exactly the
/// SDR; sampling discretizes the split, not the locus, so each returned
/// `(ea, locus)` is exact. The first and last entries have `ea = 0` and
/// `ea = distance`, i.e. boundary segments of the child regions themselves.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn sdr_sample_arcs(a: &Trr, b: &Trr, k: usize) -> Vec<(f64, Trr)> {
    assert!(k >= 2, "need at least the two boundary samples");
    let d = a.distance(b);
    (0..k)
        .map(|i| {
            let ea = (d * i as f64 / (k - 1) as f64).min(d);
            let locus = merge_locus(a, b, ea, (d - ea).max(0.0))
                .expect("locus must exist for ea + eb = distance");
            (ea, locus)
        })
        .collect()
}

/// Diameters of sampled iso-distance loci across the SDR; useful to inspect
/// how much positional freedom each split retains.
pub fn sdr_diameter_samples(a: &Trr, b: &Trr, k: usize) -> Vec<f64> {
    sdr_sample_arcs(a, b, k)
        .into_iter()
        .map(|(_, t)| t.diameter())
        .collect()
}

/// Approximate outline of the SDR between `a` and `b` for plotting
/// (Figs. 3–5 of the paper): corner points of `k` sampled loci.
///
/// The outline is returned as an unordered point cloud; callers that need a
/// polygon can hull it. Degenerate loci contribute fewer distinct points.
pub fn sdr_outline(a: &Trr, b: &Trr, k: usize) -> Vec<Point> {
    let mut pts = Vec::with_capacity(4 * k);
    for (_, locus) in sdr_sample_arcs(a, b, k) {
        for c in locus.corners() {
            if !pts.iter().any(|p: &Point| p.approx_eq(c, 1e-9)) {
                pts.push(c);
            }
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn two_point_sdr_is_bounding_box() {
        // For two points, the SDR is their axis-aligned bounding box: every
        // monotone staircase between them is a shortest path.
        let a = Trr::from_point(pt(0.0, 0.0));
        let b = Trr::from_point(pt(4.0, 2.0));
        for (ea, locus) in sdr_sample_arcs(&a, &b, 9) {
            for c in locus.corners() {
                assert!((a.distance_to_point(c) - ea).abs() < 1e-9);
                assert!(c.x >= -1e-9 && c.x <= 4.0 + 1e-9);
                assert!(c.y >= -1e-9 && c.y <= 2.0 + 1e-9);
            }
        }
    }

    #[test]
    fn sample_endpoints_touch_the_regions() {
        let a = Trr::from_point(pt(0.0, 0.0)).dilate(1.0);
        let b = Trr::from_point(pt(8.0, 0.0)).dilate(0.5);
        let samples = sdr_sample_arcs(&a, &b, 5);
        let (ea0, first) = samples.first().unwrap();
        let (ean, last) = samples.last().unwrap();
        assert_eq!(*ea0, 0.0);
        assert_eq!(a.distance(first), 0.0);
        assert!((ean - a.distance(&b)).abs() < 1e-12);
        assert_eq!(b.distance(last), 0.0);
    }

    #[test]
    fn loci_partition_splits_monotonically() {
        let a = Trr::manhattan_arc(pt(0.0, 0.0), pt(2.0, 2.0)).unwrap();
        let b = Trr::manhattan_arc(pt(10.0, 0.0), pt(12.0, -2.0)).unwrap();
        let d = a.distance(&b);
        let samples = sdr_sample_arcs(&a, &b, 7);
        assert_eq!(samples.len(), 7);
        for w in samples.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for (ea, locus) in samples {
            assert!((a.distance(&locus) - ea).abs() < 1e-9);
            assert!((b.distance(&locus) - (d - ea)).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_locus_infeasible_when_underfunded() {
        let a = Trr::from_point(pt(0.0, 0.0));
        let b = Trr::from_point(pt(10.0, 0.0));
        assert!(merge_locus(&a, &b, 4.0, 5.0).is_none());
        assert!(merge_locus(&a, &b, 5.0, 5.0).is_some());
    }

    #[test]
    fn overlapping_regions_have_zero_distance_sdr() {
        let a = Trr::from_point(pt(0.0, 0.0)).dilate(3.0);
        let b = Trr::from_point(pt(1.0, 0.0)).dilate(3.0);
        assert_eq!(a.distance(&b), 0.0);
        let m = merge_locus(&a, &b, 0.0, 0.0).unwrap();
        // Zero-wire merge locus is the intersection itself.
        assert!(a.contains_trr(&m, 1e-12));
        assert!(b.contains_trr(&m, 1e-12));
    }

    #[test]
    fn outline_points_are_on_shortest_paths() {
        let a = Trr::from_point(pt(0.0, 0.0));
        let b = Trr::from_point(pt(6.0, 4.0));
        let d = a.distance(&b);
        for p in sdr_outline(&a, &b, 11) {
            let through = a.distance_to_point(p) + b.distance_to_point(p);
            assert!((through - d).abs() < 1e-9, "{p} not on a shortest path");
        }
    }

    #[test]
    fn diameter_samples_peak_in_the_middle_for_points() {
        // Between two diagonal points the mid-split locus is the longest arc.
        let a = Trr::from_point(pt(0.0, 0.0));
        let b = Trr::from_point(pt(4.0, 4.0));
        let ds = sdr_diameter_samples(&a, &b, 5);
        assert!(ds[2] >= ds[0] && ds[2] >= ds[4]);
    }

    #[test]
    #[should_panic(expected = "at least the two boundary samples")]
    fn sampling_needs_two_points() {
        let a = Trr::from_point(pt(0.0, 0.0));
        let _ = sdr_sample_arcs(&a, &a, 1);
    }
}
