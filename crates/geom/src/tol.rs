//! Floating-point comparison helpers.
//!
//! Clock-routing geometry mixes very different magnitudes (die coordinates in
//! the 1e5 range, skew slacks near zero), so comparisons use an *absolute*
//! tolerance chosen by the caller, with [`DEFAULT_TOL`] as a sensible default
//! for micron-scale coordinates.

/// Default absolute tolerance for geometric predicates on micron-scale
/// coordinates.
///
/// Large benchmark instances have coordinates up to ~1e5 and accumulate at
/// most a few thousand arithmetic operations per coordinate, so 1e-6 absolute
/// leaves ~5 orders of magnitude of headroom above f64 rounding error while
/// staying far below any physically meaningful length.
pub const DEFAULT_TOL: f64 = 1e-6;

/// Returns `true` if `a` and `b` are within `tol` of each other.
///
/// ```
/// # use astdme_geom::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-9, 1e-6));
/// assert!(!approx_eq(1.0, 1.1, 1e-6));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns `true` if `a >= b` up to tolerance (`a` may undershoot by `tol`).
#[inline]
pub fn approx_ge(a: f64, b: f64, tol: f64) -> bool {
    a >= b - tol
}

/// Returns `true` if `a <= b` up to tolerance (`a` may overshoot by `tol`).
#[inline]
pub fn approx_le(a: f64, b: f64, tol: f64) -> bool {
    a <= b + tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_symmetric() {
        assert!(approx_eq(2.0, 2.0 + 0.5e-6, DEFAULT_TOL));
        assert!(approx_eq(2.0 + 0.5e-6, 2.0, DEFAULT_TOL));
    }

    #[test]
    fn approx_ge_le_admit_slack() {
        assert!(approx_ge(0.999_999_5, 1.0, DEFAULT_TOL));
        assert!(approx_le(1.000_000_5, 1.0, DEFAULT_TOL));
        assert!(!approx_ge(0.99, 1.0, DEFAULT_TOL));
        assert!(!approx_le(1.01, 1.0, DEFAULT_TOL));
    }

    #[test]
    fn exact_boundaries_pass() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_ge(1.0, 1.0, 0.0));
        assert!(approx_le(1.0, 1.0, 0.0));
    }
}
