//! Tilted rectangular regions — the workhorse of DME/BST embedding.

use core::fmt;

use crate::{Interval, Point, RotPoint};

/// A tilted rectangular region (TRR): a possibly-degenerate rectangle whose
/// sides have slope ±1 in the real plane, stored as an axis-aligned
/// rectangle `u × v` in rotated coordinates (`u = x + y`, `v = x - y`).
///
/// Degenerate cases are first-class citizens:
///
/// * both axes degenerate → a single **point**;
/// * exactly one axis degenerate → a **Manhattan arc** (segment of slope ±1),
///   the shape of every zero-skew merging segment in DME;
/// * neither degenerate → a 2-D region, as produced by bounded-skew merges
///   and shortest-distance-region decompositions.
///
/// The key algebraic facts used throughout the engine (all exact in this
/// representation, up to f64 rounding):
///
/// * `dilate(r)` is the set of points within L1 distance `r` of the TRR;
/// * `distance` between TRRs is the minimum pairwise L1 distance;
/// * if `ea + eb >= a.distance(&b)` then `a.dilate(ea) ∩ b.dilate(eb)` is a
///   non-empty TRR, and **every** point `p` of it satisfies
///   `d(p, a) <= ea` and `d(p, b) <= eb`, with both distances exactly
///   `ea`/`eb` when `ea + eb` equals the distance.
///
/// ```
/// use astdme_geom::{Point, Trr};
///
/// // A Manhattan arc from (0,0) to (2,2) (slope +1).
/// let arc = Trr::manhattan_arc(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).unwrap();
/// assert!(arc.is_arc(1e-9));
/// assert_eq!(arc.distance(&Trr::from_point(Point::new(4.0, 2.0))), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trr {
    u: Interval,
    v: Interval,
}

impl Trr {
    /// Builds a TRR from rotated-coordinate intervals.
    #[inline]
    pub fn from_rot(u: Interval, v: Interval) -> Self {
        Self { u, v }
    }

    /// The degenerate TRR holding a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        let r = p.to_rot();
        Self {
            u: Interval::point(r.u),
            v: Interval::point(r.v),
        }
    }

    /// A Manhattan arc between two points, or `None` if the segment `p`–`q`
    /// does not have slope ±1 (coincident points are allowed).
    pub fn manhattan_arc(p: Point, q: Point) -> Option<Self> {
        let (rp, rq) = (p.to_rot(), q.to_rot());
        let du = (rp.u - rq.u).abs();
        let dv = (rp.v - rq.v).abs();
        // Slope +1 in real space: u varies, v constant. Slope -1: vice versa.
        // Tolerate tiny rounding in the constant axis.
        let tol = 1e-9 * (1.0 + du.max(dv));
        if dv <= tol {
            Some(Self {
                u: Interval::new(rp.u.min(rq.u), rp.u.max(rq.u)),
                v: Interval::point(0.5 * (rp.v + rq.v)),
            })
        } else if du <= tol {
            Some(Self {
                u: Interval::point(0.5 * (rp.u + rq.u)),
                v: Interval::new(rp.v.min(rq.v), rp.v.max(rq.v)),
            })
        } else {
            None
        }
    }

    /// The `u`-axis interval (rotated coordinates).
    #[inline]
    pub fn u(&self) -> Interval {
        self.u
    }

    /// The `v`-axis interval (rotated coordinates).
    #[inline]
    pub fn v(&self) -> Interval {
        self.v
    }

    /// Returns `true` if the TRR is a single point (within `tol`).
    #[inline]
    pub fn is_point(&self, tol: f64) -> bool {
        self.u.is_degenerate(tol) && self.v.is_degenerate(tol)
    }

    /// Returns `true` if the TRR is a Manhattan arc or point (within `tol`).
    #[inline]
    pub fn is_arc(&self, tol: f64) -> bool {
        self.u.is_degenerate(tol) || self.v.is_degenerate(tol)
    }

    /// Center of the region, in real coordinates.
    #[inline]
    pub fn center(&self) -> Point {
        RotPoint::new(self.u.mid(), self.v.mid()).to_real()
    }

    /// Minkowski dilation by radius `r >= 0`: the set of points within L1
    /// distance `r` of this TRR.
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative or NaN.
    #[inline]
    pub fn dilate(&self, r: f64) -> Self {
        Self {
            u: self.u.dilate(r),
            v: self.v.dilate(r),
        }
    }

    /// Erosion by radius `r >= 0`, or `None` if the region vanishes.
    #[inline]
    pub fn shrink(&self, r: f64) -> Option<Self> {
        Some(Self {
            u: self.u.shrink(r)?,
            v: self.v.shrink(r)?,
        })
    }

    /// Intersection with `other`, or `None` if disjoint.
    #[inline]
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        Some(Self {
            u: self.u.intersect(&other.u)?,
            v: self.v.intersect(&other.v)?,
        })
    }

    /// Minimum L1 distance between the two regions (`0` if they overlap).
    ///
    /// This is the "merging cost" used by DME-family algorithms when
    /// selecting nearest-neighbor subtree pairs.
    #[inline]
    pub fn distance(&self, other: &Self) -> f64 {
        self.u.gap(&other.u).max(self.v.gap(&other.v))
    }

    /// L1 distance from point `p` to the region (`0` if inside).
    #[inline]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.distance(&Self::from_point(p))
    }

    /// Returns `true` if `p` lies in the region, within `tol`.
    #[inline]
    pub fn contains(&self, p: Point, tol: f64) -> bool {
        let r = p.to_rot();
        self.u.contains(r.u, tol) && self.v.contains(r.v, tol)
    }

    /// Returns `true` if `other` is entirely contained in `self` (within
    /// `tol` per axis).
    #[inline]
    pub fn contains_trr(&self, other: &Self, tol: f64) -> bool {
        self.u.lo() <= other.u.lo() + tol
            && self.u.hi() >= other.u.hi() - tol
            && self.v.lo() <= other.v.lo() + tol
            && self.v.hi() >= other.v.hi() - tol
    }

    /// The point of the region nearest to `p` in L1 distance.
    ///
    /// Clamping per rotated axis minimizes the L∞ rotated distance, which
    /// equals the L1 real distance.
    #[inline]
    pub fn nearest_point(&self, p: Point) -> Point {
        let r = p.to_rot();
        RotPoint::new(self.u.clamp(r.u), self.v.clamp(r.v)).to_real()
    }

    /// A pair of points, one in each region, realizing [`Trr::distance`].
    pub fn closest_pair(&self, other: &Self) -> (Point, Point) {
        // Clamp the other's center into self, then clamp that into other,
        // then back: after two clamps the pair is mutually nearest.
        let q0 = other.nearest_point(self.center());
        let p = self.nearest_point(q0);
        let q = other.nearest_point(p);
        (p, q)
    }

    /// Smallest TRR containing both regions.
    #[inline]
    pub fn hull(&self, other: &Self) -> Self {
        Self {
            u: self.u.hull(&other.u),
            v: self.v.hull(&other.v),
        }
    }

    /// Translates the region by `(dx, dy)` in real coordinates.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Self {
        Self {
            u: self.u.translate(dx + dy),
            v: self.v.translate(dx - dy),
        }
    }

    /// Half-perimeter in the L1 metric (`u` extent + `v` extent); `0` for a
    /// point, the arc length for a Manhattan arc.
    #[inline]
    pub fn half_perimeter(&self) -> f64 {
        self.u.len() + self.v.len()
    }

    /// Largest pairwise L1 distance within the region.
    #[inline]
    pub fn diameter(&self) -> f64 {
        self.u.len().max(self.v.len())
    }

    /// The four corners in real coordinates (duplicates collapse for
    /// degenerate regions), in counter-clockwise order.
    pub fn corners(&self) -> [Point; 4] {
        [
            RotPoint::new(self.u.lo(), self.v.lo()).to_real(),
            RotPoint::new(self.u.hi(), self.v.lo()).to_real(),
            RotPoint::new(self.u.hi(), self.v.hi()).to_real(),
            RotPoint::new(self.u.lo(), self.v.hi()).to_real(),
        ]
    }
}

impl From<Point> for Trr {
    #[inline]
    fn from(p: Point) -> Self {
        Self::from_point(p)
    }
}

impl fmt::Display for Trr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TRR{{u: {}, v: {}}}", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn point_trr_distance_is_l1() {
        let a = Trr::from_point(pt(0.0, 0.0));
        let b = Trr::from_point(pt(3.0, 4.0));
        assert_eq!(a.distance(&b), 7.0);
    }

    #[test]
    fn manhattan_arc_detects_slopes() {
        assert!(Trr::manhattan_arc(pt(0.0, 0.0), pt(2.0, 2.0)).is_some());
        assert!(Trr::manhattan_arc(pt(0.0, 0.0), pt(2.0, -2.0)).is_some());
        assert!(Trr::manhattan_arc(pt(0.0, 0.0), pt(2.0, 1.0)).is_none());
        // Coincident points form a degenerate arc.
        let p = Trr::manhattan_arc(pt(1.0, 1.0), pt(1.0, 1.0)).unwrap();
        assert!(p.is_point(1e-12));
    }

    #[test]
    fn dilation_of_point_is_diamond_containing_sphere_boundary() {
        let a = Trr::from_point(pt(0.0, 0.0)).dilate(2.0);
        for p in [pt(2.0, 0.0), pt(0.0, 2.0), pt(-1.0, 1.0), pt(1.5, -0.5)] {
            assert!(a.contains(p, 1e-12), "{p} should be in dilation");
        }
        assert!(!a.contains(pt(1.5, 1.0), 1e-12));
    }

    #[test]
    fn merge_locus_at_exact_split_is_isodistant() {
        // Classic DME merge: dilate by ea and eb with ea + eb = distance.
        let a = Trr::from_point(pt(0.0, 0.0));
        let b = Trr::from_point(pt(6.0, 2.0));
        let d = a.distance(&b);
        assert_eq!(d, 8.0);
        let (ea, eb) = (3.0, 5.0);
        let locus = a.dilate(ea).intersect(&b.dilate(eb)).unwrap();
        assert!(locus.is_arc(1e-12));
        // Every corner of the locus is exactly ea from a and eb from b.
        for c in locus.corners() {
            assert!((a.distance_to_point(c) - ea).abs() < 1e-9);
            assert!((b.distance_to_point(c) - eb).abs() < 1e-9);
        }
    }

    #[test]
    fn snaking_merge_locus_is_two_dimensional() {
        let a = Trr::from_point(pt(0.0, 0.0));
        let b = Trr::from_point(pt(4.0, 0.0));
        // ea + eb exceeds the distance: overlap rectangle.
        let locus = a.dilate(3.0).intersect(&b.dilate(3.0)).unwrap();
        assert!(!locus.is_arc(1e-9));
        for c in locus.corners() {
            assert!(a.distance_to_point(c) <= 3.0 + 1e-9);
            assert!(b.distance_to_point(c) <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn nearest_point_is_contained_and_realizes_distance() {
        let arc = Trr::manhattan_arc(pt(0.0, 0.0), pt(4.0, 4.0)).unwrap();
        let p = pt(5.0, 1.0);
        let n = arc.nearest_point(p);
        assert!(arc.contains(n, 1e-9));
        assert!((p.dist(n) - arc.distance_to_point(p)).abs() < 1e-9);
    }

    #[test]
    fn closest_pair_realizes_distance() {
        let a = Trr::manhattan_arc(pt(0.0, 0.0), pt(2.0, 2.0)).unwrap();
        let b = Trr::manhattan_arc(pt(6.0, 0.0), pt(8.0, -2.0)).unwrap();
        let (p, q) = a.closest_pair(&b);
        assert!(a.contains(p, 1e-9));
        assert!(b.contains(q, 1e-9));
        assert!((p.dist(q) - a.distance(&b)).abs() < 1e-9);
    }

    #[test]
    fn distance_is_zero_iff_intersecting() {
        let a = Trr::from_point(pt(0.0, 0.0)).dilate(2.0);
        let b = Trr::from_point(pt(3.0, 0.0)).dilate(1.0);
        assert_eq!(a.distance(&b), 0.0);
        assert!(a.intersect(&b).is_some());
        let c = Trr::from_point(pt(10.0, 0.0)).dilate(1.0);
        assert!(a.distance(&c) > 0.0);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn contains_trr_subset() {
        let big = Trr::from_point(pt(0.0, 0.0)).dilate(5.0);
        let small = Trr::from_point(pt(1.0, 1.0)).dilate(1.0);
        assert!(big.contains_trr(&small, 1e-12));
        assert!(!small.contains_trr(&big, 1e-12));
    }

    #[test]
    fn corners_of_dilated_point_are_diamond_vertices() {
        let t = Trr::from_point(pt(0.0, 0.0)).dilate(1.0);
        let cs = t.corners();
        let expected = [pt(-1.0, 0.0), pt(0.0, -1.0), pt(1.0, 0.0), pt(0.0, 1.0)];
        for e in expected {
            assert!(
                cs.iter().any(|c| c.approx_eq(e, 1e-9)),
                "missing corner {e}"
            );
        }
    }

    #[test]
    fn translate_moves_center() {
        let t = Trr::from_point(pt(1.0, 2.0))
            .dilate(1.0)
            .translate(3.0, -1.0);
        assert!(t.center().approx_eq(pt(4.0, 1.0), 1e-12));
    }

    #[test]
    fn half_perimeter_and_diameter() {
        let arc = Trr::manhattan_arc(pt(0.0, 0.0), pt(2.0, 2.0)).unwrap();
        // Arc length in L1 is 4 (|dx| + |dy|).
        assert_eq!(arc.half_perimeter(), 4.0);
        assert_eq!(arc.diameter(), 4.0);
        assert_eq!(Trr::from_point(pt(0.0, 0.0)).diameter(), 0.0);
    }
}
