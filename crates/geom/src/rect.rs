//! Axis-aligned rectangles in the real plane.
//!
//! Used for die outlines, clustered group partitioning (Table I of the
//! paper) and the bucketed neighbor index — not for embedding itself, which
//! works with [`crate::Trr`].

use core::fmt;

use crate::Point;

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]` in real coordinates.
///
/// ```
/// use astdme_geom::{Point, Rect};
///
/// let die = Rect::new(0.0, 0.0, 100.0, 50.0);
/// assert!(die.contains(Point::new(10.0, 10.0)));
/// let quads = die.grid(2, 2);
/// assert_eq!(quads.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    /// Creates `[x0, x1] × [y0, y1]`.
    ///
    /// # Panics
    ///
    /// Panics if `x0 > x1`, `y0 > y1`, or any bound is NaN.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(
            x0 <= x1 && y0 <= y1 && !(x0.is_nan() || y0.is_nan() || x1.is_nan() || y1.is_nan()),
            "invalid rect [{x0}, {x1}] x [{y0}, {y1}]"
        );
        Self { x0, y0, x1, y1 }
    }

    /// Smallest rectangle containing all `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let (mut x0, mut y0, mut x1, mut y1) = (first.x, first.y, first.x, first.y);
        for p in it {
            x0 = x0.min(p.x);
            y0 = y0.min(p.y);
            x1 = x1.max(p.x);
            y1 = y1.max(p.y);
        }
        Some(Self::new(x0, y0, x1, y1))
    }

    /// Left edge.
    #[inline]
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// Bottom edge.
    #[inline]
    pub fn y0(&self) -> f64 {
        self.y0
    }

    /// Right edge.
    #[inline]
    pub fn x1(&self) -> f64 {
        self.x1
    }

    /// Top edge.
    #[inline]
    pub fn y1(&self) -> f64 {
        self.y1
    }

    /// Width (`x1 - x0`).
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height (`y1 - y0`).
    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))
    }

    /// Returns `true` if `p` is inside (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Splits the rectangle into a `cols × rows` grid of sub-rectangles,
    /// row-major from the bottom-left.
    ///
    /// This is the clustered-group construction of the paper's first
    /// experiment ("divide each benchmark circuit space into rectangle
    /// boxes as many as the number of sink groups").
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn grid(&self, cols: usize, rows: usize) -> Vec<Rect> {
        assert!(cols > 0 && rows > 0, "grid needs at least one cell");
        let (w, h) = (self.width() / cols as f64, self.height() / rows as f64);
        let mut out = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                out.push(Rect::new(
                    self.x0 + c as f64 * w,
                    self.y0 + r as f64 * h,
                    self.x0 + (c + 1) as f64 * w,
                    self.y0 + (r + 1) as f64 * h,
                ));
            }
        }
        out
    }

    /// Index of the grid cell (as produced by [`Rect::grid`]) containing
    /// `p`, clamping points on the far boundary into the last cell.
    pub fn grid_cell(&self, cols: usize, rows: usize, p: Point) -> usize {
        assert!(cols > 0 && rows > 0, "grid needs at least one cell");
        let fx = if self.width() > 0.0 {
            ((p.x - self.x0) / self.width() * cols as f64).floor() as isize
        } else {
            0
        };
        let fy = if self.height() > 0.0 {
            ((p.y - self.y0) / self.height() * rows as f64).floor() as isize
        } else {
            0
        };
        let cx = fx.clamp(0, cols as isize - 1) as usize;
        let cy = fy.clamp(0, rows as isize - 1) as usize;
        cy * cols + cx
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] x [{}, {}]", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_of_points() {
        let r = Rect::bounding([
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ])
        .unwrap();
        assert_eq!(r, Rect::new(-2.0, -1.0, 4.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn grid_tiles_area_exactly() {
        let die = Rect::new(0.0, 0.0, 10.0, 6.0);
        let cells = die.grid(5, 3);
        assert_eq!(cells.len(), 15);
        let total: f64 = cells.iter().map(|c| c.width() * c.height()).sum();
        assert!((total - 60.0).abs() < 1e-9);
    }

    #[test]
    fn grid_cell_maps_points_consistently() {
        let die = Rect::new(0.0, 0.0, 10.0, 10.0);
        // Every grid cell's center maps back to its own index.
        for (i, cell) in die.grid(4, 3).iter().enumerate() {
            assert_eq!(die.grid_cell(4, 3, cell.center()), i);
        }
        // Far-boundary points clamp into the last cell.
        assert_eq!(die.grid_cell(4, 3, Point::new(10.0, 10.0)), 11);
        // Outside points clamp rather than panic.
        assert_eq!(die.grid_cell(4, 3, Point::new(-5.0, -5.0)), 0);
    }

    #[test]
    fn contains_boundary_inclusive() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(1.0001, 0.5)));
    }

    #[test]
    #[should_panic(expected = "invalid rect")]
    fn inverted_rect_panics() {
        let _ = Rect::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn degenerate_rect_grid_cell() {
        let r = Rect::new(2.0, 3.0, 2.0, 3.0);
        assert_eq!(r.grid_cell(3, 3, Point::new(2.0, 3.0)), 0);
    }
}
