//! Ring-walk queries over the [`GridIndex`]: exact nearest-neighbor and
//! bounded neighborhood visits. Split from the index maintenance in
//! `mod.rs`; the ring visit order is part of the planner's deterministic
//! tie-breaking (see [`for_ring_cells`]).

use astdme_geom::Trr;

use super::GridIndex;

impl GridIndex {
    /// The nearest other item to `region` (excluding `key` itself), by
    /// exact region distance, or `None` if the index has no other items.
    pub fn nearest(&self, key: usize, region: &Trr) -> Option<(usize, f64)> {
        self.nearest_with_hint(key, region, None)
    }

    /// [`GridIndex::nearest`] seeded with a known item and its exact
    /// region distance (it must currently be stored in the index): ring
    /// expansion prunes against the hint from the start, so callers that
    /// already hold a good candidate — the incremental planner refreshing
    /// a surviving neighbor cache — pay only the cells that could beat it.
    /// Ties resolve toward the hint (a strictly closer item replaces it).
    pub fn nearest_with_hint(
        &self,
        key: usize,
        region: &Trr,
        hint: Option<(usize, f64)>,
    ) -> Option<(usize, f64)> {
        if self.len <= 1 {
            return None;
        }
        let center_cell = self.cell_of(region.center());
        // Every populated cell lies within Chebyshev distance `max_ring` of
        // the query cell, so rings beyond it cannot contain items.
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        let mut best: Option<(usize, f64)> = hint;
        for ring in 0..=max_ring {
            // Lower bound on distance for items in this ring: their center
            // is at least (ring - 1) cells away (center-to-center L1 is at
            // least the per-axis gap); region distance trims at most half
            // of each diameter off that.
            let base = ((ring - 1).max(0) as f64) * self.cell_size;
            let ring_lb = base - 0.5 * (self.max_extent + region.diameter());
            if let Some((_, d)) = best {
                if d <= ring_lb {
                    break;
                }
            }
            for_ring_cells(center_cell, ring, |cx, cy| {
                let Some((items, ext)) = self.slot(cx, cy) else {
                    return;
                };
                // The same bound with the cell's own extent: a far-away
                // huge region cannot force item scans here.
                if let Some((_, d)) = best {
                    if d <= base - 0.5 * (ext + region.diameter()) {
                        return;
                    }
                }
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((*k, d));
                    }
                }
            });
        }
        best
    }

    /// The nearest other item to `region` at exact region distance
    /// *strictly below* `bound`, or `None` when nothing beats the bound.
    /// Ring expansion prunes against `bound` from the start, so a tight
    /// bound touches only a handful of cells — the incremental planner
    /// checks every surviving neighbor cache against a small grid of a
    /// round's new subtrees this way, each query bounded by its own
    /// cached distance.
    pub fn nearest_within(&self, key: usize, region: &Trr, bound: f64) -> Option<(usize, f64)> {
        if self.len == 0 {
            return None;
        }
        let center_cell = self.cell_of(region.center());
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        let mut best: Option<(usize, f64)> = None;
        for ring in 0..=max_ring {
            let base = ((ring - 1).max(0) as f64) * self.cell_size;
            let ring_lb = base - 0.5 * (self.max_extent + region.diameter());
            let cap = best.map_or(bound, |(_, d)| d);
            if ring_lb >= cap {
                break;
            }
            for_ring_cells(center_cell, ring, |cx, cy| {
                let Some((items, ext)) = self.slot(cx, cy) else {
                    return;
                };
                let cap = best.map_or(bound, |(_, d)| d);
                if base - 0.5 * (ext + region.diameter()) >= cap {
                    return;
                }
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if d < bound && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((*k, d));
                    }
                }
            });
        }
        best
    }

    /// [`GridIndex::neighbors_within`], additionally skipping cells whose
    /// noted cap ([`GridIndex::note_cap`]) rules every item out: a cell is
    /// visited only if some item in it could lie *strictly closer* than
    /// the cell's own cap. The planner's neighbor-takeover scan uses this
    /// with per-entry cached distances as caps, so the global `bound`
    /// (the largest cached distance anywhere) only sets the ring-walk
    /// horizon while dense regions prune themselves locally.
    pub fn neighbors_within_capped<F: FnMut(usize, f64)>(
        &self,
        key: usize,
        region: &Trr,
        bound: f64,
        mut f: F,
    ) {
        if self.len == 0 {
            return;
        }
        let center_cell = self.cell_of(region.center());
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        for ring in 0..=max_ring {
            let base = ((ring - 1).max(0) as f64) * self.cell_size;
            let ring_lb = base - 0.5 * (self.max_extent + region.diameter());
            if ring_lb > bound {
                break;
            }
            for_ring_cells(center_cell, ring, |cx, cy| {
                let Some((items, ext)) = self.slot(cx, cy) else {
                    return;
                };
                let i = (cy * self.grid_w + cx) as usize;
                let cell_bound = self.cell_caps[i].min(bound);
                if base - 0.5 * (ext + region.diameter()) >= cell_bound {
                    return;
                }
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if d <= bound {
                        f(*k, d);
                    }
                }
            });
        }
    }

    /// Visits every item (other than `key`) whose exact region distance to
    /// `region` is at most `bound`, calling `f(item_key, distance)`.
    /// Ring expansion stops as soon as no unvisited cell can hold an item
    /// within the bound, so tight bounds touch only a few cells.
    pub fn neighbors_within<F: FnMut(usize, f64)>(
        &self,
        key: usize,
        region: &Trr,
        bound: f64,
        mut f: F,
    ) {
        if self.len == 0 {
            return;
        }
        let center_cell = self.cell_of(region.center());
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        for ring in 0..=max_ring {
            let base = ((ring - 1).max(0) as f64) * self.cell_size;
            let ring_lb = base - 0.5 * (self.max_extent + region.diameter());
            if ring_lb > bound {
                break;
            }
            for_ring_cells(center_cell, ring, |cx, cy| {
                let Some((items, ext)) = self.slot(cx, cy) else {
                    return;
                };
                if base - 0.5 * (ext + region.diameter()) > bound {
                    return;
                }
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if d <= bound {
                        f(*k, d);
                    }
                }
            });
        }
    }
}

/// Visits the cells at Chebyshev ring `r` around `center` (just the center
/// for `r = 0`), inline — queries run per merge, so the ring walk must not
/// allocate. The visit order (top/bottom rows interleaved by column, then
/// the side columns) is part of the planner's deterministic tie-breaking:
/// keep it stable.
#[inline]
fn for_ring_cells(center: (i64, i64), r: i64, mut f: impl FnMut(i64, i64)) {
    let (cx, cy) = center;
    if r == 0 {
        f(cx, cy);
        return;
    }
    for dx in -r..=r {
        f(cx + dx, cy - r);
        f(cx + dx, cy + r);
    }
    for dy in (-r + 1)..r {
        f(cx - r, cy + dy);
        f(cx + r, cy + dy);
    }
}
