//! Unit tests for [`GridIndex`] build/maintenance and ring-walk queries.

use super::*;
use astdme_geom::{Point, Trr};

fn pts(coords: &[(f64, f64)]) -> Vec<(usize, Trr)> {
    coords
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| (i, Trr::from_point(Point::new(x, y))))
        .collect()
}

#[test]
fn nearest_matches_bruteforce_on_random_points() {
    // Deterministic pseudo-random layout.
    let mut coords = Vec::new();
    let mut s: u64 = 42;
    for _ in 0..200 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = ((s >> 16) % 10_000) as f64 / 10.0;
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let y = ((s >> 16) % 10_000) as f64 / 10.0;
        coords.push((x, y));
    }
    let items = pts(&coords);
    let idx = GridIndex::build(&items);
    for (key, region) in &items {
        let (nn, d) = idx.nearest(*key, region).unwrap();
        // Brute force.
        let (bf, bd) = items
            .iter()
            .filter(|(k, _)| k != key)
            .map(|(k, t)| (*k, region.distance(t)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            (d - bd).abs() < 1e-9,
            "key {key}: grid found {nn}@{d}, brute force {bf}@{bd}"
        );
    }
}

#[test]
fn nearest_none_for_single_item() {
    let items = pts(&[(0.0, 0.0)]);
    let idx = GridIndex::build(&items);
    assert!(idx.nearest(0, &items[0].1).is_none());
}

#[test]
fn insert_remove_roundtrip() {
    let items = pts(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
    let mut idx = GridIndex::build(&items);
    assert_eq!(idx.len(), 3);
    assert!(idx.remove(1, &items[1].1));
    assert!(!idx.remove(1, &items[1].1));
    assert_eq!(idx.len(), 2);
    let (nn, d) = idx.nearest(0, &items[0].1).unwrap();
    assert_eq!(nn, 2);
    assert_eq!(d, 20.0);
    idx.insert(1, items[1].1);
    let (nn, _) = idx.nearest(0, &items[0].1).unwrap();
    assert_eq!(nn, 1);
}

#[test]
fn regions_with_extent_use_region_distance() {
    // A big region whose center is far but whose edge is near.
    let a = (0usize, Trr::from_point(Point::new(0.0, 0.0)));
    let big = (1usize, Trr::from_point(Point::new(100.0, 0.0)).dilate(95.0));
    let far = (2usize, Trr::from_point(Point::new(30.0, 0.0)));
    let items = vec![a, big, far];
    let idx = GridIndex::build(&items);
    let (nn, d) = idx.nearest(0, &items[0].1).unwrap();
    assert_eq!(nn, 1, "the dilated region is nearer by set distance");
    assert!((d - 5.0).abs() < 1e-9);
}

#[test]
fn neighbors_within_finds_exactly_the_in_range_items() {
    let items = pts(&[
        (0.0, 0.0),
        (10.0, 0.0),
        (25.0, 0.0),
        (100.0, 0.0),
        (31.0, 0.0),
    ]);
    let idx = GridIndex::build(&items);
    let mut found: Vec<(usize, f64)> = Vec::new();
    idx.neighbors_within(0, &items[0].1, 30.0, |k, d| found.push((k, d)));
    found.sort_by_key(|&(k, _)| k);
    assert_eq!(found, vec![(1, 10.0), (2, 25.0)]);
    // Zero bound: only exact-contact items; none here.
    let mut none = 0;
    idx.neighbors_within(3, &items[3].1, 1.0, |_, _| none += 1);
    assert_eq!(none, 0);
}

#[test]
fn clustered_points_found_across_cells() {
    let items = pts(&[
        (0.0, 0.0),
        (1000.0, 1000.0),
        (1000.5, 1000.5),
        (2000.0, 0.0),
    ]);
    let idx = GridIndex::build(&items);
    let (nn, _) = idx.nearest(1, &items[1].1).unwrap();
    assert_eq!(nn, 2);
    let (nn0, d0) = idx.nearest(0, &items[0].1).unwrap();
    assert_eq!(nn0, 1);
    assert!((d0 - 2000.0).abs() < 1e-9);
}
