//! Bucketed neighbor index over subtree root regions.

use astdme_geom::{Point, Trr};

/// A uniform-grid index over region center points, answering approximate
/// nearest-neighbor queries by exact region distance.
///
/// Regions are bucketed by center into a **flat dense cell array** (row
/// major over the build-time bounding box — a cell visit is an array index,
/// never a hash); queries expand rings of cells outward and stop once no
/// unvisited cell can beat the best exact distance found (accounting for
/// region extents). Items inserted after the build whose center falls
/// outside the original box are clamped into the border cells, which only
/// ever *under*-estimates their ring distance — conservative, so queries
/// stay exact. Used by the merge planners to avoid all-pairs scans.
///
/// ```
/// use astdme_geom::{Point, Trr};
/// use astdme_topo::GridIndex;
///
/// let items = vec![
///     (7, Trr::from_point(Point::new(0.0, 0.0))),
///     (9, Trr::from_point(Point::new(10.0, 0.0))),
///     (4, Trr::from_point(Point::new(100.0, 100.0))),
/// ];
/// let idx = GridIndex::build(&items);
/// let (nn, d) = idx.nearest(7, &items[0].1).unwrap();
/// assert_eq!(nn, 9);
/// assert_eq!(d, 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Row-major `(grid_w × grid_h)` cells.
    cells: Vec<Vec<(usize, Trr)>>,
    /// Largest region diameter per cell (conservative: never shrunk on
    /// removal). Ring walks prune whole cells against this before touching
    /// their items, so one huge region only taxes queries near *its* cell,
    /// not the `max_extent` bound of every query in the index.
    cell_exts: Vec<f64>,
    /// Per-cell caller-attached caps ([`GridIndex::note_cap`]; zero until
    /// noted, reset by `build`). The incremental planner notes each
    /// entry's cached nearest-neighbor distance here, which lets
    /// [`GridIndex::neighbors_within_capped`] skip cells whose entries all
    /// hold caches tighter than their distance to the query — the
    /// neighbor-takeover scan then pays for the query's *local*
    /// neighborhood instead of the global worst cache.
    cell_caps: Vec<f64>,
    grid_w: i64,
    grid_h: i64,
    cell_size: f64,
    origin: Point,
    max_extent: f64,
    len: usize,
    // Populated cell bounds (conservative: never shrunk on removal).
    cell_min: (i64, i64),
    cell_max: (i64, i64),
}

mod query;

#[cfg(test)]
mod tests;

impl GridIndex {
    /// Builds an index over `(key, region)` items.
    ///
    /// Keys must be unique; duplicates make `nearest` results ambiguous.
    pub fn build(items: &[(usize, Trr)]) -> Self {
        let n = items.len().max(1);
        let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
        for (_, t) in items {
            let c = t.center();
            x0 = x0.min(c.x);
            y0 = y0.min(c.y);
            x1 = x1.max(c.x);
            y1 = y1.max(c.y);
        }
        if items.is_empty() {
            (x0, y0, x1, y1) = (0.0, 0.0, 1.0, 1.0);
        }
        // ~1-2 items per cell on average; for degenerate (e.g. collinear)
        // layouts the area underestimates spacing badly, so also respect
        // the per-axis average spacing, and never go below a sane floor.
        let (w, h) = (x1 - x0, y1 - y0);
        let cell_size = (w * h / n as f64)
            .sqrt()
            .max(w / n as f64)
            .max(h / n as f64)
            .max(1e-9 * (1.0 + w.max(h)))
            .max(1e-9);
        let max_extent = items
            .iter()
            .map(|(_, t)| t.diameter())
            .fold(0.0f64, f64::max);
        let grid_w = ((w / cell_size).floor() as i64 + 1).max(1);
        let grid_h = ((h / cell_size).floor() as i64 + 1).max(1);
        let mut g = Self {
            cells: vec![Vec::new(); (grid_w * grid_h) as usize],
            cell_exts: vec![0.0; (grid_w * grid_h) as usize],
            cell_caps: vec![0.0; (grid_w * grid_h) as usize],
            grid_w,
            grid_h,
            cell_size,
            origin: Point::new(x0, y0),
            max_extent,
            len: 0,
            cell_min: (i64::MAX, i64::MAX),
            cell_max: (i64::MIN, i64::MIN),
        };
        for (key, trr) in items {
            g.insert(*key, *trr);
        }
        g
    }

    /// The cell coordinates of `p`, clamped into the dense array. Clamping
    /// moves a cell *toward* any query center, so ring lower bounds only
    /// under-estimate — conservative for exactness.
    fn cell_of(&self, p: Point) -> (i64, i64) {
        let cx = ((p.x - self.origin.x) / self.cell_size).floor() as i64;
        let cy = ((p.y - self.origin.y) / self.cell_size).floor() as i64;
        (cx.clamp(0, self.grid_w - 1), cy.clamp(0, self.grid_h - 1))
    }

    /// The items of cell `(cx, cy)` together with the cell's extent bound,
    /// or `None` when the cell is outside the grid or empty.
    #[inline]
    fn slot(&self, cx: i64, cy: i64) -> Option<(&[(usize, Trr)], f64)> {
        if cx < 0 || cy < 0 || cx >= self.grid_w || cy >= self.grid_h {
            return None;
        }
        let i = (cy * self.grid_w + cx) as usize;
        if self.cells[i].is_empty() {
            return None;
        }
        Some((&self.cells[i], self.cell_exts[i]))
    }

    /// Inserts an item.
    pub fn insert(&mut self, key: usize, region: Trr) {
        self.max_extent = self.max_extent.max(region.diameter());
        let cell = self.cell_of(region.center());
        self.cell_min = (self.cell_min.0.min(cell.0), self.cell_min.1.min(cell.1));
        self.cell_max = (self.cell_max.0.max(cell.0), self.cell_max.1.max(cell.1));
        let i = (cell.1 * self.grid_w + cell.0) as usize;
        self.cells[i].push((key, region));
        self.cell_exts[i] = self.cell_exts[i].max(region.diameter());
        self.len += 1;
    }

    /// Removes an item by key; returns `true` if it was present.
    pub fn remove(&mut self, key: usize, region: &Trr) -> bool {
        let cell = self.cell_of(region.center());
        let v = &mut self.cells[(cell.1 * self.grid_w + cell.0) as usize];
        if let Some(i) = v.iter().position(|(k, _)| *k == key) {
            v.swap_remove(i);
            self.len -= 1;
            return true;
        }
        false
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The largest region diameter ever inserted (conservative: never
    /// shrunk on removal). Query ring bounds derive from it, so callers
    /// maintaining an index long-term (the incremental planner) watch this
    /// to decide when a rebuild pays off.
    pub fn max_extent(&self) -> f64 {
        self.max_extent
    }

    /// The cell edge length: the scale against which region extents are
    /// "large" for this index (ring walks lengthen once extents pass it).
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Returns `true` if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raises the cap of the cell containing `region`'s center to at least
    /// `value` (see [`GridIndex::neighbors_within_capped`]). Caps only
    /// ever grow between builds — conservative under removals and
    /// re-pointed caches — and `build` resets them to zero, so long-lived
    /// callers must re-note after a rebuild.
    pub fn note_cap(&mut self, region: &Trr, value: f64) {
        let cell = self.cell_of(region.center());
        let i = (cell.1 * self.grid_w + cell.0) as usize;
        if value > self.cell_caps[i] {
            self.cell_caps[i] = value;
        }
    }
}
