//! The incremental merge planner: near-linear bottom-up merge ordering.
//!
//! [`plan_round`](crate::plan_round) is a from-scratch planner: every call
//! rebuilds the grid index, re-queries every nearest neighbor, and re-ranks
//! every pair, making the driving loop O(n²)–O(n³) over a whole routing
//! run. [`MergePlanner`] keeps that work alive across rounds:
//!
//! * the [`GridIndex`] is built **once** and maintained by removal and
//!   insertion (with amortized rebuilds when the active set halves or
//!   region extents outgrow the cell size, keeping queries local);
//! * each active subtree caches its nearest neighbor; a merge invalidates
//!   only the entries whose neighbor was consumed (re-queried against the
//!   grid) plus a bounded grid range query deciding whether the newly
//!   created subtree became anyone's nearest neighbor (bounded by the
//!   largest cached neighbor distance, tracked in a lazy max-heap);
//! * candidate pairs live in a lazy min-heap keyed by (score, keys), so a
//!   greedy round peeks the best live pair in O(1)-ish time — no sorting,
//!   no ordered-set rebalancing, stale entries dropped on contact;
//! * the active set itself is a dense vector with a position map —
//!   removal is `swap_remove`, never an O(n) `retain`.
//!
//! # Batched maintenance and the dense-key invariant
//!
//! Merges are reported back per **round** via
//! [`MergePlanner::apply_round`] (with [`MergePlanner::apply_merge`] as
//! the single-merge convenience): the whole round's removals and
//! insertions are applied first, then *one* maintenance sweep runs —
//! a single `current_max_rd` bound computation, one bounded takeover
//! range-query per new subtree against the final grid, and one amortized
//! rebuild check — instead of per-merge churn. When a round replaces a
//! large fraction of the active set (Edahiro-style multi-merging pairs
//! off ~a quarter of the subtrees per round), incremental patching is
//! slower than starting over, so past [`ROUND_REFRESH_DIVISOR`] the sweep
//! switches to a **refresh**: patch the grid per merge (amortized rebuilds
//! as usual) and re-derive every neighbor cache, reusing the cached pair
//! score whenever
//! a subtree's neighbor did not change (which skips the expensive exact
//! `MergeSpace::distance` refinement — the bulk of a from-scratch round).
//!
//! All per-key state lives in flat vectors indexed by key (`NO_POS`
//! sentinel for inactive): the planner assumes **dense keys** — merged
//! subtrees get fresh keys that grow by roughly one per merge, as forest
//! node indices do — so a `Vec` position map replaces the old `HashMap`s
//! (`pos`, `pair_info`, `rev`) without a memory blow-up, and steady-state
//! maintenance performs no hashing and (thanks to recycled back-reference
//! buffers) no allocation. Pair scores are stored on the neighbor cache
//! itself: a pair is in the ranking set iff at least one endpoint caches
//! the other, and both endpoints derive bit-identical score keys, so the
//! old refcounted `pair_info` map is redundant.
//!
//! The planner produces the **same pair sequence** as the from-scratch
//! reference on every instance (modulo exact ties in region distance,
//! which are measure-zero for real placements): below
//! `BRUTE_FORCE_CUTOFF` active subtrees it delegates to `plan_round`
//! outright, and above it the cached neighbors are exactly the neighbors a
//! fresh grid query would return. The equivalence — and the equivalence of
//! batched `apply_round` to a sequence of `apply_merge` calls — is pinned
//! down by the property tests in `tests/planner_equiv.rs`.
//!
//! # Module map
//!
//! | module | contents |
//! |---|---|
//! | [`mod@self`] | [`MergePlanner`]: construction, accessors, [`MergePlanner::plan_round`] / [`MergePlanner::apply_round`] orchestration |
//! | `keys` | the dense key tables: position map growth, active-set removal/insertion, back-reference invalidation |
//! | `pairs` | the pair ranking: score folding, the lazy min-heap, the flat post-refresh ranking, round selection |
//! | `points` | the point-update maintenance path: dirty-cache flushes, neighbor takeover scans, the takeover bound |
//! | `refresh` | bulk maintenance: the initial derivation, the multi-merge refresh sweep, amortized grid rebuilds |
//! | `tail` | the brute-force tail below the cutoff, with its memoized distance matrix |

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use astdme_geom::Trr;

use crate::plan::{round_limit, select_disjoint, BRUTE_FORCE_CUTOFF};
use crate::{GridIndex, MaybeSync, MergeSpace, TopoConfig};

mod keys;
mod pairs;
mod points;
mod refresh;
mod tail;
#[cfg(test)]
mod tests;

use tail::BfMemo;

/// Sentinel in the dense `pos` map: the key is not active.
const NO_POS: u32 = u32::MAX;

/// Sentinel in the `dirty` list: no re-query seed available.
const NO_HINT: usize = usize::MAX;

/// When one round's merges replace at least `1/ROUND_REFRESH_DIVISOR` of
/// the surviving active set, [`MergePlanner::apply_round`] refreshes the
/// whole neighbor structure instead of patching it: the patching constant
/// (takeover range queries, invalidation re-queries) exceeds the refresh
/// cost once most caches are invalidated anyway. Multi-merge rounds
/// (fraction ≥ ~1/8) always refresh; greedy rounds (one merge) never do
/// above the brute-force cutoff.
const ROUND_REFRESH_DIVISOR: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Nn {
    /// The neighbor's key.
    key: usize,
    /// Representative-region distance to it (the grid's metric, used to
    /// decide whether a new subtree supersedes the cached neighbor).
    region_dist: f64,
    /// Folded score bits of the `(lo, hi)` pair this cache references.
    /// Both endpoints of a pair derive bit-identical scores (the exact
    /// distance is symmetric), so membership of the pair in the ranking
    /// set is simply "some endpoint caches the other" — no refcount map.
    score: u64,
}

#[derive(Debug)]
struct Entry {
    key: usize,
    region: Trr,
    nn: Option<Nn>,
}

/// One row of [`MergePlanner::nn_snapshot`]: an active subtree plus its
/// cached nearest neighbor, if one is cached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnSnapshotRow {
    /// The active subtree's key.
    pub key: usize,
    /// Cached neighbor as `(neighbor key, region distance, folded score
    /// bits)` — the exact triple the planner ranks the pair by (see
    /// [`score_bits`](crate::score_bits)).
    pub nn: Option<(usize, f64, u64)>,
}

/// Stateful, incremental merge planner (see the module docs).
///
/// Drive it with [`MergePlanner::plan_round`] /
/// [`MergePlanner::apply_round`] (or per-merge
/// [`MergePlanner::apply_merge`]):
///
/// ```
/// use astdme_geom::{Point, Trr};
/// use astdme_topo::{MergePlanner, MergeSpace, TopoConfig};
///
/// struct Pts(Vec<Point>);
/// impl MergeSpace for Pts {
///     fn region(&self, id: usize) -> Trr { Trr::from_point(self.0[id]) }
///     fn distance(&self, a: usize, b: usize) -> f64 { self.0[a].dist(self.0[b]) }
///     fn delay(&self, _id: usize) -> f64 { 0.0 }
/// }
///
/// let mut space = Pts(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(10.0, 0.0),
/// ]);
/// let mut planner = MergePlanner::new(&space, &[0, 1, 2], TopoConfig::greedy());
/// while planner.len() > 1 {
///     let mut round = Vec::new();
///     for (a, b) in planner.plan_round(&space) {
///         // "Merge": a new point midway, registered as a fresh key.
///         let m = space.0.len();
///         let (pa, pb) = (space.0[a], space.0[b]);
///         space.0.push(Point::new(0.5 * (pa.x + pb.x), 0.5 * (pa.y + pb.y)));
///         round.push((a, b, m));
///     }
///     planner.apply_round(&space, &round);
/// }
/// assert_eq!(planner.len(), 1);
/// ```
#[derive(Debug)]
pub struct MergePlanner {
    cfg: TopoConfig,
    entries: Vec<Entry>,
    /// key → index into `entries` (`NO_POS` = inactive). Flat and dense:
    /// see the module docs for the dense-key invariant.
    pos: Vec<u32>,
    grid: GridIndex,
    /// Active count and max extent at the last grid (re)build; when the
    /// set halves or extents quadruple, the grid is rebuilt so cell size
    /// and query bounds track the surviving subtrees.
    built_len: usize,
    built_extent: f64,
    /// Current nearest-neighbor pairs as a lazy min-heap over
    /// `(score, lo, hi)` — the exact ranking the from-scratch planner
    /// sorts into. Entries are never removed eagerly: a pair is live iff
    /// some endpoint still caches the other at the recorded score
    /// ([`MergePlanner::pair_live`]); stale tops are popped at selection.
    /// Lazy deletion beats an ordered set here because the point-update
    /// path only ever needs the *minimum* live pair (greedy rounds), so
    /// maintenance is an O(1)-ish push instead of tree rebalancing.
    /// Unused (empty) while `sorted_valid`: a refresh stores the ranking
    /// as the flat `sorted_pairs` instead, and the heap is only
    /// materialized when the incremental maintenance path next needs
    /// point updates ([`MergePlanner::ensure_heap`]).
    pairs: BinaryHeap<Reverse<(u64, usize, usize)>>,
    /// Sorted, deduplicated pair ranking as of the last refresh; the
    /// active representation while `sorted_valid`. Selection walks this
    /// vector — no tree nodes are built in the refresh regime, where the
    /// whole ranking is replaced every round anyway.
    sorted_pairs: Vec<(u64, usize, usize)>,
    sorted_valid: bool,
    /// key → keys whose cached neighbor is that key (lazily validated),
    /// dense-indexed like `pos`. Inner buffers are recycled through
    /// `rev_pool` when their key is consumed.
    rev: Vec<Vec<u32>>,
    rev_pool: Vec<Vec<u32>>,
    /// Keys whose neighbor cache must be refilled from the grid, paired
    /// with a seed hint (`NO_HINT` when there is none): the key of the
    /// merged subtree that consumed the old neighbor. The merge result
    /// sits where the old neighbor was, so seeding the re-query with it
    /// collapses the ring expansion to the immediate neighborhood.
    dirty: Vec<(usize, usize)>,
    /// Lazy max-heap over `(region_dist bits, key)` of every cached
    /// neighbor ever set; stale tops are popped on demand. Its maximum
    /// bounds how far a new subtree can "take over" an existing cache,
    /// which bounds the insertion range query.
    rd_heap: BinaryHeap<(u64, usize)>,
    /// Reused round buffers (new keys of the round; takeover victims).
    round_new: Vec<usize>,
    takeover_buf: Vec<(usize, f64)>,
    /// Reused refresh staging: consumed key → merge result, sorted.
    consumed_buf: Vec<(usize, usize)>,
    /// Reused refresh staging: per new key (offset by the round's smallest
    /// new key), the first sweep entry that picked it as neighbor plus
    /// their region distance — the seed for the new key's own re-query.
    seed_buf: Vec<(u32, f64)>,
    /// Memoized exact pair distances for the brute-force tail
    /// (`n <=` [`BRUTE_FORCE_CUTOFF`]). Subtrees are immutable, so entries
    /// never go stale; the matrix stays tiny (pairs among the final few
    /// dozen subtrees).
    bf_cache: BfMemo,
    /// Whether `rev` and `rd_heap` reflect the current caches. A refresh
    /// re-derives every cache without maintaining either (the refresh
    /// regime never reads them); the point-update path rebuilds both on
    /// demand ([`MergePlanner::ensure_point_mode`]).
    point_valid: bool,
    /// Set by [`MergePlanner::new`], cleared by the first flush or apply:
    /// while fresh, the initial neighbor derivation can go through the
    /// bulk path ([`MergePlanner::bulk_derive`]) instead of per-entry
    /// point updates.
    fresh: bool,
}

impl MergePlanner {
    /// Builds a planner over the subtrees in `active` (keys must be
    /// unique). Costs one grid build plus one neighbor query per subtree —
    /// the same work as a single from-scratch round.
    pub fn new<S: MergeSpace>(space: &S, active: &[usize], cfg: TopoConfig) -> Self {
        let entries: Vec<Entry> = active
            .iter()
            .map(|&k| Entry {
                key: k,
                region: space.region(k),
                nn: None,
            })
            .collect();
        let items: Vec<(usize, Trr)> = entries.iter().map(|e| (e.key, e.region)).collect();
        let grid = GridIndex::build(&items);
        let max_key = active.iter().copied().max().unwrap_or(0);
        assert!(max_key < NO_POS as usize, "planner keys must fit u32");
        let mut pos = vec![NO_POS; max_key + 1];
        for (i, e) in entries.iter().enumerate() {
            // Hard assert (matching merge_until_one_from_scratch): a
            // duplicate key would silently corrupt `pos`/the grid and hang
            // the merge loop in release builds.
            assert!(pos[e.key] == NO_POS, "duplicate planner key {}", e.key);
            pos[e.key] = i as u32;
        }
        let built_extent = grid.max_extent();
        let dirty = entries.iter().map(|e| (e.key, NO_HINT)).collect();
        let rev = vec![Vec::new(); pos.len()];
        Self {
            cfg,
            built_len: entries.len(),
            entries,
            pos,
            grid,
            built_extent,
            pairs: BinaryHeap::new(),
            sorted_pairs: Vec::new(),
            sorted_valid: false,
            rev,
            rev_pool: Vec::new(),
            dirty,
            rd_heap: BinaryHeap::new(),
            round_new: Vec::new(),
            takeover_buf: Vec::new(),
            consumed_buf: Vec::new(),
            seed_buf: Vec::new(),
            bf_cache: BfMemo::default(),
            point_valid: true,
            fresh: true,
        }
    }

    /// Number of active subtrees.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no subtrees remain (only possible before any were added).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The single surviving key.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one subtree remains.
    pub fn sole_key(&self) -> usize {
        assert_eq!(
            self.entries.len(),
            1,
            "planner still holds multiple subtrees"
        );
        self.entries[0].key
    }

    /// Whether the planner is above the brute-force cutoff, i.e. the last
    /// [`MergePlanner::plan_round`] at the current size went through the
    /// grid-backed nearest-neighbor caches (whose state
    /// [`MergePlanner::nn_snapshot`] captures) rather than the exact
    /// all-pairs tail.
    pub fn in_grid_regime(&self) -> bool {
        self.entries.len() > BRUTE_FORCE_CUTOFF
    }

    /// Snapshot of every active subtree's cached nearest neighbor, in the
    /// planner's internal active order (the order exact ties break by).
    ///
    /// Meaningful immediately after [`MergePlanner::plan_round`] in the
    /// grid regime (see [`MergePlanner::in_grid_regime`]), when every
    /// cache has just been flushed: the rows are then exactly the pair
    /// ranking the round was selected from. Replay drivers (the ECO flush
    /// path) record this per round to re-derive later rounds without
    /// re-planning.
    pub fn nn_snapshot(&self) -> Vec<NnSnapshotRow> {
        self.entries
            .iter()
            .map(|e| NnSnapshotRow {
                key: e.key,
                nn: e.nn.map(|nn| (nn.key, nn.region_dist, nn.score)),
            })
            .collect()
    }

    /// Plans one merge round over the current active set: disjoint pairs,
    /// best first, exactly as [`plan_round`](crate::plan_round) would
    /// return them. Does not modify the active set — report merges back
    /// via [`MergePlanner::apply_round`] / [`MergePlanner::apply_merge`].
    pub fn plan_round<S: MergeSpace + MaybeSync>(&mut self, space: &S) -> Vec<(usize, usize)> {
        let n = self.entries.len();
        if n < 2 {
            return Vec::new();
        }
        if n <= BRUTE_FORCE_CUTOFF {
            return self.plan_tail(space);
        }
        self.flush_dirty(space);
        let limit = round_limit(self.cfg.order, n);
        if self.sorted_valid {
            select_disjoint(self.sorted_pairs.iter().map(|&(_, a, b)| (a, b)), limit)
        } else {
            self.select_from_heap(limit)
        }
    }

    /// Records that subtrees `a` and `b` were merged into the new subtree
    /// `merged`. Equivalent to `apply_round(space, &[(a, b, merged)])` —
    /// batch a whole round through [`MergePlanner::apply_round`] when it
    /// has more than one merge.
    pub fn apply_merge<S: MergeSpace>(&mut self, space: &S, a: usize, b: usize, merged: usize) {
        self.apply_round(space, &[(a, b, merged)]);
    }

    /// Applies one whole round of merges `(a, b, merged)` and then runs a
    /// single maintenance sweep: one combined invalidation pass, one
    /// takeover bound, one bounded range query per new subtree, and one
    /// amortized grid-upkeep check — or a wholesale refresh when the round
    /// replaced a large fraction of the active set (see the module docs).
    ///
    /// Produces the same observable state as applying the merges one at a
    /// time (modulo exact region-distance ties).
    pub fn apply_round<S: MergeSpace>(&mut self, space: &S, merges: &[(usize, usize, usize)]) {
        if merges.is_empty() {
            return;
        }
        self.fresh = false;
        // Each merge nets one fewer active subtree.
        let final_len = self.entries.len() - merges.len();
        if merges.len() * ROUND_REFRESH_DIVISOR >= final_len {
            // A round this large (multi-merge) invalidates nearly every
            // cache — merged subtrees are exactly the popular neighbors —
            // so patching would re-derive almost everything through the
            // point-update machinery. The refresh rebuilds the ranking and
            // every cache in bulk instead (seeded by this round's merges);
            // the per-merge bookkeeping that would be thrown away (pair
            // unreferencing, back-reference invalidation, takeover
            // queries) is skipped here — only the active set and the grid
            // are updated.
            for &(a, b, m) in merges {
                self.drop_key(a);
                self.drop_key(b);
                self.add_key_deferred(space, m);
            }
            self.refresh(space, merges);
            return;
        }
        self.ensure_point_mode();
        let mut fresh = std::mem::take(&mut self.round_new);
        fresh.clear();
        for &(a, b, m) in merges {
            // `m` seeds the re-queries of caches that pointed at `a`/`b`.
            self.remove_key(a, m);
            self.remove_key(b, m);
            self.register_key(space, m);
            fresh.push(m);
        }
        // Neighbor takeover: a new subtree may now be the nearest
        // neighbor (by region distance, the grid's metric) of existing
        // entries. Only entries whose cached neighbor is *farther*
        // than the new region can be affected.
        if merges.len() == 1 {
            // One new subtree: a single grid range query bounded by the
            // largest cached distance finds every victim.
            if let Some(bound) = self.current_max_rd() {
                for &m in &fresh {
                    self.takeover_from(space, m, bound);
                }
            }
        } else {
            self.takeover_round(space, &fresh);
        }
        self.maybe_rebuild();
        self.round_new = fresh;
    }
}
