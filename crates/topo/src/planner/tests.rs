use super::pairs::score_bits;
use super::*;
use crate::plan::tests::Pts;
use crate::{plan_round, MergeOrder};
use astdme_geom::Point;

/// A space whose "merge" welds two points into their midpoint,
/// appended as a new key.
fn midpoint_merge(space: &mut Pts, a: usize, b: usize) -> usize {
    let m = space.pts.len();
    let (pa, pb) = (space.pts[a], space.pts[b]);
    space
        .pts
        .push(Point::new(0.5 * (pa.x + pb.x), 0.5 * (pa.y + pb.y)));
    let d = space.delays[a].max(space.delays[b]);
    space.delays.push(d);
    m
}

fn lcg_coords(n: usize, mut s: u64) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 16) % 100_000) as f64 / 10.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 16) % 100_000) as f64 / 10.0;
            (x, y)
        })
        .collect()
}

/// Runs both planners to completion, asserting identical rounds.
/// `batched` drives the incremental planner through `apply_round`;
/// otherwise per-merge `apply_merge`.
fn assert_equivalent_driven(n: usize, seed: u64, cfg: TopoConfig, batched: bool) {
    let mut space = Pts::new(&lcg_coords(n, seed));
    let mut active: Vec<usize> = (0..n).collect();
    let mut planner = MergePlanner::new(&space, &active, cfg);
    let mut rounds = 0;
    while active.len() > 1 {
        let reference = plan_round(&space, &active, &cfg);
        let incremental = planner.plan_round(&space);
        assert_eq!(
            reference, incremental,
            "divergence at round {rounds} (n={n}, seed={seed})"
        );
        let mut round = Vec::new();
        for (a, b) in reference {
            let m = midpoint_merge(&mut space, a, b);
            // Reference active-set maintenance: same swap-remove
            // discipline as the planner.
            for x in [a, b] {
                let i = active.iter().position(|&k| k == x).unwrap();
                active.swap_remove(i);
            }
            active.push(m);
            if batched {
                round.push((a, b, m));
            } else {
                planner.apply_merge(&space, a, b, m);
            }
        }
        if batched {
            planner.apply_round(&space, &round);
        }
        rounds += 1;
    }
    assert_eq!(planner.len(), 1);
    assert_eq!(planner.sole_key(), active[0]);
}

fn assert_equivalent(n: usize, seed: u64, cfg: TopoConfig) {
    assert_equivalent_driven(n, seed, cfg, false);
    assert_equivalent_driven(n, seed, cfg, true);
}

#[test]
fn equivalent_to_reference_greedy() {
    assert_equivalent(80, 11, TopoConfig::greedy());
}

#[test]
fn equivalent_to_reference_multimerge() {
    assert_equivalent(
        120,
        5,
        TopoConfig {
            order: MergeOrder::MultiMerge { fraction: 0.25 },
            delay_weight: 0.0,
        },
    );
}

#[test]
fn equivalent_under_small_fractions_that_avoid_refresh() {
    // fraction 0.05 keeps rounds below the refresh divisor, pinning
    // the batched *incremental* sweep (shared bound, one rebuild
    // check) against the reference.
    assert_equivalent(
        130,
        9,
        TopoConfig {
            order: MergeOrder::MultiMerge { fraction: 0.05 },
            delay_weight: 0.0,
        },
    );
}

#[test]
fn equivalent_with_delay_bias() {
    let coords = lcg_coords(64, 3);
    let mut space = Pts::new(&coords);
    for (i, d) in space.delays.iter_mut().enumerate() {
        *d = (i % 7) as f64 * 1e-13;
    }
    let cfg = TopoConfig {
        order: MergeOrder::GreedyNearest,
        delay_weight: 5e12,
    };
    let mut active: Vec<usize> = (0..64).collect();
    let mut planner = MergePlanner::new(&space, &active, cfg);
    while active.len() > 1 {
        let reference = plan_round(&space, &active, &cfg);
        assert_eq!(reference, planner.plan_round(&space));
        for (a, b) in reference {
            let m = midpoint_merge(&mut space, a, b);
            for x in [a, b] {
                let i = active.iter().position(|&k| k == x).unwrap();
                active.swap_remove(i);
            }
            active.push(m);
            planner.apply_merge(&space, a, b, m);
        }
    }
}

#[test]
fn planner_shrinks_to_sole_survivor() {
    let mut space = Pts::new(&[(0.0, 0.0), (4.0, 0.0), (10.0, 0.0)]);
    let mut planner = MergePlanner::new(&space, &[0, 1, 2], TopoConfig::greedy());
    assert_eq!(planner.len(), 3);
    assert!(!planner.is_empty());
    while planner.len() > 1 {
        let pairs = planner.plan_round(&space);
        assert!(!pairs.is_empty());
        for (a, b) in pairs {
            let m = midpoint_merge(&mut space, a, b);
            planner.apply_merge(&space, a, b, m);
        }
    }
    assert_eq!(planner.sole_key(), 4);
}

#[test]
fn score_bits_orders_like_floats() {
    let xs = [-1e9, -1.0, -1e-30, -0.0, 0.0, 1e-30, 2.5, 1e12];
    for w in xs.windows(2) {
        assert!(score_bits(w[0]) <= score_bits(w[1]), "{} vs {}", w[0], w[1]);
    }
}

#[test]
#[should_panic(expected = "inactive key")]
fn apply_merge_rejects_stale_keys() {
    let space = Pts::new(&[(0.0, 0.0), (1.0, 0.0)]);
    let mut planner = MergePlanner::new(&space, &[0, 1], TopoConfig::greedy());
    planner.apply_merge(&space, 0, 7, 9);
}

#[test]
#[should_panic(expected = "duplicate planner key")]
fn reusing_a_live_key_is_rejected() {
    let space = Pts::new(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
    let mut planner = MergePlanner::new(&space, &[0, 1, 2], TopoConfig::greedy());
    // "Merging" 0 and 1 into the still-active key 2 must be caught.
    planner.apply_merge(&space, 0, 1, 2);
}

#[test]
fn empty_round_is_a_no_op() {
    let space = Pts::new(&[(0.0, 0.0), (1.0, 0.0)]);
    let mut planner = MergePlanner::new(&space, &[0, 1], TopoConfig::greedy());
    planner.apply_round(&space, &[]);
    assert_eq!(planner.len(), 2);
}
