//! The brute-force tail: exact all-pairs planning below the cutoff, with
//! a memoized distance matrix.
//!
//! Below [`BRUTE_FORCE_CUTOFF`] active subtrees the planner delegates to
//! the reference semantics outright — the exact all-pairs scan is cheaper
//! than index maintenance and, unlike the grid's region-level query, ranks
//! directly by exact cost. Unlike the from-scratch reference, exact
//! distances are memoized across rounds: subtrees are immutable, so a
//! pair's distance never changes, and the reference recomputing the same
//! all-pairs matrix every round is most of its tail cost.

use astdme_geom::Trr;

use super::MergePlanner;
use crate::plan::{nearest_bruteforce, rank_and_select, BRUTE_FORCE_CUTOFF};
use crate::MergeSpace;

/// Dense distance memo for the brute-force tail: keys seen below the
/// cutoff get small slots, pair distances live in a flat matrix (NaN =
/// unset). The tail re-scans all pairs every round, so a lookup must cost
/// an index operation, not a hash. Slot count is bounded by the cutoff
/// plus the merges after it (each adds one key), so the matrix stays tiny;
/// the stride doubles with remapping if a space ever exceeds it.
#[derive(Debug, Default)]
pub(super) struct BfMemo {
    /// key → slot + 1 (0 = unassigned).
    slot: Vec<u32>,
    slots: usize,
    stride: usize,
    matrix: Vec<f64>,
}

impl BfMemo {
    fn slot_of(&mut self, key: usize) -> usize {
        if key >= self.slot.len() {
            self.slot.resize(key + 1, 0);
        }
        if self.slot[key] == 0 {
            if self.slots == self.stride {
                let new_stride = (2 * self.stride).max(2 * BRUTE_FORCE_CUTOFF + 2);
                let mut grown = vec![f64::NAN; new_stride * new_stride];
                for r in 0..self.slots {
                    let (old, new) = (r * self.stride, r * new_stride);
                    grown[new..new + self.slots]
                        .copy_from_slice(&self.matrix[old..old + self.slots]);
                }
                self.matrix = grown;
                self.stride = new_stride;
            }
            self.slots += 1;
            self.slot[key] = self.slots as u32;
        }
        self.slot[key] as usize - 1
    }
}

/// Memoizing [`MergeSpace`] adapter for the brute-force tail: exact
/// distances are cached by normalized pair (distance is symmetric —
/// both orientations minimize over the same candidate set), everything
/// else delegates. Values are bit-identical to the wrapped space's, so
/// planning through this wrapper matches the reference exactly.
struct CachedSpace<'a, S> {
    inner: &'a S,
    cache: std::cell::RefCell<&'a mut BfMemo>,
}

impl<S: MergeSpace> MergeSpace for CachedSpace<'_, S> {
    fn region(&self, id: usize) -> Trr {
        self.inner.region(id)
    }

    fn distance(&self, a: usize, b: usize) -> f64 {
        let mut memo = self.cache.borrow_mut();
        let (sa, sb) = (memo.slot_of(a), memo.slot_of(b));
        let idx = sa.min(sb) * memo.stride + sa.max(sb);
        let hit = memo.matrix[idx];
        if !hit.is_nan() {
            return hit;
        }
        let d = self.inner.distance(a, b);
        memo.matrix[idx] = d;
        d
    }

    fn delay(&self, id: usize) -> f64 {
        self.inner.delay(id)
    }
}

impl MergePlanner {
    /// Plans a round at or below the cutoff by delegating to the reference
    /// semantics over the memoizing adapter. At this size the exact
    /// all-pairs scan is cheaper than index maintenance (and ranks by
    /// exact cost, which the reference also switches to).
    pub(super) fn plan_tail<S: MergeSpace>(&mut self, space: &S) -> Vec<(usize, usize)> {
        let active: Vec<usize> = self.entries.iter().map(|e| e.key).collect();
        let cached = CachedSpace {
            inner: space,
            cache: std::cell::RefCell::new(&mut self.bf_cache),
        };
        let nn = nearest_bruteforce(&cached, &active);
        rank_and_select(&cached, &self.cfg, nn, active.len())
    }
}
