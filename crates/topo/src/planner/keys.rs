//! The dense key tables: position-map growth and active-set maintenance.
//!
//! All per-key state lives in flat vectors indexed by key (see the
//! dense-key invariant in the [`planner`](super) module docs). Removal is
//! always `swap_remove` — the same discipline on the point-update and
//! refresh paths, so the entries order (and hence exact-tie breaking) is
//! identical on both.

use super::{Entry, MergePlanner, NO_POS};
use crate::MergeSpace;

impl MergePlanner {
    /// The entry index of an active key, if any.
    #[inline]
    pub(super) fn pos_of(&self, key: usize) -> Option<usize> {
        match self.pos.get(key) {
            Some(&p) if p != NO_POS => Some(p as usize),
            _ => None,
        }
    }

    /// Grows the dense per-key tables to cover `key`.
    pub(super) fn ensure_key(&mut self, key: usize) {
        assert!(key < NO_POS as usize, "planner keys must fit u32");
        if key >= self.pos.len() {
            self.pos.resize(key + 1, NO_POS);
            self.rev.resize_with(key + 1, Vec::new);
        }
    }

    /// Removes an active key; caches that pointed at it are invalidated
    /// and re-queried lazily, seeded with `hint` (the merge result that
    /// consumed the key — it sits where the key was).
    pub(super) fn remove_key(&mut self, key: usize, hint: usize) {
        let i = self
            .pos_of(key)
            .expect("apply_merge called with an inactive key");
        self.pos[key] = NO_POS;
        self.clear_nn(i);
        let entry = self.entries.swap_remove(i);
        if i < self.entries.len() {
            self.pos[self.entries[i].key] = i as u32;
        }
        self.grid.remove(key, &entry.region);
        // Whoever pointed at the removed key loses its neighbor: re-query.
        if !self.rev[key].is_empty() {
            let mut back_refs = std::mem::take(&mut self.rev[key]);
            for &k in &back_refs {
                let k = k as usize;
                let Some(ki) = self.pos_of(k) else {
                    continue; // stale back-reference
                };
                if self.entries[ki].nn.is_some_and(|nn| nn.key == key) {
                    self.clear_nn(ki);
                    self.dirty.push((k, hint));
                }
            }
            back_refs.clear();
            self.rev_pool.push(back_refs);
        }
    }

    /// Removes `key` from the active set and the grid only — no pair-set
    /// or back-reference maintenance. Valid solely on the refresh path,
    /// which rebuilds those from the surviving entries (the grid, by
    /// contrast, is patched here per merge: O(round) beats the O(n)
    /// wholesale rebuild the refresh would otherwise need). Uses the same
    /// swap-remove discipline as [`MergePlanner::remove_key`], so the
    /// entries order (and hence tie-breaking) is identical on both paths.
    pub(super) fn drop_key(&mut self, key: usize) {
        let i = self
            .pos_of(key)
            .expect("apply_merge called with an inactive key");
        self.pos[key] = NO_POS;
        let entry = self.entries.swap_remove(i);
        if i < self.entries.len() {
            self.pos[self.entries[i].key] = i as u32;
        }
        self.grid.remove(key, &entry.region);
    }

    /// Adds `key` to the active set and the grid only (refresh path; see
    /// [`MergePlanner::drop_key`]).
    pub(super) fn add_key_deferred<S: MergeSpace>(&mut self, space: &S, key: usize) {
        let region = space.region(key);
        self.ensure_key(key);
        assert!(self.pos[key] == NO_POS, "duplicate planner key {key}");
        self.grid.insert(key, region);
        self.pos[key] = self.entries.len() as u32;
        self.entries.push(Entry {
            key,
            region,
            nn: None,
        });
    }

    /// Registers a new key in the grid and active set, deferring neighbor
    /// derivation to the round's maintenance sweep.
    pub(super) fn register_key<S: MergeSpace>(&mut self, space: &S, key: usize) {
        let region = space.region(key);
        self.ensure_key(key);
        assert!(self.pos[key] == NO_POS, "duplicate planner key {key}");
        self.grid.insert(key, region);
        self.pos[key] = self.entries.len() as u32;
        self.entries.push(Entry {
            key,
            region,
            nn: None,
        });
        self.dirty.push((key, super::NO_HINT));
    }
}
