//! Bulk maintenance: the initial neighbor derivation, the multi-merge
//! refresh sweep, and amortized grid rebuilds.
//!
//! When a round replaces a large fraction of the active set, per-merge
//! patching re-derives almost everything anyway — so the planner starts
//! over in bulk, reusing every cached pair score a survivor can still
//! vouch for (which skips the exact-distance refinement, the bulk of a
//! from-scratch round's cost).

use astdme_geom::Trr;

use super::pairs::score_bits;
use super::{MergePlanner, Nn};
use crate::plan::pair_score;
use crate::{GridIndex, MergeSpace};

impl MergePlanner {
    /// Derives every neighbor cache and the flat sorted ranking in one
    /// bulk pass over a planner with no prior state (right after
    /// [`MergePlanner::new`]): no tree nodes, back-references or heap
    /// entries are built — a multi-merge refresh would discard them on the
    /// first round, and the point-update path rebuilds them on demand —
    /// and mutual nearest pairs pay the exact-distance refinement once,
    /// not twice (scores are symmetric).
    pub(super) fn bulk_derive<S: MergeSpace>(&mut self, space: &S) {
        self.dirty.clear();
        self.pairs.clear();
        self.point_valid = false;
        let mut staged = std::mem::take(&mut self.sorted_pairs);
        staged.clear();
        for i in 0..self.entries.len() {
            let k = self.entries[i].key;
            let region = self.entries[i].region;
            let Some((nn_key, rd)) = self.grid.nearest(k, &region) else {
                continue; // sole entry
            };
            let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
            let score = match self.pos_of(nn_key).and_then(|j| self.entries[j].nn) {
                Some(p) if p.key == k => p.score,
                _ => {
                    let exact = space.distance(k, nn_key);
                    score_bits(pair_score(space, &self.cfg, lo, hi, exact))
                }
            };
            self.entries[i].nn = Some(Nn {
                key: nn_key,
                region_dist: rd,
                score,
            });
            staged.push((score, lo, hi));
        }
        staged.sort_unstable();
        staged.dedup();
        self.sorted_pairs = staged;
        self.sorted_valid = true;
    }

    /// Amortized grid rebuild: when the active set has halved (stale cell
    /// size) or region extents have far outgrown the build-time extent
    /// (stale query bounds), rebuild from the live entries.
    pub(super) fn maybe_rebuild(&mut self) {
        let shrunk = 2 * self.entries.len() <= self.built_len;
        // Floor the extent baseline at a fraction of the cell size:
        // extents only degrade queries once they rival the cells, so a
        // point-leaf start (extent ~0) must not trigger a rebuild storm
        // the moment the first merged hulls appear.
        let baseline = self
            .built_extent
            .max(0.5 * self.grid.cell_size())
            .max(1e-12);
        let outgrown = self.grid.max_extent() > 4.0 * baseline;
        if !(shrunk || outgrown) || self.entries.len() < 2 {
            return;
        }
        let items: Vec<(usize, Trr)> = self.entries.iter().map(|e| (e.key, e.region)).collect();
        self.grid = GridIndex::build(&items);
        self.built_len = self.entries.len();
        self.built_extent = self.grid.max_extent();
        // A rebuild resets the grid's per-cell caps; re-note the live
        // caches so the takeover scan keeps its local pruning. (In the
        // refresh regime caches may be mid-rewrite here — noting stale
        // distances is conservative, and the point-mode transition
        // re-notes everything.)
        for i in 0..self.entries.len() {
            if let Some(nn) = self.entries[i].nn {
                self.grid.note_cap(&self.entries[i].region, nn.region_dist);
            }
        }
    }

    /// Bulk maintenance sweep for a large round: one amortized grid-upkeep
    /// check (the round's merges already patched the grid — see
    /// [`MergePlanner::drop_key`]), then every neighbor cache re-derived.
    /// The invariant "every cache holds the exact nearest active neighbor"
    /// makes most of the work avoidable:
    ///
    /// * a cache whose neighbor **survived** is still the nearest among
    ///   survivors (removals cannot bring anyone closer), so anything
    ///   strictly closer must be one of the round's *new* subtrees — one
    ///   main-grid query bounded by its own cached distance decides it,
    ///   and usually comes back empty-handed (keep cache, score and all:
    ///   no exact distance refinement);
    /// * a cache whose neighbor was **consumed** re-queries the full grid,
    ///   seeded with the merge result that swallowed the neighbor (it sits
    ///   where the neighbor was, so ring expansion stays local);
    /// * the new subtrees themselves re-query the full grid unseeded.
    ///
    /// The ranking is then rebuilt as a flat sorted vector
    /// (`sorted_valid`) — in this regime it is replaced wholesale every
    /// round, so tree nodes would be built just to be dropped. Likewise
    /// `rev` and `rd_heap` are left stale (`point_valid`): only the
    /// point-update path reads them.
    pub(super) fn refresh<S: MergeSpace>(&mut self, space: &S, merges: &[(usize, usize, usize)]) {
        self.maybe_rebuild();
        self.dirty.clear();
        self.pairs.clear();
        self.point_valid = false;
        let mut staged = std::mem::take(&mut self.sorted_pairs);
        staged.clear();
        // consumed key → the merge result that swallowed it, for hints.
        let mut consumed = std::mem::take(&mut self.consumed_buf);
        consumed.clear();
        for &(a, b, m) in merges {
            consumed.push((a, m));
            consumed.push((b, m));
        }
        consumed.sort_unstable();
        // Seed table for the new keys' own re-queries: the first sweep
        // entry that picks a new key as its neighbor donates the exact
        // region distance (symmetric), bounding the new key's ring
        // expansion later in the same sweep. Keys are dense (module docs),
        // so the span tracks the round size; the guard keeps a
        // pathological key space from blowing the table up.
        const NO_SEED: (u32, f64) = (u32::MAX, f64::INFINITY);
        let mut seeds = std::mem::take(&mut self.seed_buf);
        seeds.clear();
        let m_min = merges.iter().map(|&(_, _, m)| m).min().expect("non-empty");
        let m_span = merges.iter().map(|&(_, _, m)| m).max().expect("non-empty") - m_min + 1;
        if m_span <= 4 * merges.len() + 16 {
            seeds.resize(m_span, NO_SEED);
        }
        for i in 0..self.entries.len() {
            let k = self.entries[i].key;
            let region = self.entries[i].region;
            let old = self.entries[i].nn.take();
            let (nn_key, rd, reused_score) = match old {
                Some(o) if self.pos_of(o.key).is_some() => {
                    // Neighbor survived: the nearest survivor is unchanged,
                    // so anything strictly closer in the (already patched)
                    // main grid is necessarily a new subtree taking over.
                    // The tight per-cache bound keeps the query local.
                    match self.grid.nearest_within(k, &region, o.region_dist) {
                        Some((mk, rd)) => (mk, rd, None),
                        None => (o.key, o.region_dist, Some(o.score)),
                    }
                }
                old => {
                    // Consumed neighbor (seeded by its merge result) or a
                    // new subtree (unseeded): full re-query.
                    let hint = old
                        .and_then(|o| {
                            let ci = consumed.binary_search_by_key(&o.key, |&(c, _)| c).ok()?;
                            let mk = consumed[ci].1;
                            let mi = self.pos_of(mk)?;
                            Some((mk, region.distance(&self.entries[mi].region)))
                        })
                        .or_else(|| {
                            let &(r, rd) = seeds.get(k.checked_sub(m_min)?)?;
                            (r != u32::MAX).then_some((r as usize, rd))
                        });
                    match self.grid.nearest_with_hint(k, &region, hint) {
                        Some((nk, rd)) => (nk, rd, None),
                        None => continue, // sole survivor
                    }
                }
            };
            if let Some(s) = nn_key.checked_sub(m_min).and_then(|i| seeds.get_mut(i)) {
                if s.0 == u32::MAX {
                    *s = (k as u32, rd);
                }
            }
            let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
            // Where the pair is new, the partner may still hold its score
            // (scores are symmetric); only genuinely new pairs pay the
            // exact-distance refinement — the expensive part of a
            // from-scratch round.
            let score = reused_score.unwrap_or_else(|| {
                match self.pos_of(nn_key).and_then(|j| self.entries[j].nn) {
                    Some(p) if p.key == k => p.score,
                    _ => {
                        let exact = space.distance(k, nn_key);
                        score_bits(pair_score(space, &self.cfg, lo, hi, exact))
                    }
                }
            });
            self.entries[i].nn = Some(Nn {
                key: nn_key,
                region_dist: rd,
                score,
            });
            staged.push((score, lo, hi));
        }
        staged.sort_unstable();
        staged.dedup();
        self.sorted_pairs = staged;
        self.sorted_valid = true;
        consumed.clear();
        self.consumed_buf = consumed;
        self.seed_buf = seeds;
    }
}
