//! The point-update maintenance path: dirty-cache flushes, neighbor
//! takeover scans, and the takeover bound.
//!
//! Greedy rounds (and multi-merge rounds small enough to dodge the refresh
//! divisor) patch the neighbor structure per merge: only caches whose
//! neighbor was consumed re-query the grid (seeded by the merge result
//! that swallowed it), and one bounded range query per new subtree decides
//! whether it became anyone's nearest neighbor.

use std::collections::BinaryHeap;

use astdme_geom::Trr;

use super::{MergePlanner, NO_HINT, NO_POS};
use crate::{GridIndex, MergeSpace};

impl MergePlanner {
    /// Rebuilds the back-reference lists and the takeover max-heap from
    /// the current caches. Called when the point-update path follows a
    /// refresh (which maintains neither — the refresh regime never reads
    /// them).
    pub(super) fn ensure_point_mode(&mut self) {
        self.ensure_heap();
        if self.point_valid {
            return;
        }
        for slot in &mut self.rev {
            slot.clear();
        }
        let mut heap_vec = std::mem::take(&mut self.rd_heap).into_vec();
        heap_vec.clear();
        for i in 0..self.entries.len() {
            let k = self.entries[i].key;
            if let Some(nn) = self.entries[i].nn {
                self.rev[nn.key].push(k as u32);
                heap_vec.push((nn.region_dist.to_bits(), k));
                // The refresh regime sets caches without noting grid caps
                // (it never runs takeover scans); catch the caps up.
                self.grid.note_cap(&self.entries[i].region, nn.region_dist);
            }
        }
        self.rd_heap = BinaryHeap::from(heap_vec);
        self.point_valid = true;
    }

    /// Re-queries every key whose cached neighbor was invalidated.
    pub(super) fn flush_dirty<S: MergeSpace>(&mut self, space: &S) {
        if self.dirty.is_empty() {
            return; // steady state after a refresh: nothing to patch
        }
        if std::mem::take(&mut self.fresh) {
            self.bulk_derive(space);
            return;
        }
        self.ensure_point_mode();
        while let Some((k, hint_key)) = self.dirty.pop() {
            let Some(i) = self.pos_of(k) else {
                continue; // consumed after being marked dirty
            };
            if self.entries[i].nn.is_some() {
                continue; // refilled (or re-listed) in the meantime
            }
            // Seed the query with the merge result that consumed the old
            // neighbor, when it is still active: it sits where the old
            // neighbor was, so the ring expansion stays local.
            let region = self.entries[i].region;
            let hint = (hint_key != NO_HINT)
                .then(|| self.pos_of(hint_key))
                .flatten()
                .map(|hi| (hint_key, region.distance(&self.entries[hi].region)));
            let Some((nn_key, rd)) = self.grid.nearest_with_hint(k, &region, hint) else {
                continue; // sole survivor
            };
            // Scores are symmetric: when the partner already caches this
            // pair, its score is reused and the exact-distance refinement
            // (the expensive part) is skipped.
            let reused = self
                .pos_of(nn_key)
                .and_then(|j| self.entries[j].nn)
                .filter(|p| p.key == k)
                .map(|p| p.score);
            match reused {
                Some(score) => self.set_nn_scored(i, nn_key, rd, score),
                None => {
                    let exact = space.distance(k, nn_key);
                    self.set_nn(space, i, nn_key, rd, exact);
                }
            }
        }
    }

    /// Round-batched neighbor takeover: builds a throwaway grid over just
    /// the round's new subtrees and checks every surviving cache against
    /// it, bounded by its own cached distance — strictly tighter than the
    /// global-max bound, and O(1)-ish per survivor since the small grid is
    /// sparse. Survivors without a cache (invalidated this round) are
    /// already dirty and re-query the full grid lazily.
    pub(super) fn takeover_round<S: MergeSpace>(&mut self, space: &S, fresh: &[usize]) {
        let items: Vec<(usize, Trr)> = fresh
            .iter()
            .map(|&k| {
                let i = self.pos_of(k).expect("new key is active");
                (k, self.entries[i].region)
            })
            .collect();
        let new_grid = GridIndex::build(&items);
        for i in 0..self.entries.len() {
            let Some(nn) = self.entries[i].nn else {
                continue; // dirty or new: full re-query at the next flush
            };
            let k = self.entries[i].key;
            if let Some((m_key, rd)) =
                new_grid.nearest_within(k, &self.entries[i].region, nn.region_dist)
            {
                let exact = space.distance(k, m_key);
                self.set_nn(space, i, m_key, rd, exact);
            }
        }
    }

    /// Re-points every cached neighbor that the new subtree `key` beats,
    /// via one range query bounded by `bound` (≥ every live cached
    /// distance).
    pub(super) fn takeover_from<S: MergeSpace>(&mut self, space: &S, key: usize, bound: f64) {
        let i = self.pos_of(key).expect("new key is active");
        let region = self.entries[i].region;
        let mut takeovers = std::mem::take(&mut self.takeover_buf);
        takeovers.clear();
        {
            let (grid, pos, entries) = (&self.grid, &self.pos, &self.entries);
            grid.neighbors_within_capped(key, &region, bound, |k, rd| {
                let ki = match pos.get(k) {
                    Some(&p) if p != NO_POS => p as usize,
                    _ => return,
                };
                if entries[ki].nn.is_some_and(|nn| rd < nn.region_dist) {
                    takeovers.push((ki, rd));
                }
            });
        }
        for &(ti, rd) in &takeovers {
            let exact = space.distance(self.entries[ti].key, key);
            self.set_nn(space, ti, key, rd, exact);
        }
        self.takeover_buf = takeovers;
    }

    /// The largest cached neighbor distance among live entries, popping
    /// stale heap tops (re-pointed or consumed keys) on the way.
    pub(super) fn current_max_rd(&mut self) -> Option<f64> {
        while let Some(&(bits, k)) = self.rd_heap.peek() {
            let live = self.pos_of(k).is_some_and(|i| {
                self.entries[i]
                    .nn
                    .is_some_and(|nn| nn.region_dist.to_bits() == bits)
            });
            if live {
                return Some(f64::from_bits(bits));
            }
            self.rd_heap.pop();
        }
        None
    }
}
