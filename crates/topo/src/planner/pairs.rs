//! The pair ranking: score folding, the lazy min-heap, the flat
//! post-refresh ranking, and round selection.
//!
//! A pair is in the ranking set iff at least one endpoint caches the other
//! at the recorded score — there is no separate membership structure.
//! Greedy rounds peek the minimum live pair off the lazy heap; the refresh
//! regime replaces the whole ranking with a flat sorted vector instead
//! (building tree/heap nodes just to discard them next round is waste).

use std::cmp::Reverse;

use super::{MergePlanner, Nn};
use crate::plan::{pair_score, select_disjoint};
use crate::MergeSpace;

pub(super) use crate::plan::score_bits;

impl MergePlanner {
    /// Whether the ranking entry `(score, lo, hi)` still describes a live
    /// pair: some endpoint caches the other at that score. (A pair's score
    /// is a pure function of the pair, so a re-formed pair reproduces the
    /// recorded score bit-for-bit.)
    fn pair_live(&self, score: u64, lo: usize, hi: usize) -> bool {
        let caches = |a: usize, b: usize| {
            self.pos_of(a)
                .and_then(|i| self.entries[i].nn)
                .is_some_and(|nn| nn.key == b && nn.score == score)
        };
        caches(lo, hi) || caches(hi, lo)
    }

    /// Selects a round from the lazy heap: stale tops are popped and
    /// dropped, duplicates are harmless (endpoint-disjoint selection skips
    /// them). The common greedy case peeks the minimum live pair without
    /// disturbing the heap; larger limits (multi-merge fractions small
    /// enough to stay on the point-update path) drain, select and restore.
    pub(super) fn select_from_heap(&mut self, limit: usize) -> Vec<(usize, usize)> {
        if limit == 1 {
            while let Some(&Reverse((s, lo, hi))) = self.pairs.peek() {
                if self.pair_live(s, lo, hi) {
                    return vec![(lo, hi)];
                }
                self.pairs.pop();
            }
            return Vec::new();
        }
        let mut sorted = Vec::with_capacity(self.pairs.len());
        while let Some(Reverse(t)) = self.pairs.pop() {
            if self.pair_live(t.0, t.1, t.2) {
                sorted.push(t);
            }
        }
        let out = select_disjoint(sorted.iter().map(|&(_, a, b)| (a, b)), limit);
        self.pairs = sorted.into_iter().map(Reverse).collect();
        out
    }

    /// Converts the flat post-refresh ranking back into the point-editable
    /// lazy heap. Called when the incremental maintenance path follows a
    /// refresh; heapifying the staging vector is O(n).
    pub(super) fn ensure_heap(&mut self) {
        if self.sorted_valid {
            self.pairs = self.sorted_pairs.drain(..).map(Reverse).collect();
            self.sorted_valid = false;
        }
    }

    /// Points entry `i` at neighbor `nn_key`, maintaining the pair set.
    pub(super) fn set_nn<S: MergeSpace>(
        &mut self,
        space: &S,
        i: usize,
        nn_key: usize,
        region_dist: f64,
        exact: f64,
    ) {
        let k = self.entries[i].key;
        let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
        let score = score_bits(pair_score(space, &self.cfg, lo, hi, exact));
        self.set_nn_scored(i, nn_key, region_dist, score);
    }

    /// [`MergePlanner::set_nn`] with a pre-derived score (reused from the
    /// partner's cache — scores are symmetric and bit-stable per pair).
    pub(super) fn set_nn_scored(&mut self, i: usize, nn_key: usize, region_dist: f64, score: u64) {
        let k = self.entries[i].key;
        self.clear_nn(i);
        let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
        self.entries[i].nn = Some(Nn {
            key: nn_key,
            region_dist,
            score,
        });
        self.rd_heap.push((region_dist.to_bits(), k));
        self.grid.note_cap(&self.entries[i].region, region_dist);
        self.rev_push(nn_key, k);
        self.pairs.push(Reverse((score, lo, hi)));
    }

    /// Drops entry `i`'s cached neighbor (if any). The ranking heap is
    /// lazy: the pair's entry goes stale in place and is dropped whenever
    /// selection next reaches it.
    pub(super) fn clear_nn(&mut self, i: usize) {
        self.entries[i].nn = None;
    }

    /// Records `k` in `nn_key`'s back-reference list, recycling a pooled
    /// buffer so steady-state maintenance does not allocate.
    fn rev_push(&mut self, nn_key: usize, k: usize) {
        let slot = &mut self.rev[nn_key];
        if slot.capacity() == 0 {
            if let Some(recycled) = self.rev_pool.pop() {
                *slot = recycled;
            }
        }
        slot.push(k as u32);
    }
}
