//! The incremental merge planner: near-linear bottom-up merge ordering.
//!
//! [`plan_round`](crate::plan_round) is a from-scratch planner: every call
//! rebuilds the grid index, re-queries every nearest neighbor, and re-ranks
//! every pair, making the driving loop O(n²)–O(n³) over a whole routing
//! run. [`MergePlanner`] keeps that work alive across rounds:
//!
//! * the [`GridIndex`] is built **once** and maintained by removal and
//!   insertion (with amortized rebuilds when the active set halves or
//!   region extents outgrow the cell size, keeping queries local);
//! * each active subtree caches its nearest neighbor; a merge invalidates
//!   only the entries whose neighbor was consumed (re-queried against the
//!   grid) plus a bounded grid range query deciding whether the newly
//!   created subtree became anyone's nearest neighbor (bounded by the
//!   largest cached neighbor distance, tracked in a lazy max-heap);
//! * candidate pairs live in a [`BTreeSet`] ordered by (score, keys), so a
//!   round is selected by walking the set front instead of sorting;
//! * the active set itself is a dense vector with a position map —
//!   removal is `swap_remove`, never an O(n) `retain`.
//!
//! The planner produces the **same pair sequence** as the from-scratch
//! reference on every instance (modulo exact ties in region distance,
//! which are measure-zero for real placements): below
//! `BRUTE_FORCE_CUTOFF` active subtrees it delegates to `plan_round`
//! outright, and above it the cached neighbors are exactly the neighbors a
//! fresh grid query would return. The equivalence is pinned down by the
//! property tests in `tests/planner_equiv.rs`.

use std::collections::{BTreeSet, BinaryHeap, HashMap};

use astdme_geom::Trr;

use crate::plan::{pair_score, round_limit, select_disjoint, BRUTE_FORCE_CUTOFF};
use crate::{plan_round, GridIndex, MaybeSync, MergeSpace, TopoConfig};

/// Maps a non-NaN `f64` to bits whose unsigned order matches the float
/// order (sign-magnitude to two's-complement folding).
#[inline]
fn score_bits(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "pair scores must not be NaN");
    let b = x.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

#[derive(Debug, Clone, Copy)]
struct Nn {
    /// The neighbor's key.
    key: usize,
    /// Representative-region distance to it (the grid's metric, used to
    /// decide whether a new subtree supersedes the cached neighbor).
    region_dist: f64,
}

#[derive(Debug)]
struct Entry {
    key: usize,
    region: Trr,
    nn: Option<Nn>,
}

#[derive(Debug)]
struct PairInfo {
    score: u64,
    refs: u8,
}

/// Stateful, incremental merge planner (see the module docs).
///
/// Drive it with [`MergePlanner::plan_round`] /
/// [`MergePlanner::apply_merge`]:
///
/// ```
/// use astdme_geom::{Point, Trr};
/// use astdme_topo::{MergePlanner, MergeSpace, TopoConfig};
///
/// struct Pts(Vec<Point>);
/// impl MergeSpace for Pts {
///     fn region(&self, id: usize) -> Trr { Trr::from_point(self.0[id]) }
///     fn distance(&self, a: usize, b: usize) -> f64 { self.0[a].dist(self.0[b]) }
///     fn delay(&self, _id: usize) -> f64 { 0.0 }
/// }
///
/// let mut space = Pts(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(10.0, 0.0),
/// ]);
/// let mut planner = MergePlanner::new(&space, &[0, 1, 2], TopoConfig::greedy());
/// while planner.len() > 1 {
///     for (a, b) in planner.plan_round(&space) {
///         // "Merge": a new point midway, registered as a fresh key.
///         let m = space.0.len();
///         let (pa, pb) = (space.0[a], space.0[b]);
///         space.0.push(Point::new(0.5 * (pa.x + pb.x), 0.5 * (pa.y + pb.y)));
///         planner.apply_merge(&space, a, b, m);
///     }
/// }
/// assert_eq!(planner.len(), 1);
/// ```
#[derive(Debug)]
pub struct MergePlanner {
    cfg: TopoConfig,
    entries: Vec<Entry>,
    /// key → index into `entries`.
    pos: HashMap<usize, usize>,
    grid: GridIndex,
    /// Active count and max extent at the last grid (re)build; when the
    /// set halves or extents quadruple, the grid is rebuilt so cell size
    /// and query bounds track the surviving subtrees.
    built_len: usize,
    built_extent: f64,
    /// Current nearest-neighbor pairs, ordered by `(score, lo, hi)` — the
    /// exact ranking the from-scratch planner sorts into.
    pairs: BTreeSet<(u64, usize, usize)>,
    pair_info: HashMap<(usize, usize), PairInfo>,
    /// key → keys whose cached neighbor is that key (lazily validated).
    rev: HashMap<usize, Vec<usize>>,
    /// Keys whose neighbor cache must be refilled from the grid.
    dirty: Vec<usize>,
    /// Lazy max-heap over `(region_dist bits, key)` of every cached
    /// neighbor ever set; stale tops are popped on demand. Its maximum
    /// bounds how far a new subtree can "take over" an existing cache,
    /// which bounds the insertion range query.
    rd_heap: BinaryHeap<(u64, usize)>,
}

impl MergePlanner {
    /// Builds a planner over the subtrees in `active` (keys must be
    /// unique). Costs one grid build plus one neighbor query per subtree —
    /// the same work as a single from-scratch round.
    pub fn new<S: MergeSpace>(space: &S, active: &[usize], cfg: TopoConfig) -> Self {
        let entries: Vec<Entry> = active
            .iter()
            .map(|&k| Entry {
                key: k,
                region: space.region(k),
                nn: None,
            })
            .collect();
        let items: Vec<(usize, Trr)> = entries.iter().map(|e| (e.key, e.region)).collect();
        let grid = GridIndex::build(&items);
        let mut pos = HashMap::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            // Hard assert (matching merge_until_one_from_scratch): a
            // duplicate key would silently corrupt `pos`/the grid and hang
            // the merge loop in release builds.
            let prev = pos.insert(e.key, i);
            assert!(prev.is_none(), "duplicate planner key {}", e.key);
        }
        let built_extent = grid.max_extent();
        let dirty = entries.iter().map(|e| e.key).collect();
        Self {
            cfg,
            built_len: entries.len(),
            entries,
            pos,
            grid,
            built_extent,
            pairs: BTreeSet::new(),
            pair_info: HashMap::new(),
            rev: HashMap::new(),
            dirty,
            rd_heap: BinaryHeap::new(),
        }
    }

    /// Number of active subtrees.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no subtrees remain (only possible before any were added).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The single surviving key.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one subtree remains.
    pub fn sole_key(&self) -> usize {
        assert_eq!(
            self.entries.len(),
            1,
            "planner still holds multiple subtrees"
        );
        self.entries[0].key
    }

    /// Plans one merge round over the current active set: disjoint pairs,
    /// best first, exactly as [`plan_round`](crate::plan_round) would
    /// return them. Does not modify the active set — report merges back
    /// via [`MergePlanner::apply_merge`].
    pub fn plan_round<S: MergeSpace + MaybeSync>(&mut self, space: &S) -> Vec<(usize, usize)> {
        let n = self.entries.len();
        if n < 2 {
            return Vec::new();
        }
        if n <= BRUTE_FORCE_CUTOFF {
            // Delegate to the reference implementation: at this size the
            // exact all-pairs scan is cheaper than index maintenance (and
            // ranks by exact cost, which the reference also switches to).
            let active: Vec<usize> = self.entries.iter().map(|e| e.key).collect();
            return plan_round(space, &active, &self.cfg);
        }
        self.flush_dirty(space);
        select_disjoint(
            self.pairs.iter().map(|&(_, a, b)| (a, b)),
            round_limit(self.cfg.order, n),
        )
    }

    /// Records that subtrees `a` and `b` were merged into the new subtree
    /// `merged`: O(ring) index maintenance plus one linear sweep for
    /// neighbor takeover, instead of a full re-plan.
    pub fn apply_merge<S: MergeSpace>(&mut self, space: &S, a: usize, b: usize, merged: usize) {
        self.remove_key(a);
        self.remove_key(b);
        self.insert_key(space, merged);
        self.maybe_rebuild();
    }

    /// Re-queries every key whose cached neighbor was invalidated.
    fn flush_dirty<S: MergeSpace>(&mut self, space: &S) {
        while let Some(k) = self.dirty.pop() {
            let Some(&i) = self.pos.get(&k) else {
                continue; // consumed after being marked dirty
            };
            if self.entries[i].nn.is_some() {
                continue; // refilled by neighbor takeover in the meantime
            }
            let Some((nn_key, rd)) = self.grid.nearest(k, &self.entries[i].region) else {
                continue; // sole survivor
            };
            let exact = space.distance(k, nn_key);
            self.set_nn(space, i, nn_key, rd, exact);
        }
    }

    /// Points entry `i` at neighbor `nn_key`, maintaining the pair set.
    fn set_nn<S: MergeSpace>(
        &mut self,
        space: &S,
        i: usize,
        nn_key: usize,
        region_dist: f64,
        exact: f64,
    ) {
        let k = self.entries[i].key;
        self.clear_nn(i);
        self.entries[i].nn = Some(Nn {
            key: nn_key,
            region_dist,
        });
        self.rd_heap.push((region_dist.to_bits(), k));
        self.rev.entry(nn_key).or_default().push(k);
        let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
        let score = score_bits(pair_score(space, &self.cfg, lo, hi, exact));
        let info = self
            .pair_info
            .entry((lo, hi))
            .or_insert(PairInfo { score, refs: 0 });
        if info.refs == 0 {
            self.pairs.insert((score, lo, hi));
        }
        info.refs += 1;
    }

    /// Drops entry `i`'s cached neighbor (if any), unreferencing its pair.
    fn clear_nn(&mut self, i: usize) {
        let k = self.entries[i].key;
        let Some(nn) = self.entries[i].nn.take() else {
            return;
        };
        let (lo, hi) = if k < nn.key { (k, nn.key) } else { (nn.key, k) };
        let info = self
            .pair_info
            .get_mut(&(lo, hi))
            .expect("cached neighbor implies a registered pair");
        info.refs -= 1;
        if info.refs == 0 {
            let score = info.score;
            self.pair_info.remove(&(lo, hi));
            self.pairs.remove(&(score, lo, hi));
        }
    }

    fn remove_key(&mut self, key: usize) {
        let i = self
            .pos
            .remove(&key)
            .expect("apply_merge called with an inactive key");
        self.clear_nn(i);
        let entry = self.entries.swap_remove(i);
        if i < self.entries.len() {
            self.pos.insert(self.entries[i].key, i);
        }
        self.grid.remove(key, &entry.region);
        // Whoever pointed at the removed key loses its neighbor: re-query.
        if let Some(back_refs) = self.rev.remove(&key) {
            for k in back_refs {
                let Some(&ki) = self.pos.get(&k) else {
                    continue; // stale back-reference
                };
                if self.entries[ki].nn.is_some_and(|nn| nn.key == key) {
                    self.clear_nn(ki);
                    self.dirty.push(k);
                }
            }
        }
    }

    fn insert_key<S: MergeSpace>(&mut self, space: &S, key: usize) {
        let region = space.region(key);
        self.grid.insert(key, region);
        self.pos.insert(key, self.entries.len());
        self.entries.push(Entry {
            key,
            region,
            nn: None,
        });
        self.dirty.push(key);
        // Neighbor takeover: the new subtree may now be the nearest
        // neighbor (by region distance, the grid's metric) of existing
        // entries. Only entries whose cached neighbor is *farther* than
        // the new region can be affected, so a grid range query bounded by
        // the largest cached distance finds every victim without an O(n)
        // sweep.
        let Some(bound) = self.current_max_rd() else {
            return; // no caches set yet; dirty entries re-query anyway
        };
        let mut takeovers: Vec<(usize, f64)> = Vec::new();
        {
            let (grid, pos, entries) = (&self.grid, &self.pos, &self.entries);
            grid.neighbors_within(key, &region, bound, |k, rd| {
                let Some(&ki) = pos.get(&k) else {
                    return;
                };
                if entries[ki].nn.is_some_and(|nn| rd < nn.region_dist) {
                    takeovers.push((ki, rd));
                }
            });
        }
        for (i, rd) in takeovers {
            let exact = space.distance(self.entries[i].key, key);
            self.set_nn(space, i, key, rd, exact);
        }
    }

    /// The largest cached neighbor distance among live entries, popping
    /// stale heap tops (re-pointed or consumed keys) on the way.
    fn current_max_rd(&mut self) -> Option<f64> {
        while let Some(&(bits, k)) = self.rd_heap.peek() {
            let live = self.pos.get(&k).is_some_and(|&i| {
                self.entries[i]
                    .nn
                    .is_some_and(|nn| nn.region_dist.to_bits() == bits)
            });
            if live {
                return Some(f64::from_bits(bits));
            }
            self.rd_heap.pop();
        }
        None
    }

    /// Amortized grid rebuild: when the active set has halved (stale cell
    /// size) or region extents have far outgrown the build-time extent
    /// (stale query bounds), rebuild from the live entries.
    fn maybe_rebuild(&mut self) {
        let shrunk = 2 * self.entries.len() <= self.built_len;
        let outgrown = self.grid.max_extent() > 4.0 * self.built_extent.max(1e-12);
        if !(shrunk || outgrown) || self.entries.len() < 2 {
            return;
        }
        let items: Vec<(usize, Trr)> = self.entries.iter().map(|e| (e.key, e.region)).collect();
        self.grid = GridIndex::build(&items);
        self.built_len = self.entries.len();
        self.built_extent = self.grid.max_extent();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::tests::Pts;
    use crate::MergeOrder;
    use astdme_geom::Point;

    /// A space whose "merge" welds two points into their midpoint,
    /// appended as a new key.
    fn midpoint_merge(space: &mut Pts, a: usize, b: usize) -> usize {
        let m = space.pts.len();
        let (pa, pb) = (space.pts[a], space.pts[b]);
        space
            .pts
            .push(Point::new(0.5 * (pa.x + pb.x), 0.5 * (pa.y + pb.y)));
        let d = space.delays[a].max(space.delays[b]);
        space.delays.push(d);
        m
    }

    fn lcg_coords(n: usize, mut s: u64) -> Vec<(f64, f64)> {
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 16) % 100_000) as f64 / 10.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 16) % 100_000) as f64 / 10.0;
                (x, y)
            })
            .collect()
    }

    /// Runs both planners to completion, asserting identical rounds.
    fn assert_equivalent(n: usize, seed: u64, cfg: TopoConfig) {
        let mut space = Pts::new(&lcg_coords(n, seed));
        let mut active: Vec<usize> = (0..n).collect();
        let mut planner = MergePlanner::new(&space, &active, cfg);
        let mut rounds = 0;
        while active.len() > 1 {
            let reference = plan_round(&space, &active, &cfg);
            let incremental = planner.plan_round(&space);
            assert_eq!(
                reference, incremental,
                "divergence at round {rounds} (n={n}, seed={seed})"
            );
            for (a, b) in reference {
                let m = midpoint_merge(&mut space, a, b);
                // Reference active-set maintenance: same swap-remove
                // discipline as the planner.
                for x in [a, b] {
                    let i = active.iter().position(|&k| k == x).unwrap();
                    active.swap_remove(i);
                }
                active.push(m);
                planner.apply_merge(&space, a, b, m);
            }
            rounds += 1;
        }
        assert_eq!(planner.len(), 1);
        assert_eq!(planner.sole_key(), active[0]);
    }

    #[test]
    fn equivalent_to_reference_greedy() {
        assert_equivalent(80, 11, TopoConfig::greedy());
    }

    #[test]
    fn equivalent_to_reference_multimerge() {
        assert_equivalent(
            120,
            5,
            TopoConfig {
                order: MergeOrder::MultiMerge { fraction: 0.25 },
                delay_weight: 0.0,
            },
        );
    }

    #[test]
    fn equivalent_with_delay_bias() {
        let coords = lcg_coords(64, 3);
        let mut space = Pts::new(&coords);
        for (i, d) in space.delays.iter_mut().enumerate() {
            *d = (i % 7) as f64 * 1e-13;
        }
        let cfg = TopoConfig {
            order: MergeOrder::GreedyNearest,
            delay_weight: 5e12,
        };
        let mut active: Vec<usize> = (0..64).collect();
        let mut planner = MergePlanner::new(&space, &active, cfg);
        while active.len() > 1 {
            let reference = plan_round(&space, &active, &cfg);
            assert_eq!(reference, planner.plan_round(&space));
            for (a, b) in reference {
                let m = midpoint_merge(&mut space, a, b);
                for x in [a, b] {
                    let i = active.iter().position(|&k| k == x).unwrap();
                    active.swap_remove(i);
                }
                active.push(m);
                planner.apply_merge(&space, a, b, m);
            }
        }
    }

    #[test]
    fn planner_shrinks_to_sole_survivor() {
        let mut space = Pts::new(&[(0.0, 0.0), (4.0, 0.0), (10.0, 0.0)]);
        let mut planner = MergePlanner::new(&space, &[0, 1, 2], TopoConfig::greedy());
        assert_eq!(planner.len(), 3);
        assert!(!planner.is_empty());
        while planner.len() > 1 {
            let pairs = planner.plan_round(&space);
            assert!(!pairs.is_empty());
            for (a, b) in pairs {
                let m = midpoint_merge(&mut space, a, b);
                planner.apply_merge(&space, a, b, m);
            }
        }
        assert_eq!(planner.sole_key(), 4);
    }

    #[test]
    fn score_bits_orders_like_floats() {
        let xs = [-1e9, -1.0, -1e-30, -0.0, 0.0, 1e-30, 2.5, 1e12];
        for w in xs.windows(2) {
            assert!(score_bits(w[0]) <= score_bits(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "inactive key")]
    fn apply_merge_rejects_stale_keys() {
        let space = Pts::new(&[(0.0, 0.0), (1.0, 0.0)]);
        let mut planner = MergePlanner::new(&space, &[0, 1], TopoConfig::greedy());
        planner.apply_merge(&space, 0, 7, 9);
    }
}
