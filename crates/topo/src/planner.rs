//! The incremental merge planner: near-linear bottom-up merge ordering.
//!
//! [`plan_round`](crate::plan_round) is a from-scratch planner: every call
//! rebuilds the grid index, re-queries every nearest neighbor, and re-ranks
//! every pair, making the driving loop O(n²)–O(n³) over a whole routing
//! run. [`MergePlanner`] keeps that work alive across rounds:
//!
//! * the [`GridIndex`] is built **once** and maintained by removal and
//!   insertion (with amortized rebuilds when the active set halves or
//!   region extents outgrow the cell size, keeping queries local);
//! * each active subtree caches its nearest neighbor; a merge invalidates
//!   only the entries whose neighbor was consumed (re-queried against the
//!   grid) plus a bounded grid range query deciding whether the newly
//!   created subtree became anyone's nearest neighbor (bounded by the
//!   largest cached neighbor distance, tracked in a lazy max-heap);
//! * candidate pairs live in a lazy min-heap keyed by (score, keys), so a
//!   greedy round peeks the best live pair in O(1)-ish time — no sorting,
//!   no ordered-set rebalancing, stale entries dropped on contact;
//! * the active set itself is a dense vector with a position map —
//!   removal is `swap_remove`, never an O(n) `retain`.
//!
//! # Batched maintenance and the dense-key invariant
//!
//! Merges are reported back per **round** via
//! [`MergePlanner::apply_round`] (with [`MergePlanner::apply_merge`] as
//! the single-merge convenience): the whole round's removals and
//! insertions are applied first, then *one* maintenance sweep runs —
//! a single `current_max_rd` bound computation, one bounded takeover
//! range-query per new subtree against the final grid, and one amortized
//! rebuild check — instead of per-merge churn. When a round replaces a
//! large fraction of the active set (Edahiro-style multi-merging pairs
//! off ~a quarter of the subtrees per round), incremental patching is
//! slower than starting over, so past [`ROUND_REFRESH_DIVISOR`] the sweep
//! switches to a **refresh**: patch the grid per merge (amortized rebuilds
//! as usual) and re-derive every neighbor cache, reusing the cached pair
//! score whenever
//! a subtree's neighbor did not change (which skips the expensive exact
//! `MergeSpace::distance` refinement — the bulk of a from-scratch round).
//!
//! All per-key state lives in flat vectors indexed by key (`NO_POS`
//! sentinel for inactive): the planner assumes **dense keys** — merged
//! subtrees get fresh keys that grow by roughly one per merge, as forest
//! node indices do — so a `Vec` position map replaces the old `HashMap`s
//! (`pos`, `pair_info`, `rev`) without a memory blow-up, and steady-state
//! maintenance performs no hashing and (thanks to recycled back-reference
//! buffers) no allocation. Pair scores are stored on the neighbor cache
//! itself: a pair is in the ranking set iff at least one endpoint caches
//! the other, and both endpoints derive bit-identical score keys, so the
//! old refcounted `pair_info` map is redundant.
//!
//! The planner produces the **same pair sequence** as the from-scratch
//! reference on every instance (modulo exact ties in region distance,
//! which are measure-zero for real placements): below
//! `BRUTE_FORCE_CUTOFF` active subtrees it delegates to `plan_round`
//! outright, and above it the cached neighbors are exactly the neighbors a
//! fresh grid query would return. The equivalence — and the equivalence of
//! batched `apply_round` to a sequence of `apply_merge` calls — is pinned
//! down by the property tests in `tests/planner_equiv.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use astdme_geom::Trr;

use crate::plan::{
    nearest_bruteforce, pair_score, rank_and_select, round_limit, select_disjoint,
    BRUTE_FORCE_CUTOFF,
};
use crate::{GridIndex, MaybeSync, MergeSpace, TopoConfig};

/// Maps a non-NaN `f64` to bits whose unsigned order matches the float
/// order (sign-magnitude to two's-complement folding).
#[inline]
fn score_bits(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "pair scores must not be NaN");
    let b = x.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

/// Dense distance memo for the brute-force tail: keys seen below the
/// cutoff get small slots, pair distances live in a flat matrix (NaN =
/// unset). The tail re-scans all pairs every round, so a lookup must cost
/// an index operation, not a hash. Slot count is bounded by the cutoff
/// plus the merges after it (each adds one key), so the matrix stays tiny;
/// the stride doubles with remapping if a space ever exceeds it.
#[derive(Debug, Default)]
struct BfMemo {
    /// key → slot + 1 (0 = unassigned).
    slot: Vec<u32>,
    slots: usize,
    stride: usize,
    matrix: Vec<f64>,
}

impl BfMemo {
    fn slot_of(&mut self, key: usize) -> usize {
        if key >= self.slot.len() {
            self.slot.resize(key + 1, 0);
        }
        if self.slot[key] == 0 {
            if self.slots == self.stride {
                let new_stride = (2 * self.stride).max(2 * BRUTE_FORCE_CUTOFF + 2);
                let mut grown = vec![f64::NAN; new_stride * new_stride];
                for r in 0..self.slots {
                    let (old, new) = (r * self.stride, r * new_stride);
                    grown[new..new + self.slots]
                        .copy_from_slice(&self.matrix[old..old + self.slots]);
                }
                self.matrix = grown;
                self.stride = new_stride;
            }
            self.slots += 1;
            self.slot[key] = self.slots as u32;
        }
        self.slot[key] as usize - 1
    }
}

/// Memoizing [`MergeSpace`] adapter for the brute-force tail: exact
/// distances are cached by normalized pair (distance is symmetric —
/// both orientations minimize over the same candidate set), everything
/// else delegates. Values are bit-identical to the wrapped space's, so
/// planning through this wrapper matches the reference exactly.
struct CachedSpace<'a, S> {
    inner: &'a S,
    cache: std::cell::RefCell<&'a mut BfMemo>,
}

impl<S: MergeSpace> MergeSpace for CachedSpace<'_, S> {
    fn region(&self, id: usize) -> Trr {
        self.inner.region(id)
    }

    fn distance(&self, a: usize, b: usize) -> f64 {
        let mut memo = self.cache.borrow_mut();
        let (sa, sb) = (memo.slot_of(a), memo.slot_of(b));
        let idx = sa.min(sb) * memo.stride + sa.max(sb);
        let hit = memo.matrix[idx];
        if !hit.is_nan() {
            return hit;
        }
        let d = self.inner.distance(a, b);
        memo.matrix[idx] = d;
        d
    }

    fn delay(&self, id: usize) -> f64 {
        self.inner.delay(id)
    }
}

/// Sentinel in the dense `pos` map: the key is not active.
const NO_POS: u32 = u32::MAX;

/// Sentinel in the `dirty` list: no re-query seed available.
const NO_HINT: usize = usize::MAX;

/// When one round's merges replace at least `1/ROUND_REFRESH_DIVISOR` of
/// the surviving active set, [`MergePlanner::apply_round`] refreshes the
/// whole neighbor structure instead of patching it: the patching constant
/// (takeover range queries, invalidation re-queries) exceeds the refresh
/// cost once most caches are invalidated anyway. Multi-merge rounds
/// (fraction ≥ ~1/8) always refresh; greedy rounds (one merge) never do
/// above the brute-force cutoff.
const ROUND_REFRESH_DIVISOR: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Nn {
    /// The neighbor's key.
    key: usize,
    /// Representative-region distance to it (the grid's metric, used to
    /// decide whether a new subtree supersedes the cached neighbor).
    region_dist: f64,
    /// Folded score bits of the `(lo, hi)` pair this cache references.
    /// Both endpoints of a pair derive bit-identical scores (the exact
    /// distance is symmetric), so membership of the pair in the ranking
    /// set is simply "some endpoint caches the other" — no refcount map.
    score: u64,
}

#[derive(Debug)]
struct Entry {
    key: usize,
    region: Trr,
    nn: Option<Nn>,
}

/// Stateful, incremental merge planner (see the module docs).
///
/// Drive it with [`MergePlanner::plan_round`] /
/// [`MergePlanner::apply_round`] (or per-merge
/// [`MergePlanner::apply_merge`]):
///
/// ```
/// use astdme_geom::{Point, Trr};
/// use astdme_topo::{MergePlanner, MergeSpace, TopoConfig};
///
/// struct Pts(Vec<Point>);
/// impl MergeSpace for Pts {
///     fn region(&self, id: usize) -> Trr { Trr::from_point(self.0[id]) }
///     fn distance(&self, a: usize, b: usize) -> f64 { self.0[a].dist(self.0[b]) }
///     fn delay(&self, _id: usize) -> f64 { 0.0 }
/// }
///
/// let mut space = Pts(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(10.0, 0.0),
/// ]);
/// let mut planner = MergePlanner::new(&space, &[0, 1, 2], TopoConfig::greedy());
/// while planner.len() > 1 {
///     let mut round = Vec::new();
///     for (a, b) in planner.plan_round(&space) {
///         // "Merge": a new point midway, registered as a fresh key.
///         let m = space.0.len();
///         let (pa, pb) = (space.0[a], space.0[b]);
///         space.0.push(Point::new(0.5 * (pa.x + pb.x), 0.5 * (pa.y + pb.y)));
///         round.push((a, b, m));
///     }
///     planner.apply_round(&space, &round);
/// }
/// assert_eq!(planner.len(), 1);
/// ```
#[derive(Debug)]
pub struct MergePlanner {
    cfg: TopoConfig,
    entries: Vec<Entry>,
    /// key → index into `entries` (`NO_POS` = inactive). Flat and dense:
    /// see the module docs for the dense-key invariant.
    pos: Vec<u32>,
    grid: GridIndex,
    /// Active count and max extent at the last grid (re)build; when the
    /// set halves or extents quadruple, the grid is rebuilt so cell size
    /// and query bounds track the surviving subtrees.
    built_len: usize,
    built_extent: f64,
    /// Current nearest-neighbor pairs as a lazy min-heap over
    /// `(score, lo, hi)` — the exact ranking the from-scratch planner
    /// sorts into. Entries are never removed eagerly: a pair is live iff
    /// some endpoint still caches the other at the recorded score
    /// ([`MergePlanner::pair_live`]); stale tops are popped at selection.
    /// Lazy deletion beats an ordered set here because the point-update
    /// path only ever needs the *minimum* live pair (greedy rounds), so
    /// maintenance is an O(1)-ish push instead of tree rebalancing.
    /// Unused (empty) while `sorted_valid`: a refresh stores the ranking
    /// as the flat `sorted_pairs` instead, and the heap is only
    /// materialized when the incremental maintenance path next needs
    /// point updates ([`MergePlanner::ensure_heap`]).
    pairs: BinaryHeap<Reverse<(u64, usize, usize)>>,
    /// Sorted, deduplicated pair ranking as of the last refresh; the
    /// active representation while `sorted_valid`. Selection walks this
    /// vector — no tree nodes are built in the refresh regime, where the
    /// whole ranking is replaced every round anyway.
    sorted_pairs: Vec<(u64, usize, usize)>,
    sorted_valid: bool,
    /// key → keys whose cached neighbor is that key (lazily validated),
    /// dense-indexed like `pos`. Inner buffers are recycled through
    /// `rev_pool` when their key is consumed.
    rev: Vec<Vec<u32>>,
    rev_pool: Vec<Vec<u32>>,
    /// Keys whose neighbor cache must be refilled from the grid, paired
    /// with a seed hint (`NO_HINT` when there is none): the key of the
    /// merged subtree that consumed the old neighbor. The merge result
    /// sits where the old neighbor was, so seeding the re-query with it
    /// collapses the ring expansion to the immediate neighborhood.
    dirty: Vec<(usize, usize)>,
    /// Lazy max-heap over `(region_dist bits, key)` of every cached
    /// neighbor ever set; stale tops are popped on demand. Its maximum
    /// bounds how far a new subtree can "take over" an existing cache,
    /// which bounds the insertion range query.
    rd_heap: BinaryHeap<(u64, usize)>,
    /// Reused round buffers (new keys of the round; takeover victims).
    round_new: Vec<usize>,
    takeover_buf: Vec<(usize, f64)>,
    /// Reused refresh staging: consumed key → merge result, sorted.
    consumed_buf: Vec<(usize, usize)>,
    /// Reused refresh staging: per new key (offset by the round's smallest
    /// new key), the first sweep entry that picked it as neighbor plus
    /// their region distance — the seed for the new key's own re-query.
    seed_buf: Vec<(u32, f64)>,
    /// Memoized exact pair distances for the brute-force tail
    /// (`n <=` [`BRUTE_FORCE_CUTOFF`]). Subtrees are immutable, so entries
    /// never go stale; the matrix stays tiny (pairs among the final few
    /// dozen subtrees).
    bf_cache: BfMemo,
    /// Whether `rev` and `rd_heap` reflect the current caches. A refresh
    /// re-derives every cache without maintaining either (the refresh
    /// regime never reads them); the point-update path rebuilds both on
    /// demand ([`MergePlanner::ensure_point_mode`]).
    point_valid: bool,
    /// Set by [`MergePlanner::new`], cleared by the first flush or apply:
    /// while fresh, the initial neighbor derivation can go through the
    /// bulk path ([`MergePlanner::bulk_derive`]) instead of per-entry
    /// point updates.
    fresh: bool,
}

impl MergePlanner {
    /// Builds a planner over the subtrees in `active` (keys must be
    /// unique). Costs one grid build plus one neighbor query per subtree —
    /// the same work as a single from-scratch round.
    pub fn new<S: MergeSpace>(space: &S, active: &[usize], cfg: TopoConfig) -> Self {
        let entries: Vec<Entry> = active
            .iter()
            .map(|&k| Entry {
                key: k,
                region: space.region(k),
                nn: None,
            })
            .collect();
        let items: Vec<(usize, Trr)> = entries.iter().map(|e| (e.key, e.region)).collect();
        let grid = GridIndex::build(&items);
        let max_key = active.iter().copied().max().unwrap_or(0);
        assert!(max_key < NO_POS as usize, "planner keys must fit u32");
        let mut pos = vec![NO_POS; max_key + 1];
        for (i, e) in entries.iter().enumerate() {
            // Hard assert (matching merge_until_one_from_scratch): a
            // duplicate key would silently corrupt `pos`/the grid and hang
            // the merge loop in release builds.
            assert!(pos[e.key] == NO_POS, "duplicate planner key {}", e.key);
            pos[e.key] = i as u32;
        }
        let built_extent = grid.max_extent();
        let dirty = entries.iter().map(|e| (e.key, NO_HINT)).collect();
        let rev = vec![Vec::new(); pos.len()];
        Self {
            cfg,
            built_len: entries.len(),
            entries,
            pos,
            grid,
            built_extent,
            pairs: BinaryHeap::new(),
            sorted_pairs: Vec::new(),
            sorted_valid: false,
            rev,
            rev_pool: Vec::new(),
            dirty,
            rd_heap: BinaryHeap::new(),
            round_new: Vec::new(),
            takeover_buf: Vec::new(),
            consumed_buf: Vec::new(),
            seed_buf: Vec::new(),
            bf_cache: BfMemo::default(),
            point_valid: true,
            fresh: true,
        }
    }

    /// Number of active subtrees.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no subtrees remain (only possible before any were added).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The single surviving key.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one subtree remains.
    pub fn sole_key(&self) -> usize {
        assert_eq!(
            self.entries.len(),
            1,
            "planner still holds multiple subtrees"
        );
        self.entries[0].key
    }

    /// The entry index of an active key, if any.
    #[inline]
    fn pos_of(&self, key: usize) -> Option<usize> {
        match self.pos.get(key) {
            Some(&p) if p != NO_POS => Some(p as usize),
            _ => None,
        }
    }

    /// Grows the dense per-key tables to cover `key`.
    fn ensure_key(&mut self, key: usize) {
        assert!(key < NO_POS as usize, "planner keys must fit u32");
        if key >= self.pos.len() {
            self.pos.resize(key + 1, NO_POS);
            self.rev.resize_with(key + 1, Vec::new);
        }
    }

    /// Plans one merge round over the current active set: disjoint pairs,
    /// best first, exactly as [`plan_round`](crate::plan_round) would
    /// return them. Does not modify the active set — report merges back
    /// via [`MergePlanner::apply_round`] / [`MergePlanner::apply_merge`].
    pub fn plan_round<S: MergeSpace + MaybeSync>(&mut self, space: &S) -> Vec<(usize, usize)> {
        let n = self.entries.len();
        if n < 2 {
            return Vec::new();
        }
        if n <= BRUTE_FORCE_CUTOFF {
            // Delegate to the reference semantics: at this size the exact
            // all-pairs scan is cheaper than index maintenance (and ranks
            // by exact cost, which the reference also switches to). Unlike
            // the from-scratch reference, exact distances are memoized
            // across rounds — subtrees are immutable, so a pair's distance
            // never changes, and the reference recomputing the same
            // all-pairs matrix every round is most of its tail cost.
            let active: Vec<usize> = self.entries.iter().map(|e| e.key).collect();
            let cached = CachedSpace {
                inner: space,
                cache: std::cell::RefCell::new(&mut self.bf_cache),
            };
            let nn = nearest_bruteforce(&cached, &active);
            return rank_and_select(&cached, &self.cfg, nn, active.len());
        }
        self.flush_dirty(space);
        let limit = round_limit(self.cfg.order, n);
        if self.sorted_valid {
            select_disjoint(self.sorted_pairs.iter().map(|&(_, a, b)| (a, b)), limit)
        } else {
            self.select_from_heap(limit)
        }
    }

    /// Whether the ranking entry `(score, lo, hi)` still describes a live
    /// pair: some endpoint caches the other at that score. (A pair's score
    /// is a pure function of the pair, so a re-formed pair reproduces the
    /// recorded score bit-for-bit.)
    fn pair_live(&self, score: u64, lo: usize, hi: usize) -> bool {
        let caches = |a: usize, b: usize| {
            self.pos_of(a)
                .and_then(|i| self.entries[i].nn)
                .is_some_and(|nn| nn.key == b && nn.score == score)
        };
        caches(lo, hi) || caches(hi, lo)
    }

    /// Selects a round from the lazy heap: stale tops are popped and
    /// dropped, duplicates are harmless (endpoint-disjoint selection skips
    /// them). The common greedy case peeks the minimum live pair without
    /// disturbing the heap; larger limits (multi-merge fractions small
    /// enough to stay on the point-update path) drain, select and restore.
    fn select_from_heap(&mut self, limit: usize) -> Vec<(usize, usize)> {
        if limit == 1 {
            while let Some(&Reverse((s, lo, hi))) = self.pairs.peek() {
                if self.pair_live(s, lo, hi) {
                    return vec![(lo, hi)];
                }
                self.pairs.pop();
            }
            return Vec::new();
        }
        let mut sorted = Vec::with_capacity(self.pairs.len());
        while let Some(Reverse(t)) = self.pairs.pop() {
            if self.pair_live(t.0, t.1, t.2) {
                sorted.push(t);
            }
        }
        let out = select_disjoint(sorted.iter().map(|&(_, a, b)| (a, b)), limit);
        self.pairs = sorted.into_iter().map(Reverse).collect();
        out
    }

    /// Converts the flat post-refresh ranking back into the point-editable
    /// lazy heap. Called when the incremental maintenance path follows a
    /// refresh; heapifying the staging vector is O(n).
    fn ensure_heap(&mut self) {
        if self.sorted_valid {
            self.pairs = self.sorted_pairs.drain(..).map(Reverse).collect();
            self.sorted_valid = false;
        }
    }

    /// Rebuilds the back-reference lists and the takeover max-heap from
    /// the current caches. Called when the point-update path follows a
    /// refresh (which maintains neither — the refresh regime never reads
    /// them).
    fn ensure_point_mode(&mut self) {
        self.ensure_heap();
        if self.point_valid {
            return;
        }
        for slot in &mut self.rev {
            slot.clear();
        }
        let mut heap_vec = std::mem::take(&mut self.rd_heap).into_vec();
        heap_vec.clear();
        for i in 0..self.entries.len() {
            let k = self.entries[i].key;
            if let Some(nn) = self.entries[i].nn {
                self.rev[nn.key].push(k as u32);
                heap_vec.push((nn.region_dist.to_bits(), k));
                // The refresh regime sets caches without noting grid caps
                // (it never runs takeover scans); catch the caps up.
                self.grid.note_cap(&self.entries[i].region, nn.region_dist);
            }
        }
        self.rd_heap = BinaryHeap::from(heap_vec);
        self.point_valid = true;
    }

    /// Records that subtrees `a` and `b` were merged into the new subtree
    /// `merged`. Equivalent to `apply_round(space, &[(a, b, merged)])` —
    /// batch a whole round through [`MergePlanner::apply_round`] when it
    /// has more than one merge.
    pub fn apply_merge<S: MergeSpace>(&mut self, space: &S, a: usize, b: usize, merged: usize) {
        self.apply_round(space, &[(a, b, merged)]);
    }

    /// Applies one whole round of merges `(a, b, merged)` and then runs a
    /// single maintenance sweep: one combined invalidation pass, one
    /// takeover bound, one bounded range query per new subtree, and one
    /// amortized grid-upkeep check — or a wholesale refresh when the round
    /// replaced a large fraction of the active set (see the module docs).
    ///
    /// Produces the same observable state as applying the merges one at a
    /// time (modulo exact region-distance ties).
    pub fn apply_round<S: MergeSpace>(&mut self, space: &S, merges: &[(usize, usize, usize)]) {
        if merges.is_empty() {
            return;
        }
        self.fresh = false;
        // Each merge nets one fewer active subtree.
        let final_len = self.entries.len() - merges.len();
        if merges.len() * ROUND_REFRESH_DIVISOR >= final_len {
            // A round this large (multi-merge) invalidates nearly every
            // cache — merged subtrees are exactly the popular neighbors —
            // so patching would re-derive almost everything through the
            // point-update machinery. The refresh rebuilds the ranking and
            // every cache in bulk instead (seeded by this round's merges);
            // the per-merge bookkeeping that would be thrown away (pair
            // unreferencing, back-reference invalidation, takeover
            // queries) is skipped here — only the active set and the grid
            // are updated.
            for &(a, b, m) in merges {
                self.drop_key(a);
                self.drop_key(b);
                self.add_key_deferred(space, m);
            }
            self.refresh(space, merges);
            return;
        }
        self.ensure_point_mode();
        let mut fresh = std::mem::take(&mut self.round_new);
        fresh.clear();
        for &(a, b, m) in merges {
            // `m` seeds the re-queries of caches that pointed at `a`/`b`.
            self.remove_key(a, m);
            self.remove_key(b, m);
            self.register_key(space, m);
            fresh.push(m);
        }
        // Neighbor takeover: a new subtree may now be the nearest
        // neighbor (by region distance, the grid's metric) of existing
        // entries. Only entries whose cached neighbor is *farther*
        // than the new region can be affected.
        if merges.len() == 1 {
            // One new subtree: a single grid range query bounded by the
            // largest cached distance finds every victim.
            if let Some(bound) = self.current_max_rd() {
                for &m in &fresh {
                    self.takeover_from(space, m, bound);
                }
            }
        } else {
            self.takeover_round(space, &fresh);
        }
        self.maybe_rebuild();
        self.round_new = fresh;
    }

    /// Round-batched neighbor takeover: builds a throwaway grid over just
    /// the round's new subtrees and checks every surviving cache against
    /// it, bounded by its own cached distance — strictly tighter than the
    /// global-max bound, and O(1)-ish per survivor since the small grid is
    /// sparse. Survivors without a cache (invalidated this round) are
    /// already dirty and re-query the full grid lazily.
    fn takeover_round<S: MergeSpace>(&mut self, space: &S, fresh: &[usize]) {
        let items: Vec<(usize, Trr)> = fresh
            .iter()
            .map(|&k| {
                let i = self.pos_of(k).expect("new key is active");
                (k, self.entries[i].region)
            })
            .collect();
        let new_grid = GridIndex::build(&items);
        for i in 0..self.entries.len() {
            let Some(nn) = self.entries[i].nn else {
                continue; // dirty or new: full re-query at the next flush
            };
            let k = self.entries[i].key;
            if let Some((m_key, rd)) =
                new_grid.nearest_within(k, &self.entries[i].region, nn.region_dist)
            {
                let exact = space.distance(k, m_key);
                self.set_nn(space, i, m_key, rd, exact);
            }
        }
    }

    /// Derives every neighbor cache and the flat sorted ranking in one
    /// bulk pass over a planner with no prior state (right after
    /// [`MergePlanner::new`]): no tree nodes, back-references or heap
    /// entries are built — a multi-merge refresh would discard them on the
    /// first round, and the point-update path rebuilds them on demand —
    /// and mutual nearest pairs pay the exact-distance refinement once,
    /// not twice (scores are symmetric).
    fn bulk_derive<S: MergeSpace>(&mut self, space: &S) {
        self.dirty.clear();
        self.pairs.clear();
        self.point_valid = false;
        let mut staged = std::mem::take(&mut self.sorted_pairs);
        staged.clear();
        for i in 0..self.entries.len() {
            let k = self.entries[i].key;
            let region = self.entries[i].region;
            let Some((nn_key, rd)) = self.grid.nearest(k, &region) else {
                continue; // sole entry
            };
            let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
            let score = match self.pos_of(nn_key).and_then(|j| self.entries[j].nn) {
                Some(p) if p.key == k => p.score,
                _ => {
                    let exact = space.distance(k, nn_key);
                    score_bits(pair_score(space, &self.cfg, lo, hi, exact))
                }
            };
            self.entries[i].nn = Some(Nn {
                key: nn_key,
                region_dist: rd,
                score,
            });
            staged.push((score, lo, hi));
        }
        staged.sort_unstable();
        staged.dedup();
        self.sorted_pairs = staged;
        self.sorted_valid = true;
    }

    /// Re-queries every key whose cached neighbor was invalidated.
    fn flush_dirty<S: MergeSpace>(&mut self, space: &S) {
        if self.dirty.is_empty() {
            return; // steady state after a refresh: nothing to patch
        }
        if std::mem::take(&mut self.fresh) {
            self.bulk_derive(space);
            return;
        }
        self.ensure_point_mode();
        while let Some((k, hint_key)) = self.dirty.pop() {
            let Some(i) = self.pos_of(k) else {
                continue; // consumed after being marked dirty
            };
            if self.entries[i].nn.is_some() {
                continue; // refilled (or re-listed) in the meantime
            }
            // Seed the query with the merge result that consumed the old
            // neighbor, when it is still active: it sits where the old
            // neighbor was, so the ring expansion stays local.
            let region = self.entries[i].region;
            let hint = (hint_key != NO_HINT)
                .then(|| self.pos_of(hint_key))
                .flatten()
                .map(|hi| (hint_key, region.distance(&self.entries[hi].region)));
            let Some((nn_key, rd)) = self.grid.nearest_with_hint(k, &region, hint) else {
                continue; // sole survivor
            };
            // Scores are symmetric: when the partner already caches this
            // pair, its score is reused and the exact-distance refinement
            // (the expensive part) is skipped.
            let reused = self
                .pos_of(nn_key)
                .and_then(|j| self.entries[j].nn)
                .filter(|p| p.key == k)
                .map(|p| p.score);
            match reused {
                Some(score) => self.set_nn_scored(i, nn_key, rd, score),
                None => {
                    let exact = space.distance(k, nn_key);
                    self.set_nn(space, i, nn_key, rd, exact);
                }
            }
        }
    }

    /// Points entry `i` at neighbor `nn_key`, maintaining the pair set.
    fn set_nn<S: MergeSpace>(
        &mut self,
        space: &S,
        i: usize,
        nn_key: usize,
        region_dist: f64,
        exact: f64,
    ) {
        let k = self.entries[i].key;
        let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
        let score = score_bits(pair_score(space, &self.cfg, lo, hi, exact));
        self.set_nn_scored(i, nn_key, region_dist, score);
    }

    /// [`MergePlanner::set_nn`] with a pre-derived score (reused from the
    /// partner's cache — scores are symmetric and bit-stable per pair).
    fn set_nn_scored(&mut self, i: usize, nn_key: usize, region_dist: f64, score: u64) {
        let k = self.entries[i].key;
        self.clear_nn(i);
        let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
        self.entries[i].nn = Some(Nn {
            key: nn_key,
            region_dist,
            score,
        });
        self.rd_heap.push((region_dist.to_bits(), k));
        self.grid.note_cap(&self.entries[i].region, region_dist);
        self.rev_push(nn_key, k);
        self.pairs.push(Reverse((score, lo, hi)));
    }

    /// Drops entry `i`'s cached neighbor (if any). The ranking heap is
    /// lazy: the pair's entry goes stale in place and is dropped whenever
    /// selection next reaches it.
    fn clear_nn(&mut self, i: usize) {
        self.entries[i].nn = None;
    }

    /// Records `k` in `nn_key`'s back-reference list, recycling a pooled
    /// buffer so steady-state maintenance does not allocate.
    fn rev_push(&mut self, nn_key: usize, k: usize) {
        let slot = &mut self.rev[nn_key];
        if slot.capacity() == 0 {
            if let Some(recycled) = self.rev_pool.pop() {
                *slot = recycled;
            }
        }
        slot.push(k as u32);
    }

    /// Removes an active key; caches that pointed at it are invalidated
    /// and re-queried lazily, seeded with `hint` (the merge result that
    /// consumed the key — it sits where the key was).
    fn remove_key(&mut self, key: usize, hint: usize) {
        let i = self
            .pos_of(key)
            .expect("apply_merge called with an inactive key");
        self.pos[key] = NO_POS;
        self.clear_nn(i);
        let entry = self.entries.swap_remove(i);
        if i < self.entries.len() {
            self.pos[self.entries[i].key] = i as u32;
        }
        self.grid.remove(key, &entry.region);
        // Whoever pointed at the removed key loses its neighbor: re-query.
        if !self.rev[key].is_empty() {
            let mut back_refs = std::mem::take(&mut self.rev[key]);
            for &k in &back_refs {
                let k = k as usize;
                let Some(ki) = self.pos_of(k) else {
                    continue; // stale back-reference
                };
                if self.entries[ki].nn.is_some_and(|nn| nn.key == key) {
                    self.clear_nn(ki);
                    self.dirty.push((k, hint));
                }
            }
            back_refs.clear();
            self.rev_pool.push(back_refs);
        }
    }

    /// Removes `key` from the active set and the grid only — no pair-set
    /// or back-reference maintenance. Valid solely on the refresh path,
    /// which rebuilds those from the surviving entries (the grid, by
    /// contrast, is patched here per merge: O(round) beats the O(n)
    /// wholesale rebuild the refresh would otherwise need). Uses the same
    /// swap-remove discipline as [`MergePlanner::remove_key`], so the
    /// entries order (and hence tie-breaking) is identical on both paths.
    fn drop_key(&mut self, key: usize) {
        let i = self
            .pos_of(key)
            .expect("apply_merge called with an inactive key");
        self.pos[key] = NO_POS;
        let entry = self.entries.swap_remove(i);
        if i < self.entries.len() {
            self.pos[self.entries[i].key] = i as u32;
        }
        self.grid.remove(key, &entry.region);
    }

    /// Adds `key` to the active set and the grid only (refresh path; see
    /// [`MergePlanner::drop_key`]).
    fn add_key_deferred<S: MergeSpace>(&mut self, space: &S, key: usize) {
        let region = space.region(key);
        self.ensure_key(key);
        assert!(self.pos[key] == NO_POS, "duplicate planner key {key}");
        self.grid.insert(key, region);
        self.pos[key] = self.entries.len() as u32;
        self.entries.push(Entry {
            key,
            region,
            nn: None,
        });
    }

    /// Registers a new key in the grid and active set, deferring neighbor
    /// derivation to the round's maintenance sweep.
    fn register_key<S: MergeSpace>(&mut self, space: &S, key: usize) {
        let region = space.region(key);
        self.ensure_key(key);
        assert!(self.pos[key] == NO_POS, "duplicate planner key {key}");
        self.grid.insert(key, region);
        self.pos[key] = self.entries.len() as u32;
        self.entries.push(Entry {
            key,
            region,
            nn: None,
        });
        self.dirty.push((key, NO_HINT));
    }

    /// Re-points every cached neighbor that the new subtree `key` beats,
    /// via one range query bounded by `bound` (≥ every live cached
    /// distance).
    fn takeover_from<S: MergeSpace>(&mut self, space: &S, key: usize, bound: f64) {
        let i = self.pos_of(key).expect("new key is active");
        let region = self.entries[i].region;
        let mut takeovers = std::mem::take(&mut self.takeover_buf);
        takeovers.clear();
        {
            let (grid, pos, entries) = (&self.grid, &self.pos, &self.entries);
            grid.neighbors_within_capped(key, &region, bound, |k, rd| {
                let ki = match pos.get(k) {
                    Some(&p) if p != NO_POS => p as usize,
                    _ => return,
                };
                if entries[ki].nn.is_some_and(|nn| rd < nn.region_dist) {
                    takeovers.push((ki, rd));
                }
            });
        }
        for &(ti, rd) in &takeovers {
            let exact = space.distance(self.entries[ti].key, key);
            self.set_nn(space, ti, key, rd, exact);
        }
        self.takeover_buf = takeovers;
    }

    /// The largest cached neighbor distance among live entries, popping
    /// stale heap tops (re-pointed or consumed keys) on the way.
    fn current_max_rd(&mut self) -> Option<f64> {
        while let Some(&(bits, k)) = self.rd_heap.peek() {
            let live = self.pos_of(k).is_some_and(|i| {
                self.entries[i]
                    .nn
                    .is_some_and(|nn| nn.region_dist.to_bits() == bits)
            });
            if live {
                return Some(f64::from_bits(bits));
            }
            self.rd_heap.pop();
        }
        None
    }

    /// Amortized grid rebuild: when the active set has halved (stale cell
    /// size) or region extents have far outgrown the build-time extent
    /// (stale query bounds), rebuild from the live entries.
    fn maybe_rebuild(&mut self) {
        let shrunk = 2 * self.entries.len() <= self.built_len;
        // Floor the extent baseline at a fraction of the cell size:
        // extents only degrade queries once they rival the cells, so a
        // point-leaf start (extent ~0) must not trigger a rebuild storm
        // the moment the first merged hulls appear.
        let baseline = self
            .built_extent
            .max(0.5 * self.grid.cell_size())
            .max(1e-12);
        let outgrown = self.grid.max_extent() > 4.0 * baseline;
        if !(shrunk || outgrown) || self.entries.len() < 2 {
            return;
        }
        let items: Vec<(usize, Trr)> = self.entries.iter().map(|e| (e.key, e.region)).collect();
        self.grid = GridIndex::build(&items);
        self.built_len = self.entries.len();
        self.built_extent = self.grid.max_extent();
        // A rebuild resets the grid's per-cell caps; re-note the live
        // caches so the takeover scan keeps its local pruning. (In the
        // refresh regime caches may be mid-rewrite here — noting stale
        // distances is conservative, and the point-mode transition
        // re-notes everything.)
        for i in 0..self.entries.len() {
            if let Some(nn) = self.entries[i].nn {
                self.grid.note_cap(&self.entries[i].region, nn.region_dist);
            }
        }
    }

    /// Bulk maintenance sweep for a large round: one amortized grid-upkeep
    /// check (the round's merges already patched the grid — see
    /// [`MergePlanner::drop_key`]), then every neighbor cache re-derived.
    /// The invariant "every cache holds the exact nearest active neighbor"
    /// makes most of the work avoidable:
    ///
    /// * a cache whose neighbor **survived** is still the nearest among
    ///   survivors (removals cannot bring anyone closer), so anything
    ///   strictly closer must be one of the round's *new* subtrees — one
    ///   main-grid query bounded by its own cached distance decides it,
    ///   and usually comes back empty-handed (keep cache, score and all:
    ///   no exact distance refinement);
    /// * a cache whose neighbor was **consumed** re-queries the full grid,
    ///   seeded with the merge result that swallowed the neighbor (it sits
    ///   where the neighbor was, so ring expansion stays local);
    /// * the new subtrees themselves re-query the full grid unseeded.
    ///
    /// The ranking is then rebuilt as a flat sorted vector
    /// (`sorted_valid`) — in this regime it is replaced wholesale every
    /// round, so tree nodes would be built just to be dropped. Likewise
    /// `rev` and `rd_heap` are left stale (`point_valid`): only the
    /// point-update path reads them.
    fn refresh<S: MergeSpace>(&mut self, space: &S, merges: &[(usize, usize, usize)]) {
        self.maybe_rebuild();
        self.dirty.clear();
        self.pairs.clear();
        self.point_valid = false;
        let mut staged = std::mem::take(&mut self.sorted_pairs);
        staged.clear();
        // consumed key → the merge result that swallowed it, for hints.
        let mut consumed = std::mem::take(&mut self.consumed_buf);
        consumed.clear();
        for &(a, b, m) in merges {
            consumed.push((a, m));
            consumed.push((b, m));
        }
        consumed.sort_unstable();
        // Seed table for the new keys' own re-queries: the first sweep
        // entry that picks a new key as its neighbor donates the exact
        // region distance (symmetric), bounding the new key's ring
        // expansion later in the same sweep. Keys are dense (module docs),
        // so the span tracks the round size; the guard keeps a
        // pathological key space from blowing the table up.
        const NO_SEED: (u32, f64) = (u32::MAX, f64::INFINITY);
        let mut seeds = std::mem::take(&mut self.seed_buf);
        seeds.clear();
        let m_min = merges.iter().map(|&(_, _, m)| m).min().expect("non-empty");
        let m_span = merges.iter().map(|&(_, _, m)| m).max().expect("non-empty") - m_min + 1;
        if m_span <= 4 * merges.len() + 16 {
            seeds.resize(m_span, NO_SEED);
        }
        for i in 0..self.entries.len() {
            let k = self.entries[i].key;
            let region = self.entries[i].region;
            let old = self.entries[i].nn.take();
            let (nn_key, rd, reused_score) = match old {
                Some(o) if self.pos_of(o.key).is_some() => {
                    // Neighbor survived: the nearest survivor is unchanged,
                    // so anything strictly closer in the (already patched)
                    // main grid is necessarily a new subtree taking over.
                    // The tight per-cache bound keeps the query local.
                    match self.grid.nearest_within(k, &region, o.region_dist) {
                        Some((mk, rd)) => (mk, rd, None),
                        None => (o.key, o.region_dist, Some(o.score)),
                    }
                }
                old => {
                    // Consumed neighbor (seeded by its merge result) or a
                    // new subtree (unseeded): full re-query.
                    let hint = old
                        .and_then(|o| {
                            let ci = consumed.binary_search_by_key(&o.key, |&(c, _)| c).ok()?;
                            let mk = consumed[ci].1;
                            let mi = self.pos_of(mk)?;
                            Some((mk, region.distance(&self.entries[mi].region)))
                        })
                        .or_else(|| {
                            let &(r, rd) = seeds.get(k.checked_sub(m_min)?)?;
                            (r != u32::MAX).then_some((r as usize, rd))
                        });
                    match self.grid.nearest_with_hint(k, &region, hint) {
                        Some((nk, rd)) => (nk, rd, None),
                        None => continue, // sole survivor
                    }
                }
            };
            if let Some(s) = nn_key.checked_sub(m_min).and_then(|i| seeds.get_mut(i)) {
                if s.0 == u32::MAX {
                    *s = (k as u32, rd);
                }
            }
            let (lo, hi) = if k < nn_key { (k, nn_key) } else { (nn_key, k) };
            // Where the pair is new, the partner may still hold its score
            // (scores are symmetric); only genuinely new pairs pay the
            // exact-distance refinement — the expensive part of a
            // from-scratch round.
            let score = reused_score.unwrap_or_else(|| {
                match self.pos_of(nn_key).and_then(|j| self.entries[j].nn) {
                    Some(p) if p.key == k => p.score,
                    _ => {
                        let exact = space.distance(k, nn_key);
                        score_bits(pair_score(space, &self.cfg, lo, hi, exact))
                    }
                }
            });
            self.entries[i].nn = Some(Nn {
                key: nn_key,
                region_dist: rd,
                score,
            });
            staged.push((score, lo, hi));
        }
        staged.sort_unstable();
        staged.dedup();
        self.sorted_pairs = staged;
        self.sorted_valid = true;
        consumed.clear();
        self.consumed_buf = consumed;
        self.seed_buf = seeds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::tests::Pts;
    use crate::{plan_round, MergeOrder};
    use astdme_geom::Point;

    /// A space whose "merge" welds two points into their midpoint,
    /// appended as a new key.
    fn midpoint_merge(space: &mut Pts, a: usize, b: usize) -> usize {
        let m = space.pts.len();
        let (pa, pb) = (space.pts[a], space.pts[b]);
        space
            .pts
            .push(Point::new(0.5 * (pa.x + pb.x), 0.5 * (pa.y + pb.y)));
        let d = space.delays[a].max(space.delays[b]);
        space.delays.push(d);
        m
    }

    fn lcg_coords(n: usize, mut s: u64) -> Vec<(f64, f64)> {
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 16) % 100_000) as f64 / 10.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 16) % 100_000) as f64 / 10.0;
                (x, y)
            })
            .collect()
    }

    /// Runs both planners to completion, asserting identical rounds.
    /// `batched` drives the incremental planner through `apply_round`;
    /// otherwise per-merge `apply_merge`.
    fn assert_equivalent_driven(n: usize, seed: u64, cfg: TopoConfig, batched: bool) {
        let mut space = Pts::new(&lcg_coords(n, seed));
        let mut active: Vec<usize> = (0..n).collect();
        let mut planner = MergePlanner::new(&space, &active, cfg);
        let mut rounds = 0;
        while active.len() > 1 {
            let reference = plan_round(&space, &active, &cfg);
            let incremental = planner.plan_round(&space);
            assert_eq!(
                reference, incremental,
                "divergence at round {rounds} (n={n}, seed={seed})"
            );
            let mut round = Vec::new();
            for (a, b) in reference {
                let m = midpoint_merge(&mut space, a, b);
                // Reference active-set maintenance: same swap-remove
                // discipline as the planner.
                for x in [a, b] {
                    let i = active.iter().position(|&k| k == x).unwrap();
                    active.swap_remove(i);
                }
                active.push(m);
                if batched {
                    round.push((a, b, m));
                } else {
                    planner.apply_merge(&space, a, b, m);
                }
            }
            if batched {
                planner.apply_round(&space, &round);
            }
            rounds += 1;
        }
        assert_eq!(planner.len(), 1);
        assert_eq!(planner.sole_key(), active[0]);
    }

    fn assert_equivalent(n: usize, seed: u64, cfg: TopoConfig) {
        assert_equivalent_driven(n, seed, cfg, false);
        assert_equivalent_driven(n, seed, cfg, true);
    }

    #[test]
    fn equivalent_to_reference_greedy() {
        assert_equivalent(80, 11, TopoConfig::greedy());
    }

    #[test]
    fn equivalent_to_reference_multimerge() {
        assert_equivalent(
            120,
            5,
            TopoConfig {
                order: MergeOrder::MultiMerge { fraction: 0.25 },
                delay_weight: 0.0,
            },
        );
    }

    #[test]
    fn equivalent_under_small_fractions_that_avoid_refresh() {
        // fraction 0.05 keeps rounds below the refresh divisor, pinning
        // the batched *incremental* sweep (shared bound, one rebuild
        // check) against the reference.
        assert_equivalent(
            130,
            9,
            TopoConfig {
                order: MergeOrder::MultiMerge { fraction: 0.05 },
                delay_weight: 0.0,
            },
        );
    }

    #[test]
    fn equivalent_with_delay_bias() {
        let coords = lcg_coords(64, 3);
        let mut space = Pts::new(&coords);
        for (i, d) in space.delays.iter_mut().enumerate() {
            *d = (i % 7) as f64 * 1e-13;
        }
        let cfg = TopoConfig {
            order: MergeOrder::GreedyNearest,
            delay_weight: 5e12,
        };
        let mut active: Vec<usize> = (0..64).collect();
        let mut planner = MergePlanner::new(&space, &active, cfg);
        while active.len() > 1 {
            let reference = plan_round(&space, &active, &cfg);
            assert_eq!(reference, planner.plan_round(&space));
            for (a, b) in reference {
                let m = midpoint_merge(&mut space, a, b);
                for x in [a, b] {
                    let i = active.iter().position(|&k| k == x).unwrap();
                    active.swap_remove(i);
                }
                active.push(m);
                planner.apply_merge(&space, a, b, m);
            }
        }
    }

    #[test]
    fn planner_shrinks_to_sole_survivor() {
        let mut space = Pts::new(&[(0.0, 0.0), (4.0, 0.0), (10.0, 0.0)]);
        let mut planner = MergePlanner::new(&space, &[0, 1, 2], TopoConfig::greedy());
        assert_eq!(planner.len(), 3);
        assert!(!planner.is_empty());
        while planner.len() > 1 {
            let pairs = planner.plan_round(&space);
            assert!(!pairs.is_empty());
            for (a, b) in pairs {
                let m = midpoint_merge(&mut space, a, b);
                planner.apply_merge(&space, a, b, m);
            }
        }
        assert_eq!(planner.sole_key(), 4);
    }

    #[test]
    fn score_bits_orders_like_floats() {
        let xs = [-1e9, -1.0, -1e-30, -0.0, 0.0, 1e-30, 2.5, 1e12];
        for w in xs.windows(2) {
            assert!(score_bits(w[0]) <= score_bits(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "inactive key")]
    fn apply_merge_rejects_stale_keys() {
        let space = Pts::new(&[(0.0, 0.0), (1.0, 0.0)]);
        let mut planner = MergePlanner::new(&space, &[0, 1], TopoConfig::greedy());
        planner.apply_merge(&space, 0, 7, 9);
    }

    #[test]
    #[should_panic(expected = "duplicate planner key")]
    fn reusing_a_live_key_is_rejected() {
        let space = Pts::new(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let mut planner = MergePlanner::new(&space, &[0, 1, 2], TopoConfig::greedy());
        // "Merging" 0 and 1 into the still-active key 2 must be caught.
        planner.apply_merge(&space, 0, 1, 2);
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let space = Pts::new(&[(0.0, 0.0), (1.0, 0.0)]);
        let mut planner = MergePlanner::new(&space, &[0, 1], TopoConfig::greedy());
        planner.apply_round(&space, &[]);
        assert_eq!(planner.len(), 2);
    }
}
