//! Merge-round planning: which subtree pairs to merge next.
//!
//! [`plan_round`] is the **from-scratch reference planner**: it recomputes
//! every nearest neighbor on each call. The production path is the
//! incremental [`MergePlanner`](crate::MergePlanner), which maintains the
//! same nearest-neighbor structure across rounds; `plan_round` remains the
//! specification the planner is tested against (and the baseline the
//! `scaling` bench compares runtime with).

use astdme_geom::Trr;

use crate::{GridIndex, MaybeSync};

/// Below this many active subtrees, planning scans all pairs exactly
/// instead of going through the grid index: the scan is cheaper than
/// maintaining the index and, unlike the grid's region-level query, ranks
/// directly by exact merge cost. Public so replay drivers (the ECO flush
/// path) switch regimes at exactly the same size the planner does.
pub const BRUTE_FORCE_CUTOFF: usize = 32;

/// What the planner needs to know about the current set of subtrees.
///
/// Implemented by the routing driver over its merge forest; keys are the
/// driver's node identifiers.
pub trait MergeSpace {
    /// Representative region of subtree `id` (hull of its candidates).
    fn region(&self, id: usize) -> Trr;
    /// Exact merging cost between two subtrees (minimum candidate
    /// distance).
    fn distance(&self, a: usize, b: usize) -> f64;
    /// Largest accumulated root-to-sink delay of the subtree (seconds),
    /// for the delay-target bias.
    fn delay(&self, id: usize) -> f64;
}

/// Merge ordering scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeOrder {
    /// One globally minimum-cost pair per round (the base scheme of the
    /// paper's Fig. 6).
    GreedyNearest,
    /// Edahiro-style simultaneous multi-merging: up to `fraction` of the
    /// current subtrees are paired off per round, by ascending cost among
    /// mutually disjoint nearest pairs. `fraction` in `(0, 0.5]`.
    MultiMerge {
        /// Fraction of current subtrees to pair off per round.
        fraction: f64,
    },
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopoConfig {
    /// The ordering scheme.
    pub order: MergeOrder,
    /// Delay-target bias (Ch. V.F enhancement 2): pairs are ranked by
    /// `distance - delay_weight * (delay_a + delay_b)`, so subtrees that
    /// are already slow merge earlier, reducing later imbalance and
    /// snaking. Units: µm per second of delay. `0.0` disables the bias.
    pub delay_weight: f64,
}

impl Default for TopoConfig {
    /// Multi-merge at a quarter of the subtrees per round — the paper's
    /// enhanced configuration — with the delay bias off.
    fn default() -> Self {
        Self {
            order: MergeOrder::MultiMerge { fraction: 0.25 },
            delay_weight: 0.0,
        }
    }
}

impl TopoConfig {
    /// The plain greedy scheme of Fig. 6 (one pair per round, no bias).
    pub fn greedy() -> Self {
        Self {
            order: MergeOrder::GreedyNearest,
            delay_weight: 0.0,
        }
    }

    /// Stable `u64` encoding of the planner configuration for
    /// content-addressed cache fingerprints: an order tag, the multi-merge
    /// fraction bits (`f64::to_bits`; zero for greedy), and the
    /// delay-weight bits. Two configs plan identically iff their words
    /// agree.
    #[inline]
    pub fn fingerprint_words(&self) -> [u64; 3] {
        let (tag, fraction) = match self.order {
            MergeOrder::GreedyNearest => (0, 0),
            MergeOrder::MultiMerge { fraction } => (1, fraction.to_bits()),
        };
        [tag, fraction, self.delay_weight.to_bits()]
    }
}

/// How many disjoint pairs one round may merge over `n` active subtrees.
pub fn round_limit(order: MergeOrder, n: usize) -> usize {
    match order {
        MergeOrder::GreedyNearest => 1,
        MergeOrder::MultiMerge { fraction } => {
            let f = fraction.clamp(1e-6, 0.5);
            ((n as f64 * f).ceil() as usize).max(1)
        }
    }
}

/// The pair score used for ranking: exact distance minus the delay-target
/// bias. Lower merges earlier.
pub fn pair_score<S: MergeSpace>(space: &S, cfg: &TopoConfig, a: usize, b: usize, d: f64) -> f64 {
    d - cfg.delay_weight * (space.delay(a) + space.delay(b))
}

/// Maps a non-NaN `f64` to bits whose unsigned order matches the float
/// order (sign-magnitude to two's-complement folding). This is the score
/// key the incremental [`MergePlanner`](crate::MergePlanner) ranks pairs
/// by, exposed so replay drivers derive bit-identical ranking keys.
#[inline]
pub fn score_bits(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "pair scores must not be NaN");
    let b = x.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

/// Greedily selects up to `limit` endpoint-disjoint pairs from
/// `(a, b)` candidates already ranked best-first.
pub fn select_disjoint(
    mut ranked: impl Iterator<Item = (usize, usize)>,
    limit: usize,
) -> Vec<(usize, usize)> {
    if limit == 1 {
        // Greedy rounds take the best pair outright — no disjointness
        // bookkeeping (or its allocation) needed for a single selection.
        return ranked.next().into_iter().collect();
    }
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(limit);
    for (a, b) in ranked {
        if out.len() >= limit {
            break;
        }
        if used.contains(&a) || used.contains(&b) {
            continue;
        }
        used.insert(a);
        used.insert(b);
        out.push((a, b));
    }
    out
}

/// Plans one merge round over the `active` subtrees, from scratch.
///
/// Returns disjoint pairs to merge, best first: exactly one for
/// [`MergeOrder::GreedyNearest`], up to `fraction * active.len()` for
/// [`MergeOrder::MultiMerge`]. Returns an empty vector when fewer than two
/// subtrees remain.
///
/// The planner is deterministic: ties break toward smaller keys.
pub fn plan_round<S: MergeSpace + MaybeSync>(
    space: &S,
    active: &[usize],
    cfg: &TopoConfig,
) -> Vec<(usize, usize)> {
    if active.len() < 2 {
        return Vec::new();
    }
    // Exact all-pairs for small sets; grid-accelerated NN otherwise.
    let nn: Vec<(usize, usize, f64)> = if active.len() <= BRUTE_FORCE_CUTOFF {
        nearest_bruteforce(space, active)
    } else {
        nearest_with_grid(space, active)
    };
    rank_and_select(space, cfg, nn, active.len())
}

/// Ranks deduplicated nearest pairs by score and selects the round — the
/// tail both [`plan_round`] and the incremental planner's brute-force
/// delegation share, so their orderings cannot drift apart.
pub(crate) fn rank_and_select<S: MergeSpace>(
    space: &S,
    cfg: &TopoConfig,
    mut ranked: Vec<(usize, usize, f64)>,
    n_active: usize,
) -> Vec<(usize, usize)> {
    ranked.sort_by(|x, y| {
        pair_score(space, cfg, x.0, x.1, x.2)
            .partial_cmp(&pair_score(space, cfg, y.0, y.1, y.2))
            .expect("scores are not NaN")
            .then(x.0.cmp(&y.0))
            .then(x.1.cmp(&y.1))
    });
    select_disjoint(
        ranked.into_iter().map(|(a, b, _)| (a, b)),
        round_limit(cfg.order, n_active),
    )
}

/// For every active subtree, its nearest neighbor by exact merge cost
/// (deduplicated to unordered pairs).
pub(crate) fn nearest_bruteforce<S: MergeSpace>(
    space: &S,
    active: &[usize],
) -> Vec<(usize, usize, f64)> {
    let mut pairs = Vec::with_capacity(active.len());
    for (i, &a) in active.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for (j, &b) in active.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = space.distance(a, b);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((b, d));
            }
        }
        if let Some((b, d)) = best {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            pairs.push((lo, hi, d));
        }
    }
    dedup_pairs(pairs)
}

fn nearest_with_grid<S: MergeSpace + MaybeSync>(
    space: &S,
    active: &[usize],
) -> Vec<(usize, usize, f64)> {
    let items: Vec<(usize, Trr)> = active.iter().map(|&id| (id, space.region(id))).collect();
    let grid = GridIndex::build(&items);
    // Grid distance is between representative regions; refine with the
    // exact candidate-level cost. The refinement is the expensive part and
    // is embarrassingly parallel (`parallel` feature).
    let pairs: Vec<Option<(usize, usize, f64)>> = map_chunked(&items, |(id, region)| {
        grid.nearest(*id, region).map(|(nn, _)| {
            let d = space.distance(*id, nn);
            let (lo, hi) = if *id < nn { (*id, nn) } else { (nn, *id) };
            (lo, hi, d)
        })
    });
    dedup_pairs(pairs.into_iter().flatten().collect())
}

#[cfg(feature = "parallel")]
fn map_chunked<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    astdme_par::par_map(items, 512, f)
}

#[cfg(not(feature = "parallel"))]
fn map_chunked<T, R>(items: &[T], f: impl Fn(&T) -> R) -> Vec<R> {
    items.iter().map(f).collect()
}

fn dedup_pairs(mut pairs: Vec<(usize, usize, f64)>) -> Vec<(usize, usize, f64)> {
    pairs.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));
    pairs.dedup_by(|x, y| x.0 == y.0 && x.1 == y.1);
    pairs
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use astdme_geom::Point;

    /// A toy space over explicit points with optional delays.
    pub(crate) struct Pts {
        pub(crate) pts: Vec<Point>,
        pub(crate) delays: Vec<f64>,
    }

    impl Pts {
        pub(crate) fn new(coords: &[(f64, f64)]) -> Self {
            Self {
                pts: coords.iter().map(|&(x, y)| Point::new(x, y)).collect(),
                delays: vec![0.0; coords.len()],
            }
        }
    }

    impl MergeSpace for Pts {
        fn region(&self, id: usize) -> Trr {
            Trr::from_point(self.pts[id])
        }
        fn distance(&self, a: usize, b: usize) -> f64 {
            self.pts[a].dist(self.pts[b])
        }
        fn delay(&self, id: usize) -> f64 {
            self.delays[id]
        }
    }

    #[test]
    fn greedy_picks_the_global_minimum_pair() {
        let s = Pts::new(&[(0.0, 0.0), (5.0, 0.0), (100.0, 0.0), (101.0, 0.0)]);
        let plan = plan_round(&s, &[0, 1, 2, 3], &TopoConfig::greedy());
        assert_eq!(plan, vec![(2, 3)]);
    }

    #[test]
    fn multi_merge_returns_disjoint_pairs() {
        let s = Pts::new(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (10.0, 0.0),
            (11.0, 0.0),
            (20.0, 0.0),
            (21.5, 0.0),
        ]);
        let cfg = TopoConfig {
            order: MergeOrder::MultiMerge { fraction: 0.5 },
            delay_weight: 0.0,
        };
        let plan = plan_round(&s, &[0, 1, 2, 3, 4, 5], &cfg);
        assert_eq!(plan.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &plan {
            assert!(seen.insert(*a));
            assert!(seen.insert(*b));
        }
        // Best pair first.
        assert_eq!(plan[0], (0, 1));
    }

    #[test]
    fn empty_and_single_return_no_pairs() {
        let s = Pts::new(&[(0.0, 0.0)]);
        assert!(plan_round(&s, &[], &TopoConfig::default()).is_empty());
        assert!(plan_round(&s, &[0], &TopoConfig::default()).is_empty());
    }

    #[test]
    fn delay_bias_promotes_slow_subtrees() {
        let mut s = Pts::new(&[(0.0, 0.0), (10.0, 0.0), (100.0, 0.0), (115.0, 0.0)]);
        // The far pair is slower; with enough bias it merges first even
        // though it is geometrically more expensive.
        s.delays = vec![0.0, 0.0, 1e-12, 1e-12];
        let unbiased = plan_round(&s, &[0, 1, 2, 3], &TopoConfig::greedy());
        assert_eq!(unbiased, vec![(0, 1)]);
        let biased = plan_round(
            &s,
            &[0, 1, 2, 3],
            &TopoConfig {
                order: MergeOrder::GreedyNearest,
                delay_weight: 1e13, // 10 um per 1e-12 s
            },
        );
        assert_eq!(biased, vec![(2, 3)]);
    }

    #[test]
    fn grid_and_bruteforce_agree_on_larger_sets() {
        // 40 points: exercises the grid path (> 32) against brute force.
        let mut coords = Vec::new();
        let mut s: u64 = 7;
        for _ in 0..40 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            coords.push((((s >> 20) % 1000) as f64, ((s >> 40) % 1000) as f64));
        }
        let space = Pts::new(&coords);
        let active: Vec<usize> = (0..coords.len()).collect();
        let greedy = plan_round(&space, &active, &TopoConfig::greedy());
        let bf = nearest_bruteforce(&space, &active);
        let best_bf = bf
            .iter()
            .min_by(|x, y| x.2.partial_cmp(&y.2).unwrap())
            .unwrap();
        assert_eq!(greedy[0], (best_bf.0, best_bf.1));
    }

    #[test]
    fn fingerprint_words_separate_configs() {
        let default = TopoConfig::default().fingerprint_words();
        assert_eq!(default, TopoConfig::default().fingerprint_words());
        assert_ne!(default, TopoConfig::greedy().fingerprint_words());
        let biased = TopoConfig {
            delay_weight: 1e13,
            ..TopoConfig::default()
        };
        assert_ne!(default, biased.fingerprint_words());
        let half = TopoConfig {
            order: MergeOrder::MultiMerge { fraction: 0.5 },
            delay_weight: 0.0,
        };
        assert_ne!(default, half.fingerprint_words());
    }

    #[test]
    fn multi_merge_fraction_bounds_pair_count() {
        let coords: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 3.0, 0.0)).collect();
        let s = Pts::new(&coords);
        let active: Vec<usize> = (0..100).collect();
        let cfg = TopoConfig {
            order: MergeOrder::MultiMerge { fraction: 0.25 },
            delay_weight: 0.0,
        };
        let plan = plan_round(&s, &active, &cfg);
        assert!(!plan.is_empty());
        assert!(plan.len() <= 25);
    }
}
