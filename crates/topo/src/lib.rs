//! Merging-order schemes for bottom-up clock routing.
//!
//! The AST-DME algorithm (Kim 2006, Fig. 6, step 3) repeatedly merges the
//! pair of subtrees at minimum merging cost. This crate provides:
//!
//! * [`GridIndex`] — a bucketed neighbor index over subtree root regions,
//!   so nearest-pair queries do not scan all pairs;
//! * [`plan_round`] — one round of merge planning under a [`TopoConfig`],
//!   **from scratch** (rebuilds the index and re-queries every neighbor on
//!   each call): the reference implementation;
//! * [`MergePlanner`] — the **incremental planner** the routing drivers
//!   use: the index is built once, merges patch it in place, and only
//!   invalidated neighbor caches are re-queried, making a full bottom-up
//!   run near-linear instead of quadratic (see the `planner` module docs
//!   for the data structures and the equivalence argument);
//! * two merge orders under either planner:
//!   * [`MergeOrder::GreedyNearest`]: the paper's base scheme, one
//!     minimum-cost pair per round;
//!   * [`MergeOrder::MultiMerge`]: Edahiro's simultaneous multi-merging
//!     (enhancement 1 of Ch. V.F) — a large set of disjoint nearest pairs
//!     per round, reducing neighbor-graph rebuilds;
//!   * a **delay-target bias** (enhancement 2 of Ch. V.F): preferring to
//!     merge subtrees with large accumulated delay first, which reduces
//!     later imbalance and hence wire snaking.
//!
//! The schemes only *order* merges; skew feasibility is enforced by the
//! engine regardless, so any ordering yields a correct tree — ordering
//! affects wirelength and runtime.
//!
//! With the `parallel` feature, exact merge-cost refinement inside a
//! planning round fans out over threads (`astdme_par`); results are
//! bit-identical to serial runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod plan;
mod planner;

pub use grid::GridIndex;
pub use plan::{
    pair_score, plan_round, round_limit, score_bits, select_disjoint, MergeOrder, MergeSpace,
    TopoConfig, BRUTE_FORCE_CUTOFF,
};
pub use planner::{MergePlanner, NnSnapshotRow};

/// Marker bound for planner spaces: with the `parallel` feature enabled it
/// requires [`Sync`] (spaces are shared across worker threads); without it
/// every type qualifies. Blanket-implemented — never implement it manually.
#[cfg(feature = "parallel")]
pub trait MaybeSync: Sync {}
#[cfg(feature = "parallel")]
impl<T: Sync + ?Sized> MaybeSync for T {}

/// Marker bound for planner spaces: with the `parallel` feature enabled it
/// requires [`Sync`] (spaces are shared across worker threads); without it
/// every type qualifies. Blanket-implemented — never implement it manually.
#[cfg(not(feature = "parallel"))]
pub trait MaybeSync {}
#[cfg(not(feature = "parallel"))]
impl<T: ?Sized> MaybeSync for T {}
