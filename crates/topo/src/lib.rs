//! Merging-order schemes for bottom-up clock routing.
//!
//! The AST-DME algorithm (Kim 2006, Fig. 6, step 3) repeatedly merges the
//! pair of subtrees at minimum merging cost. This crate provides:
//!
//! * [`GridIndex`] — a bucketed neighbor index over subtree root regions,
//!   so nearest-pair queries do not scan all pairs;
//! * [`plan_round`] — one round of merge planning under a [`TopoConfig`]:
//!   * [`MergeOrder::GreedyNearest`]: the paper's base scheme, one
//!     minimum-cost pair per round;
//!   * [`MergeOrder::MultiMerge`]: Edahiro's simultaneous multi-merging
//!     (enhancement 1 of Ch. V.F) — a large set of disjoint nearest pairs
//!     per round, reducing neighbor-graph rebuilds;
//!   * a **delay-target bias** (enhancement 2 of Ch. V.F): preferring to
//!     merge subtrees with large accumulated delay first, which reduces
//!     later imbalance and hence wire snaking.
//!
//! The schemes only *order* merges; skew feasibility is enforced by the
//! engine regardless, so any ordering yields a correct tree — ordering
//! affects wirelength and runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod plan;

pub use grid::GridIndex;
pub use plan::{plan_round, MergeOrder, MergeSpace, TopoConfig};
