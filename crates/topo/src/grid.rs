//! Bucketed neighbor index over subtree root regions.

use astdme_geom::{Point, Trr};

/// A uniform-grid index over region center points, answering approximate
/// nearest-neighbor queries by exact region distance.
///
/// Regions are bucketed by center into a **flat dense cell array** (row
/// major over the build-time bounding box — a cell visit is an array index,
/// never a hash); queries expand rings of cells outward and stop once no
/// unvisited cell can beat the best exact distance found (accounting for
/// region extents). Items inserted after the build whose center falls
/// outside the original box are clamped into the border cells, which only
/// ever *under*-estimates their ring distance — conservative, so queries
/// stay exact. Used by the merge planners to avoid all-pairs scans.
///
/// ```
/// use astdme_geom::{Point, Trr};
/// use astdme_topo::GridIndex;
///
/// let items = vec![
///     (7, Trr::from_point(Point::new(0.0, 0.0))),
///     (9, Trr::from_point(Point::new(10.0, 0.0))),
///     (4, Trr::from_point(Point::new(100.0, 100.0))),
/// ];
/// let idx = GridIndex::build(&items);
/// let (nn, d) = idx.nearest(7, &items[0].1).unwrap();
/// assert_eq!(nn, 9);
/// assert_eq!(d, 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Row-major `(grid_w × grid_h)` cells.
    cells: Vec<Vec<(usize, Trr)>>,
    /// Largest region diameter per cell (conservative: never shrunk on
    /// removal). Ring walks prune whole cells against this before touching
    /// their items, so one huge region only taxes queries near *its* cell,
    /// not the `max_extent` bound of every query in the index.
    cell_exts: Vec<f64>,
    /// Per-cell caller-attached caps ([`GridIndex::note_cap`]; zero until
    /// noted, reset by `build`). The incremental planner notes each
    /// entry's cached nearest-neighbor distance here, which lets
    /// [`GridIndex::neighbors_within_capped`] skip cells whose entries all
    /// hold caches tighter than their distance to the query — the
    /// neighbor-takeover scan then pays for the query's *local*
    /// neighborhood instead of the global worst cache.
    cell_caps: Vec<f64>,
    grid_w: i64,
    grid_h: i64,
    cell_size: f64,
    origin: Point,
    max_extent: f64,
    len: usize,
    // Populated cell bounds (conservative: never shrunk on removal).
    cell_min: (i64, i64),
    cell_max: (i64, i64),
}

impl GridIndex {
    /// Builds an index over `(key, region)` items.
    ///
    /// Keys must be unique; duplicates make `nearest` results ambiguous.
    pub fn build(items: &[(usize, Trr)]) -> Self {
        let n = items.len().max(1);
        let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
        for (_, t) in items {
            let c = t.center();
            x0 = x0.min(c.x);
            y0 = y0.min(c.y);
            x1 = x1.max(c.x);
            y1 = y1.max(c.y);
        }
        if items.is_empty() {
            (x0, y0, x1, y1) = (0.0, 0.0, 1.0, 1.0);
        }
        // ~1-2 items per cell on average; for degenerate (e.g. collinear)
        // layouts the area underestimates spacing badly, so also respect
        // the per-axis average spacing, and never go below a sane floor.
        let (w, h) = (x1 - x0, y1 - y0);
        let cell_size = (w * h / n as f64)
            .sqrt()
            .max(w / n as f64)
            .max(h / n as f64)
            .max(1e-9 * (1.0 + w.max(h)))
            .max(1e-9);
        let max_extent = items
            .iter()
            .map(|(_, t)| t.diameter())
            .fold(0.0f64, f64::max);
        let grid_w = ((w / cell_size).floor() as i64 + 1).max(1);
        let grid_h = ((h / cell_size).floor() as i64 + 1).max(1);
        let mut g = Self {
            cells: vec![Vec::new(); (grid_w * grid_h) as usize],
            cell_exts: vec![0.0; (grid_w * grid_h) as usize],
            cell_caps: vec![0.0; (grid_w * grid_h) as usize],
            grid_w,
            grid_h,
            cell_size,
            origin: Point::new(x0, y0),
            max_extent,
            len: 0,
            cell_min: (i64::MAX, i64::MAX),
            cell_max: (i64::MIN, i64::MIN),
        };
        for (key, trr) in items {
            g.insert(*key, *trr);
        }
        g
    }

    /// The cell coordinates of `p`, clamped into the dense array. Clamping
    /// moves a cell *toward* any query center, so ring lower bounds only
    /// under-estimate — conservative for exactness.
    fn cell_of(&self, p: Point) -> (i64, i64) {
        let cx = ((p.x - self.origin.x) / self.cell_size).floor() as i64;
        let cy = ((p.y - self.origin.y) / self.cell_size).floor() as i64;
        (cx.clamp(0, self.grid_w - 1), cy.clamp(0, self.grid_h - 1))
    }

    /// The items of cell `(cx, cy)` together with the cell's extent bound,
    /// or `None` when the cell is outside the grid or empty.
    #[inline]
    fn slot(&self, cx: i64, cy: i64) -> Option<(&[(usize, Trr)], f64)> {
        if cx < 0 || cy < 0 || cx >= self.grid_w || cy >= self.grid_h {
            return None;
        }
        let i = (cy * self.grid_w + cx) as usize;
        if self.cells[i].is_empty() {
            return None;
        }
        Some((&self.cells[i], self.cell_exts[i]))
    }

    /// Inserts an item.
    pub fn insert(&mut self, key: usize, region: Trr) {
        self.max_extent = self.max_extent.max(region.diameter());
        let cell = self.cell_of(region.center());
        self.cell_min = (self.cell_min.0.min(cell.0), self.cell_min.1.min(cell.1));
        self.cell_max = (self.cell_max.0.max(cell.0), self.cell_max.1.max(cell.1));
        let i = (cell.1 * self.grid_w + cell.0) as usize;
        self.cells[i].push((key, region));
        self.cell_exts[i] = self.cell_exts[i].max(region.diameter());
        self.len += 1;
    }

    /// Removes an item by key; returns `true` if it was present.
    pub fn remove(&mut self, key: usize, region: &Trr) -> bool {
        let cell = self.cell_of(region.center());
        let v = &mut self.cells[(cell.1 * self.grid_w + cell.0) as usize];
        if let Some(i) = v.iter().position(|(k, _)| *k == key) {
            v.swap_remove(i);
            self.len -= 1;
            return true;
        }
        false
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The largest region diameter ever inserted (conservative: never
    /// shrunk on removal). Query ring bounds derive from it, so callers
    /// maintaining an index long-term (the incremental planner) watch this
    /// to decide when a rebuild pays off.
    pub fn max_extent(&self) -> f64 {
        self.max_extent
    }

    /// The cell edge length: the scale against which region extents are
    /// "large" for this index (ring walks lengthen once extents pass it).
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Returns `true` if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The nearest other item to `region` (excluding `key` itself), by
    /// exact region distance, or `None` if the index has no other items.
    pub fn nearest(&self, key: usize, region: &Trr) -> Option<(usize, f64)> {
        self.nearest_with_hint(key, region, None)
    }

    /// [`GridIndex::nearest`] seeded with a known item and its exact
    /// region distance (it must currently be stored in the index): ring
    /// expansion prunes against the hint from the start, so callers that
    /// already hold a good candidate — the incremental planner refreshing
    /// a surviving neighbor cache — pay only the cells that could beat it.
    /// Ties resolve toward the hint (a strictly closer item replaces it).
    pub fn nearest_with_hint(
        &self,
        key: usize,
        region: &Trr,
        hint: Option<(usize, f64)>,
    ) -> Option<(usize, f64)> {
        if self.len <= 1 {
            return None;
        }
        let center_cell = self.cell_of(region.center());
        // Every populated cell lies within Chebyshev distance `max_ring` of
        // the query cell, so rings beyond it cannot contain items.
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        let mut best: Option<(usize, f64)> = hint;
        for ring in 0..=max_ring {
            // Lower bound on distance for items in this ring: their center
            // is at least (ring - 1) cells away (center-to-center L1 is at
            // least the per-axis gap); region distance trims at most half
            // of each diameter off that.
            let base = ((ring - 1).max(0) as f64) * self.cell_size;
            let ring_lb = base - 0.5 * (self.max_extent + region.diameter());
            if let Some((_, d)) = best {
                if d <= ring_lb {
                    break;
                }
            }
            for_ring_cells(center_cell, ring, |cx, cy| {
                let Some((items, ext)) = self.slot(cx, cy) else {
                    return;
                };
                // The same bound with the cell's own extent: a far-away
                // huge region cannot force item scans here.
                if let Some((_, d)) = best {
                    if d <= base - 0.5 * (ext + region.diameter()) {
                        return;
                    }
                }
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((*k, d));
                    }
                }
            });
        }
        best
    }

    /// The nearest other item to `region` at exact region distance
    /// *strictly below* `bound`, or `None` when nothing beats the bound.
    /// Ring expansion prunes against `bound` from the start, so a tight
    /// bound touches only a handful of cells — the incremental planner
    /// checks every surviving neighbor cache against a small grid of a
    /// round's new subtrees this way, each query bounded by its own
    /// cached distance.
    pub fn nearest_within(&self, key: usize, region: &Trr, bound: f64) -> Option<(usize, f64)> {
        if self.len == 0 {
            return None;
        }
        let center_cell = self.cell_of(region.center());
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        let mut best: Option<(usize, f64)> = None;
        for ring in 0..=max_ring {
            let base = ((ring - 1).max(0) as f64) * self.cell_size;
            let ring_lb = base - 0.5 * (self.max_extent + region.diameter());
            let cap = best.map_or(bound, |(_, d)| d);
            if ring_lb >= cap {
                break;
            }
            for_ring_cells(center_cell, ring, |cx, cy| {
                let Some((items, ext)) = self.slot(cx, cy) else {
                    return;
                };
                let cap = best.map_or(bound, |(_, d)| d);
                if base - 0.5 * (ext + region.diameter()) >= cap {
                    return;
                }
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if d < bound && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((*k, d));
                    }
                }
            });
        }
        best
    }

    /// Raises the cap of the cell containing `region`'s center to at least
    /// `value` (see [`GridIndex::neighbors_within_capped`]). Caps only
    /// ever grow between builds — conservative under removals and
    /// re-pointed caches — and `build` resets them to zero, so long-lived
    /// callers must re-note after a rebuild.
    pub fn note_cap(&mut self, region: &Trr, value: f64) {
        let cell = self.cell_of(region.center());
        let i = (cell.1 * self.grid_w + cell.0) as usize;
        if value > self.cell_caps[i] {
            self.cell_caps[i] = value;
        }
    }

    /// [`GridIndex::neighbors_within`], additionally skipping cells whose
    /// noted cap ([`GridIndex::note_cap`]) rules every item out: a cell is
    /// visited only if some item in it could lie *strictly closer* than
    /// the cell's own cap. The planner's neighbor-takeover scan uses this
    /// with per-entry cached distances as caps, so the global `bound`
    /// (the largest cached distance anywhere) only sets the ring-walk
    /// horizon while dense regions prune themselves locally.
    pub fn neighbors_within_capped<F: FnMut(usize, f64)>(
        &self,
        key: usize,
        region: &Trr,
        bound: f64,
        mut f: F,
    ) {
        if self.len == 0 {
            return;
        }
        let center_cell = self.cell_of(region.center());
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        for ring in 0..=max_ring {
            let base = ((ring - 1).max(0) as f64) * self.cell_size;
            let ring_lb = base - 0.5 * (self.max_extent + region.diameter());
            if ring_lb > bound {
                break;
            }
            for_ring_cells(center_cell, ring, |cx, cy| {
                let Some((items, ext)) = self.slot(cx, cy) else {
                    return;
                };
                let i = (cy * self.grid_w + cx) as usize;
                let cell_bound = self.cell_caps[i].min(bound);
                if base - 0.5 * (ext + region.diameter()) >= cell_bound {
                    return;
                }
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if d <= bound {
                        f(*k, d);
                    }
                }
            });
        }
    }

    /// Visits every item (other than `key`) whose exact region distance to
    /// `region` is at most `bound`, calling `f(item_key, distance)`.
    /// Ring expansion stops as soon as no unvisited cell can hold an item
    /// within the bound, so tight bounds touch only a few cells.
    pub fn neighbors_within<F: FnMut(usize, f64)>(
        &self,
        key: usize,
        region: &Trr,
        bound: f64,
        mut f: F,
    ) {
        if self.len == 0 {
            return;
        }
        let center_cell = self.cell_of(region.center());
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        for ring in 0..=max_ring {
            let base = ((ring - 1).max(0) as f64) * self.cell_size;
            let ring_lb = base - 0.5 * (self.max_extent + region.diameter());
            if ring_lb > bound {
                break;
            }
            for_ring_cells(center_cell, ring, |cx, cy| {
                let Some((items, ext)) = self.slot(cx, cy) else {
                    return;
                };
                if base - 0.5 * (ext + region.diameter()) > bound {
                    return;
                }
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if d <= bound {
                        f(*k, d);
                    }
                }
            });
        }
    }
}

/// Visits the cells at Chebyshev ring `r` around `center` (just the center
/// for `r = 0`), inline — queries run per merge, so the ring walk must not
/// allocate. The visit order (top/bottom rows interleaved by column, then
/// the side columns) is part of the planner's deterministic tie-breaking:
/// keep it stable.
#[inline]
fn for_ring_cells(center: (i64, i64), r: i64, mut f: impl FnMut(i64, i64)) {
    let (cx, cy) = center;
    if r == 0 {
        f(cx, cy);
        return;
    }
    for dx in -r..=r {
        f(cx + dx, cy - r);
        f(cx + dx, cy + r);
    }
    for dy in (-r + 1)..r {
        f(cx - r, cy + dy);
        f(cx + r, cy + dy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<(usize, Trr)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (i, Trr::from_point(Point::new(x, y))))
            .collect()
    }

    #[test]
    fn nearest_matches_bruteforce_on_random_points() {
        // Deterministic pseudo-random layout.
        let mut coords = Vec::new();
        let mut s: u64 = 42;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 16) % 10_000) as f64 / 10.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 16) % 10_000) as f64 / 10.0;
            coords.push((x, y));
        }
        let items = pts(&coords);
        let idx = GridIndex::build(&items);
        for (key, region) in &items {
            let (nn, d) = idx.nearest(*key, region).unwrap();
            // Brute force.
            let (bf, bd) = items
                .iter()
                .filter(|(k, _)| k != key)
                .map(|(k, t)| (*k, region.distance(t)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!(
                (d - bd).abs() < 1e-9,
                "key {key}: grid found {nn}@{d}, brute force {bf}@{bd}"
            );
        }
    }

    #[test]
    fn nearest_none_for_single_item() {
        let items = pts(&[(0.0, 0.0)]);
        let idx = GridIndex::build(&items);
        assert!(idx.nearest(0, &items[0].1).is_none());
    }

    #[test]
    fn insert_remove_roundtrip() {
        let items = pts(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        let mut idx = GridIndex::build(&items);
        assert_eq!(idx.len(), 3);
        assert!(idx.remove(1, &items[1].1));
        assert!(!idx.remove(1, &items[1].1));
        assert_eq!(idx.len(), 2);
        let (nn, d) = idx.nearest(0, &items[0].1).unwrap();
        assert_eq!(nn, 2);
        assert_eq!(d, 20.0);
        idx.insert(1, items[1].1);
        let (nn, _) = idx.nearest(0, &items[0].1).unwrap();
        assert_eq!(nn, 1);
    }

    #[test]
    fn regions_with_extent_use_region_distance() {
        // A big region whose center is far but whose edge is near.
        let a = (0usize, Trr::from_point(Point::new(0.0, 0.0)));
        let big = (1usize, Trr::from_point(Point::new(100.0, 0.0)).dilate(95.0));
        let far = (2usize, Trr::from_point(Point::new(30.0, 0.0)));
        let items = vec![a, big, far];
        let idx = GridIndex::build(&items);
        let (nn, d) = idx.nearest(0, &items[0].1).unwrap();
        assert_eq!(nn, 1, "the dilated region is nearer by set distance");
        assert!((d - 5.0).abs() < 1e-9);
    }

    #[test]
    fn neighbors_within_finds_exactly_the_in_range_items() {
        let items = pts(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (25.0, 0.0),
            (100.0, 0.0),
            (31.0, 0.0),
        ]);
        let idx = GridIndex::build(&items);
        let mut found: Vec<(usize, f64)> = Vec::new();
        idx.neighbors_within(0, &items[0].1, 30.0, |k, d| found.push((k, d)));
        found.sort_by_key(|&(k, _)| k);
        assert_eq!(found, vec![(1, 10.0), (2, 25.0)]);
        // Zero bound: only exact-contact items; none here.
        let mut none = 0;
        idx.neighbors_within(3, &items[3].1, 1.0, |_, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn clustered_points_found_across_cells() {
        let items = pts(&[
            (0.0, 0.0),
            (1000.0, 1000.0),
            (1000.5, 1000.5),
            (2000.0, 0.0),
        ]);
        let idx = GridIndex::build(&items);
        let (nn, _) = idx.nearest(1, &items[1].1).unwrap();
        assert_eq!(nn, 2);
        let (nn0, d0) = idx.nearest(0, &items[0].1).unwrap();
        assert_eq!(nn0, 1);
        assert!((d0 - 2000.0).abs() < 1e-9);
    }
}
