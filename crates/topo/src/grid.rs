//! Bucketed neighbor index over subtree root regions.

use std::collections::HashMap;

use astdme_geom::{Point, Trr};

/// A uniform-grid index over region center points, answering approximate
/// nearest-neighbor queries by exact region distance.
///
/// Regions are bucketed by center; queries expand rings of cells outward
/// and stop once no unvisited cell can beat the best exact distance found
/// (accounting for region extents). Used by the merge planners to avoid
/// all-pairs scans.
///
/// ```
/// use astdme_geom::{Point, Trr};
/// use astdme_topo::GridIndex;
///
/// let items = vec![
///     (7, Trr::from_point(Point::new(0.0, 0.0))),
///     (9, Trr::from_point(Point::new(10.0, 0.0))),
///     (4, Trr::from_point(Point::new(100.0, 100.0))),
/// ];
/// let idx = GridIndex::build(&items);
/// let (nn, d) = idx.nearest(7, &items[0].1).unwrap();
/// assert_eq!(nn, 9);
/// assert_eq!(d, 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cells: HashMap<(i64, i64), Vec<(usize, Trr)>>,
    cell_size: f64,
    origin: Point,
    max_extent: f64,
    len: usize,
    // Populated cell bounds (conservative: never shrunk on removal).
    cell_min: (i64, i64),
    cell_max: (i64, i64),
}

impl GridIndex {
    /// Builds an index over `(key, region)` items.
    ///
    /// Keys must be unique; duplicates make `nearest` results ambiguous.
    pub fn build(items: &[(usize, Trr)]) -> Self {
        let n = items.len().max(1);
        let centers: Vec<Point> = items.iter().map(|(_, t)| t.center()).collect();
        let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
        for c in &centers {
            x0 = x0.min(c.x);
            y0 = y0.min(c.y);
            x1 = x1.max(c.x);
            y1 = y1.max(c.y);
        }
        if centers.is_empty() {
            (x0, y0, x1, y1) = (0.0, 0.0, 1.0, 1.0);
        }
        // ~1-2 items per cell on average; for degenerate (e.g. collinear)
        // layouts the area underestimates spacing badly, so also respect
        // the per-axis average spacing, and never go below a sane floor.
        let (w, h) = (x1 - x0, y1 - y0);
        let cell_size = (w * h / n as f64)
            .sqrt()
            .max(w / n as f64)
            .max(h / n as f64)
            .max(1e-9 * (1.0 + w.max(h)))
            .max(1e-9);
        let max_extent = items
            .iter()
            .map(|(_, t)| t.diameter())
            .fold(0.0f64, f64::max);
        let mut g = Self {
            cells: HashMap::with_capacity(n),
            cell_size,
            origin: Point::new(x0, y0),
            max_extent,
            len: 0,
            cell_min: (i64::MAX, i64::MAX),
            cell_max: (i64::MIN, i64::MIN),
        };
        for (key, trr) in items {
            g.insert(*key, *trr);
        }
        g
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            ((p.x - self.origin.x) / self.cell_size).floor() as i64,
            ((p.y - self.origin.y) / self.cell_size).floor() as i64,
        )
    }

    /// Inserts an item.
    pub fn insert(&mut self, key: usize, region: Trr) {
        self.max_extent = self.max_extent.max(region.diameter());
        let cell = self.cell_of(region.center());
        self.cell_min = (self.cell_min.0.min(cell.0), self.cell_min.1.min(cell.1));
        self.cell_max = (self.cell_max.0.max(cell.0), self.cell_max.1.max(cell.1));
        self.cells.entry(cell).or_default().push((key, region));
        self.len += 1;
    }

    /// Removes an item by key; returns `true` if it was present.
    pub fn remove(&mut self, key: usize, region: &Trr) -> bool {
        let cell = self.cell_of(region.center());
        if let Some(v) = self.cells.get_mut(&cell) {
            if let Some(i) = v.iter().position(|(k, _)| *k == key) {
                v.swap_remove(i);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The largest region diameter ever inserted (conservative: never
    /// shrunk on removal). Query ring bounds derive from it, so callers
    /// maintaining an index long-term (the incremental planner) watch this
    /// to decide when a rebuild pays off.
    pub fn max_extent(&self) -> f64 {
        self.max_extent
    }

    /// Returns `true` if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The nearest other item to `region` (excluding `key` itself), by
    /// exact region distance, or `None` if the index has no other items.
    pub fn nearest(&self, key: usize, region: &Trr) -> Option<(usize, f64)> {
        if self.len <= 1 {
            return None;
        }
        let center_cell = self.cell_of(region.center());
        // Every populated cell lies within Chebyshev distance `max_ring` of
        // the query cell, so rings beyond it cannot contain items.
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        let mut best: Option<(usize, f64)> = None;
        for ring in 0..=max_ring {
            // Lower bound on distance for items in this ring: their center
            // is at least (ring - 1) cells away; subtract region extents.
            let ring_lb =
                ((ring - 1).max(0) as f64) * self.cell_size - self.max_extent - region.diameter();
            if let Some((_, d)) = best {
                if d <= ring_lb {
                    break;
                }
            }
            for (cx, cy) in ring_cells(center_cell, ring) {
                let Some(items) = self.cells.get(&(cx, cy)) else {
                    continue;
                };
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((*k, d));
                    }
                }
            }
        }
        best
    }

    /// Visits every item (other than `key`) whose exact region distance to
    /// `region` is at most `bound`, calling `f(item_key, distance)`.
    /// Ring expansion stops as soon as no unvisited cell can hold an item
    /// within the bound, so tight bounds touch only a few cells.
    pub fn neighbors_within<F: FnMut(usize, f64)>(
        &self,
        key: usize,
        region: &Trr,
        bound: f64,
        mut f: F,
    ) {
        if self.len == 0 {
            return;
        }
        let center_cell = self.cell_of(region.center());
        let max_ring = (center_cell.0 - self.cell_min.0)
            .abs()
            .max((self.cell_max.0 - center_cell.0).abs())
            .max((center_cell.1 - self.cell_min.1).abs())
            .max((self.cell_max.1 - center_cell.1).abs())
            .max(0);
        for ring in 0..=max_ring {
            let ring_lb =
                ((ring - 1).max(0) as f64) * self.cell_size - self.max_extent - region.diameter();
            if ring_lb > bound {
                break;
            }
            for (cx, cy) in ring_cells(center_cell, ring) {
                let Some(items) = self.cells.get(&(cx, cy)) else {
                    continue;
                };
                for (k, t) in items {
                    if *k == key {
                        continue;
                    }
                    let d = region.distance(t);
                    if d <= bound {
                        f(*k, d);
                    }
                }
            }
        }
    }
}

/// The cells at Chebyshev ring `r` around `center` (all cells for `r = 0`
/// means just the center).
fn ring_cells(center: (i64, i64), r: i64) -> Vec<(i64, i64)> {
    let (cx, cy) = center;
    if r == 0 {
        return vec![center];
    }
    let mut out = Vec::with_capacity((8 * r) as usize);
    for dx in -r..=r {
        out.push((cx + dx, cy - r));
        out.push((cx + dx, cy + r));
    }
    for dy in (-r + 1)..r {
        out.push((cx - r, cy + dy));
        out.push((cx + r, cy + dy));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<(usize, Trr)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (i, Trr::from_point(Point::new(x, y))))
            .collect()
    }

    #[test]
    fn nearest_matches_bruteforce_on_random_points() {
        // Deterministic pseudo-random layout.
        let mut coords = Vec::new();
        let mut s: u64 = 42;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 16) % 10_000) as f64 / 10.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 16) % 10_000) as f64 / 10.0;
            coords.push((x, y));
        }
        let items = pts(&coords);
        let idx = GridIndex::build(&items);
        for (key, region) in &items {
            let (nn, d) = idx.nearest(*key, region).unwrap();
            // Brute force.
            let (bf, bd) = items
                .iter()
                .filter(|(k, _)| k != key)
                .map(|(k, t)| (*k, region.distance(t)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!(
                (d - bd).abs() < 1e-9,
                "key {key}: grid found {nn}@{d}, brute force {bf}@{bd}"
            );
        }
    }

    #[test]
    fn nearest_none_for_single_item() {
        let items = pts(&[(0.0, 0.0)]);
        let idx = GridIndex::build(&items);
        assert!(idx.nearest(0, &items[0].1).is_none());
    }

    #[test]
    fn insert_remove_roundtrip() {
        let items = pts(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        let mut idx = GridIndex::build(&items);
        assert_eq!(idx.len(), 3);
        assert!(idx.remove(1, &items[1].1));
        assert!(!idx.remove(1, &items[1].1));
        assert_eq!(idx.len(), 2);
        let (nn, d) = idx.nearest(0, &items[0].1).unwrap();
        assert_eq!(nn, 2);
        assert_eq!(d, 20.0);
        idx.insert(1, items[1].1);
        let (nn, _) = idx.nearest(0, &items[0].1).unwrap();
        assert_eq!(nn, 1);
    }

    #[test]
    fn regions_with_extent_use_region_distance() {
        // A big region whose center is far but whose edge is near.
        let a = (0usize, Trr::from_point(Point::new(0.0, 0.0)));
        let big = (1usize, Trr::from_point(Point::new(100.0, 0.0)).dilate(95.0));
        let far = (2usize, Trr::from_point(Point::new(30.0, 0.0)));
        let items = vec![a, big, far];
        let idx = GridIndex::build(&items);
        let (nn, d) = idx.nearest(0, &items[0].1).unwrap();
        assert_eq!(nn, 1, "the dilated region is nearer by set distance");
        assert!((d - 5.0).abs() < 1e-9);
    }

    #[test]
    fn neighbors_within_finds_exactly_the_in_range_items() {
        let items = pts(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (25.0, 0.0),
            (100.0, 0.0),
            (31.0, 0.0),
        ]);
        let idx = GridIndex::build(&items);
        let mut found: Vec<(usize, f64)> = Vec::new();
        idx.neighbors_within(0, &items[0].1, 30.0, |k, d| found.push((k, d)));
        found.sort_by_key(|&(k, _)| k);
        assert_eq!(found, vec![(1, 10.0), (2, 25.0)]);
        // Zero bound: only exact-contact items; none here.
        let mut none = 0;
        idx.neighbors_within(3, &items[3].1, 1.0, |_, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn clustered_points_found_across_cells() {
        let items = pts(&[
            (0.0, 0.0),
            (1000.0, 1000.0),
            (1000.5, 1000.5),
            (2000.0, 0.0),
        ]);
        let idx = GridIndex::build(&items);
        let (nn, _) = idx.nearest(1, &items[1].1).unwrap();
        assert_eq!(nn, 2);
        let (nn0, d0) = idx.nearest(0, &items[0].1).unwrap();
        assert_eq!(nn0, 1);
        assert!((d0 - 2000.0).abs() < 1e-9);
    }
}
