//! Property tests: the incremental [`MergePlanner`] produces the same pair
//! sequence as the from-scratch [`plan_round`] reference on random
//! instances, across merge orders and delay bias, all the way from the
//! grid regime down through the brute-force tail.

use astdme_geom::{Point, Trr};
use astdme_topo::{plan_round, MergeOrder, MergePlanner, MergeSpace, TopoConfig};
use proptest::prelude::*;

/// A mergeable space: points that weld into hulls, with delays that grow
/// by the merge distance (so the delay bias sees evolving values).
struct Welds {
    regions: Vec<Trr>,
    delays: Vec<f64>,
}

impl Welds {
    fn new(coords: &[(f64, f64)]) -> Self {
        Self {
            regions: coords
                .iter()
                .map(|&(x, y)| Trr::from_point(Point::new(x, y)))
                .collect(),
            delays: vec![0.0; coords.len()],
        }
    }

    /// Registers the merge of `a` and `b`; returns the new key.
    fn merge(&mut self, a: usize, b: usize) -> usize {
        let m = self.regions.len();
        let d = self.regions[a].distance(&self.regions[b]);
        self.regions.push(self.regions[a].hull(&self.regions[b]));
        // Proportional to added wire: exercises the delay-target bias.
        self.delays
            .push(self.delays[a].max(self.delays[b]) + d * 1e-16);
        m
    }
}

impl MergeSpace for Welds {
    fn region(&self, id: usize) -> Trr {
        self.regions[id]
    }
    fn distance(&self, a: usize, b: usize) -> f64 {
        self.regions[a].distance(&self.regions[b])
    }
    fn delay(&self, id: usize) -> f64 {
        self.delays[id]
    }
}

fn coords_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    // 2..140 points over a 20k die: spans brute-force-only runs (< 32) and
    // grid-regime runs, including the regime transition mid-run.
    (2usize..140, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 16) % 2_000_000) as f64 / 100.0
        };
        (0..n).map(|_| (next(), next())).collect()
    })
}

fn config_strategy() -> impl Strategy<Value = TopoConfig> {
    let order = prop_oneof![
        Just(MergeOrder::GreedyNearest),
        (0.1..0.5f64).prop_map(|fraction| MergeOrder::MultiMerge { fraction }),
    ];
    let weight = prop_oneof![Just(0.0), 1e12..1e14f64];
    (order, weight).prop_map(|(order, delay_weight)| TopoConfig {
        order,
        delay_weight,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drives both planners to a single subtree, comparing every round.
    #[test]
    fn incremental_matches_from_scratch(coords in coords_strategy(), cfg in config_strategy()) {
        let mut space = Welds::new(&coords);
        let mut active: Vec<usize> = (0..coords.len()).collect();
        let mut planner = MergePlanner::new(&space, &active, cfg);
        let mut rounds = 0usize;
        while active.len() > 1 {
            let reference = plan_round(&space, &active, &cfg);
            let incremental = planner.plan_round(&space);
            prop_assert_eq!(
                &reference,
                &incremental,
                "round {} diverged (n={})", rounds, coords.len()
            );
            prop_assert!(!reference.is_empty(), "planner must make progress");
            for (a, b) in reference {
                let m = space.merge(a, b);
                // Same swap-remove discipline as the planner's dense set.
                for x in [a, b] {
                    let i = active.iter().position(|&k| k == x).expect("active");
                    active.swap_remove(i);
                }
                active.push(m);
                planner.apply_merge(&space, a, b, m);
            }
            rounds += 1;
        }
        prop_assert_eq!(planner.len(), 1);
        prop_assert_eq!(planner.sole_key(), active[0]);
    }

    /// Batched rounds ([`MergePlanner::apply_round`]) produce the same
    /// merge sequence as reporting every merge individually through
    /// [`MergePlanner::apply_merge`] — the refresh sweep and the
    /// point-update path must be observably equivalent.
    #[test]
    fn batched_apply_round_matches_sequential(coords in coords_strategy(), cfg in config_strategy()) {
        let run = |batched: bool| {
            let mut space = Welds::new(&coords);
            let mut planner =
                MergePlanner::new(&space, &(0..coords.len()).collect::<Vec<_>>(), cfg);
            let mut log = Vec::new();
            while planner.len() > 1 {
                let pairs = planner.plan_round(&space);
                assert!(!pairs.is_empty(), "planner must make progress");
                let mut round = Vec::new();
                for (a, b) in pairs {
                    let m = space.merge(a, b);
                    log.push((a, b, m));
                    if batched {
                        round.push((a, b, m));
                    } else {
                        planner.apply_merge(&space, a, b, m);
                    }
                }
                if batched {
                    planner.apply_round(&space, &round);
                }
            }
            log
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// The planner is deterministic: two independent planners over the
    /// same instance produce identical sequences.
    #[test]
    fn planner_is_deterministic(coords in coords_strategy(), cfg in config_strategy()) {
        let run = || {
            let mut space = Welds::new(&coords);
            let mut planner =
                MergePlanner::new(&space, &(0..coords.len()).collect::<Vec<_>>(), cfg);
            let mut log = Vec::new();
            while planner.len() > 1 {
                let pairs = planner.plan_round(&space);
                for (a, b) in pairs {
                    let m = space.merge(a, b);
                    planner.apply_merge(&space, a, b, m);
                    log.push((a, b, m));
                }
            }
            log
        };
        prop_assert_eq!(run(), run());
    }
}
