//! Ordered parallel map over slices, scheduled by work stealing onto a
//! **persistent worker pool**.
//!
//! The workspace's `parallel` features parallelize pair-cost estimation in
//! the merge engine and planner, and the fleet layer fans whole instances
//! out across threads. The container image has no crates.io access, so
//! instead of `rayon` this crate provides the primitives those layers
//! need: an ordered fork-join map ([`par_map`], [`par_map_with`],
//! [`par_map_indexed`]) that preserves input order (making parallel runs
//! bit-identical to serial ones), plus the lower-level pool entry points
//! ([`scope_with`], [`spawn_pooled`]) the fleet's completion-order
//! streams are built on.
//!
//! # The pool
//!
//! Worker threads are spawned lazily on first use, park on a private job
//! channel between calls, and are **reused across calls** — a `par_map`
//! is a submission to the pool, not a spawn/join cycle, so the per-call
//! cost is a channel send and a wakeup rather than thread creation. The
//! caller always participates in barrier calls as one of the workers
//! (there is no handoff for the serial share of the work), and parked
//! workers never keep the process alive. See [`pool_threads`] for the
//! reuse diagnostic and the `pool` module docs for the lifecycle.
//!
//! # Scheduling: small-block work stealing
//!
//! Workers do **not** get fixed contiguous chunks. All workers share one
//! atomic next-index cursor and repeatedly claim small blocks of
//! consecutive items from it until the slice is exhausted. A worker that
//! lands on cheap items comes back for more while a worker stuck on an
//! expensive item keeps crunching — so skewed workloads (one huge item
//! among many small ones) no longer leave most threads idle, which is
//! exactly the shape of a routing portfolio. Each result is written to the
//! slot of its *input* index, so the output vector is identical at every
//! thread count: stealing changes scheduling, never output.
//!
//! # Thread counts
//!
//! The fan-out width is, in priority order: the process-global
//! [`set_thread_override`] count when set, else the `ASTDME_THREADS`
//! environment variable (read once per process) when set and ≥ 1, else
//! `available_parallelism`. [`effective_threads`] reports the resolved
//! value.
//!
//! # Nested parallelism
//!
//! The map never nests: pool threads are permanently marked, barrier
//! callers are marked for the duration of their participation, and any
//! call made *from inside a worker* takes the serial fallback. An outer
//! fan-out (the fleet layer mapping over instances) therefore forces
//! every inner fan-out (the engine mapping over candidate pairs) serial,
//! instead of multiplying thread counts. Results are unchanged either way
//! — the serial fallback is byte-for-byte the one-thread schedule — so
//! the guard only prevents oversubscription, never changes output.
//!
//! # Panics
//!
//! If the mapped closure panics on a worker thread, the panic **payload**
//! is re-raised on the caller via [`std::panic::resume_unwind`] — not
//! swallowed into a generic join-failure message — so callers that isolate
//! failures (the fleet layer catches per-instance panics) and test
//! harnesses both see the original message. Pool workers survive
//! panicking jobs and return to the idle list.

// The one `unsafe` block in the workspace lives in `pool::scope_with`
// (lifetime erasure made sound by a completion latch); everything else
// stays checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{pool_threads, scope_with, spawn_pooled};

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    /// Whether the current thread is a parallel-map worker. Workers run
    /// nested calls serially (see the module docs).
    pub(crate) static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling thread is inside a parallel-map worker — i.e. a
/// further [`par_map`] call from here would take the serial fallback.
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Process-global thread-count override (0 = none / auto).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequent map call to use exactly `n` threads instead of
/// the automatic count (`None` restores auto — the `ASTDME_THREADS`
/// environment variable if set, else `available_parallelism`). `Some(1)`
/// runs the serial fallback — byte-for-byte the code path a build without
/// any parallelism takes.
///
/// Results are thread-count invariant by construction (outputs are
/// written to input-order slots), so this knob only changes *scheduling*:
/// the determinism tests sweep it to prove exactly that, and the scaling
/// bench uses it for its parallel-vs-serial measurement. Process-global;
/// concurrent tests that flip it should serialize on a lock and restore
/// the previous value with [`override_guard`] so a failing test cannot
/// poison later ones.
pub fn set_thread_override(n: Option<NonZeroUsize>) {
    THREAD_OVERRIDE.store(n.map_or(0, NonZeroUsize::get), Ordering::SeqCst);
}

/// The active thread-count override, if any.
pub fn thread_override() -> Option<NonZeroUsize> {
    NonZeroUsize::new(THREAD_OVERRIDE.load(Ordering::SeqCst))
}

/// RAII handle restoring the previous thread-count override on drop; see
/// [`override_guard`].
#[must_use = "dropping the guard immediately restores the previous override"]
#[derive(Debug)]
pub struct ThreadOverrideGuard {
    prev: Option<NonZeroUsize>,
}

/// Sets the thread-count override to `n` and returns a guard that restores
/// the *previous* value when dropped — including during a panic unwind, so
/// a failing test or bench cannot leave its override in place to poison
/// whatever runs next in the same process.
///
/// Tests that sweep several counts can keep calling
/// [`set_thread_override`] inside the guard's scope; the guard always
/// restores the value it captured at construction.
pub fn override_guard(n: Option<NonZeroUsize>) -> ThreadOverrideGuard {
    let prev = thread_override();
    set_thread_override(n);
    ThreadOverrideGuard { prev }
}

impl Drop for ThreadOverrideGuard {
    fn drop(&mut self) {
        set_thread_override(self.prev);
    }
}

/// The automatic thread count, read once per process: the
/// `ASTDME_THREADS` environment variable when set to an integer ≥ 1
/// (the CI knob that makes fan-out real on single-core runners), else
/// `available_parallelism`. Cached because the std call is not cheap on
/// Linux (it re-reads cgroup quota files every time) and the merge engine
/// calls [`par_map`] once per merge — uncached, the lookup alone cost ~2x
/// on single-core machines. An explicit [`set_thread_override`] wins over
/// both sources.
fn auto_threads() -> usize {
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Some(n) = std::env::var("ASTDME_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    })
}

/// The thread count a fan-out would use right now: the
/// [`set_thread_override`] value when set, else the automatic count (see
/// [`auto_threads`'s sources](set_thread_override)). The fleet layer
/// sizes its streaming worker sets from this.
pub fn effective_threads() -> usize {
    thread_override().map_or_else(auto_threads, NonZeroUsize::get)
}

/// Per-worker scheduling statistics of one parallel map call: the raw
/// material for load-balance and latency measurements (the scaling
/// bench's skewed fleet portfolio records [`StealStats::balance`], and
/// its `latency` section reads the queue-wait and idle columns).
///
/// All four vectors are parallel: entry *j* describes worker *j* of the
/// call (in completion order — which worker is which varies run to run,
/// the multiset of entries is what's meaningful).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StealStats {
    /// Busy wall-clock seconds per worker, from the moment its work loop
    /// started to the moment the shared cursor ran dry for it. One entry
    /// per worker; exactly one entry when the call took the serial
    /// fallback.
    pub worker_busy_seconds: Vec<f64>,
    /// Items processed per worker (sums to the input length).
    pub worker_items: Vec<usize>,
    /// Seconds each worker waited between call submission and its work
    /// loop starting — pool wakeup latency (near zero for the caller,
    /// who starts immediately). Zero for the serial fallback.
    pub worker_queue_wait_seconds: Vec<f64>,
    /// Seconds of each worker's busy window *not* spent executing items:
    /// cursor claims, context setup, and result buffering. Zero for the
    /// serial fallback.
    pub worker_idle_seconds: Vec<f64>,
}

impl StealStats {
    /// Number of workers that participated (1 for the serial fallback).
    pub fn workers(&self) -> usize {
        self.worker_busy_seconds.len()
    }

    /// Load balance as max/min worker busy-time over the workers that
    /// processed at least one item: 1.0 is perfect, large values mean
    /// some loaded workers sat on far less work than others. Workers that
    /// claimed nothing are excluded — a thread that woke after the
    /// cursor ran dry is wakeup latency, not imbalance, and dividing by
    /// its ~zero busy time would turn the metric into noise. Defined as
    /// 1.0 when fewer than two workers processed items (including the
    /// serial fallback).
    pub fn balance(&self) -> f64 {
        let busy = || {
            self.worker_busy_seconds
                .iter()
                .zip(&self.worker_items)
                .filter(|&(_, &items)| items > 0)
                .map(|(&secs, _)| secs)
        };
        if busy().count() < 2 {
            return 1.0;
        }
        let max = busy().fold(0.0f64, f64::max);
        let min = busy().fold(f64::INFINITY, f64::min);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }

    /// The worst queue wait across workers (0.0 with no workers): how
    /// long the slowest-to-wake worker sat between submission and its
    /// first cursor claim.
    pub fn max_queue_wait_seconds(&self) -> f64 {
        self.worker_queue_wait_seconds
            .iter()
            .fold(0.0f64, |a, &b| a.max(b))
    }

    /// Total non-item seconds inside workers' busy windows, summed across
    /// workers — the scheduling overhead of the call.
    pub fn total_idle_seconds(&self) -> f64 {
        self.worker_idle_seconds.iter().sum()
    }
}

/// How many steal blocks each worker's fair share is split into. Higher
/// means finer-grained stealing (better balance, more cursor contention);
/// 8 keeps the block claim cost negligible while letting a worker that
/// drew the expensive items shed the rest of the slice to its peers.
const BLOCKS_PER_WORKER: usize = 8;

/// Steal-block size for `len` items over `threads` workers: small blocks,
/// never zero. For the fleet's portfolio-sized inputs this degenerates to
/// single-item stealing, which is what a handful of wildly-uneven
/// instances wants.
fn steal_block(len: usize, threads: usize) -> usize {
    (len / (threads * BLOCKS_PER_WORKER)).max(1)
}

/// The worker count a call over `len` items would fan out to; 1 means the
/// serial fallback (small input, single core, nested call, or an override
/// of one). Public so the fleet layer can make the same decision for its
/// own streaming loops and stay consistent with the map primitives.
pub fn fanout_threads(len: usize, min_len: usize) -> usize {
    let threads = effective_threads();
    if len < min_len.max(2) || threads < 2 || in_parallel_worker() {
        1
    } else {
        threads.min(len)
    }
}

/// The serial schedule: one context, one in-order pass. Both the fallback
/// path and the one-thread reference the determinism tests compare
/// against.
fn serial_map<C, T, R>(
    items: &[T],
    make_ctx: impl Fn() -> C,
    f: impl Fn(&mut C, usize, &T) -> R,
) -> Vec<R> {
    let mut ctx = make_ctx();
    items
        .iter()
        .enumerate()
        .map(|(i, item)| f(&mut ctx, i, item))
        .collect()
}

/// One worker's contribution to a [`steal_map`] call.
struct StealPart<R> {
    results: Vec<(usize, R)>,
    busy: f64,
    queue_wait: f64,
    idle: f64,
}

/// The work-stealing schedule on the pool: the caller plus `threads - 1`
/// pool helpers share an atomic cursor, claim small blocks of consecutive
/// indices, and tag every result with its input index; the caller-side
/// reassembly writes each result into its input-order slot, so the output
/// is bit-identical to [`serial_map`].
fn steal_map<C, T, R, F>(
    items: &[T],
    threads: usize,
    make_ctx: &(impl Fn() -> C + Sync),
    f: &F,
) -> (Vec<R>, StealStats)
where
    T: Sync,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let block = steal_block(items.len(), threads);
    let next = AtomicUsize::new(0);
    let submitted = Instant::now();
    let parts: Mutex<Vec<StealPart<R>>> = Mutex::new(Vec::with_capacity(threads));
    let work = |_slot: usize| {
        let queue_wait = submitted.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut ctx = make_ctx();
        let mut results: Vec<(usize, R)> = Vec::new();
        let mut item_seconds = 0.0f64;
        loop {
            let start = next.fetch_add(block, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            let end = (start + block).min(items.len());
            let tb = Instant::now();
            for (i, item) in items[start..end].iter().enumerate() {
                results.push((start + i, f(&mut ctx, start + i, item)));
            }
            item_seconds += tb.elapsed().as_secs_f64();
        }
        let busy = t0.elapsed().as_secs_f64();
        parts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(StealPart {
                results,
                busy,
                queue_wait,
                idle: (busy - item_seconds).max(0.0),
            });
    };
    // The caller participates as a worker; helpers come from the pool.
    // If the pool is saturated and fewer (or zero) helpers run, the
    // cursor still covers every index — the call just balances worse.
    pool::scope_with(threads - 1, &work, |_running| work(0));
    let parts = parts.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut stats = StealStats::default();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for part in parts {
        stats.worker_items.push(part.results.len());
        stats.worker_busy_seconds.push(part.busy);
        stats.worker_queue_wait_seconds.push(part.queue_wait);
        stats.worker_idle_seconds.push(part.idle);
        for (i, r) in part.results {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("stealing cursor covers every index exactly once"))
        .collect();
    (out, stats)
}

/// The serial fallback's [`StealStats`]: one worker, whole-loop busy time,
/// no queue wait and no scheduling idle.
fn serial_stats(len: usize, busy: f64) -> StealStats {
    StealStats {
        worker_busy_seconds: vec![busy],
        worker_items: vec![len],
        worker_queue_wait_seconds: vec![0.0],
        worker_idle_seconds: vec![0.0],
    }
}

/// Maps `f` over `items` with the index of each item, using up to
/// [`effective_threads`] pool workers. Inputs shorter than `min_len` (or
/// single-core machines, or calls from inside a worker) run serially.
/// Results land in input order regardless of which worker computed them,
/// so output is deterministic at every thread count.
pub fn par_map_indexed<T, R, F>(items: &[T], min_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = fanout_threads(items.len(), min_len);
    if threads < 2 {
        return serial_map(items, || (), |(), i, item| f(i, item));
    }
    steal_map(items, threads, &|| (), &|(): &mut (), i, item| f(i, item)).0
}

/// Like [`par_map_indexed`], but additionally returns the per-worker
/// [`StealStats`] of the run — the fleet layer's balance measurements ride
/// on this. The serial fallback reports a single worker whose busy time is
/// the whole loop.
pub fn par_map_indexed_stats<T, R, F>(items: &[T], min_len: usize, f: F) -> (Vec<R>, StealStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = fanout_threads(items.len(), min_len);
    if threads < 2 {
        let t0 = Instant::now();
        let out = serial_map(items, || (), |(), i, item| f(i, item));
        let stats = serial_stats(items.len(), t0.elapsed().as_secs_f64());
        return (out, stats);
    }
    steal_map(items, threads, &|| (), &|(): &mut (), i, item| f(i, item))
}

/// Maps `f` over `items`, in input order — a thin wrapper over the
/// work-stealing scheduler of [`par_map_indexed`] that ignores the item
/// index.
pub fn par_map<T, R, F>(items: &[T], min_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, min_len, |_, item| f(item))
}

/// Like [`par_map`], but each worker thread builds one scratch context
/// with `make_ctx` and threads it through every item it steals — for
/// callers whose per-item work wants reusable buffers without per-item
/// allocation. The serial fallback builds exactly one context. A thin
/// wrapper over the same work-stealing scheduler as [`par_map_indexed`].
pub fn par_map_with<C, T, R, F>(
    items: &[T],
    min_len: usize,
    make_ctx: impl Fn() -> C + Sync,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut C, &T) -> R + Sync,
{
    let threads = fanout_threads(items.len(), min_len);
    if threads < 2 {
        return serial_map(items, make_ctx, |ctx, _, item| f(ctx, item));
    }
    steal_map(items, threads, &make_ctx, &|ctx: &mut C, _, item| {
        f(ctx, item)
    })
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::{Mutex, MutexGuard};

    /// Tests touching the process-global override (or asserting worker
    /// counts, which the override perturbs) serialize on this lock.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    /// Lock + RAII override for a test: serializes on [`OVERRIDE_LOCK`]
    /// and restores the previous override when dropped — even when the
    /// test body panics mid-sweep, so one failing test cannot poison the
    /// override for the rest of the binary.
    fn pinned(n: Option<NonZeroUsize>) -> (MutexGuard<'static, ()>, ThreadOverrideGuard) {
        let lock = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        (lock, override_guard(n))
    }

    #[test]
    fn thread_override_is_respected_and_results_invariant() {
        let _pin = pinned(None);
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for n in [1usize, 2, 3, 8] {
            set_thread_override(NonZeroUsize::new(n));
            assert_eq!(thread_override(), NonZeroUsize::new(n));
            assert_eq!(effective_threads(), n);
            assert_eq!(par_map(&items, 0, |x| x * 7), expected, "threads = {n}");
        }
        set_thread_override(None);
        assert_eq!(thread_override(), None);
        assert_eq!(par_map(&items, 0, |x| x * 7), expected);
    }

    #[test]
    fn override_guard_restores_previous_value() {
        let _pin = pinned(NonZeroUsize::new(3));
        {
            let _inner = override_guard(NonZeroUsize::new(7));
            assert_eq!(thread_override(), NonZeroUsize::new(7));
            // Sweeping inside the guard is fine; drop restores 3, not 5.
            set_thread_override(NonZeroUsize::new(5));
        }
        assert_eq!(thread_override(), NonZeroUsize::new(3));
    }

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let parallel = par_map(&items, 0, |x| x * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn indexed_map_sees_input_indices() {
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..777).map(|x| x * 2).collect();
        let out = par_map_indexed(&items, 0, |i, &x| (i as u64) * 1000 + x);
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as u64) * 1000 + x)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn skewed_costs_stay_bit_identical() {
        // One very expensive item at the front, many cheap ones behind it:
        // the work-stealing schedule must reassemble input order exactly.
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u32> = (0..97).map(|i| if i == 0 { 200_000 } else { 50 }).collect();
        let crunch = |x: u32| -> u64 { (0..x as u64).fold(7u64, |a, b| a.wrapping_mul(31) ^ b) };
        let serial: Vec<u64> = items.iter().map(|&x| crunch(x)).collect();
        assert_eq!(par_map(&items, 0, |&x| crunch(x)), serial);
    }

    #[test]
    fn stats_cover_every_item_and_worker() {
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..300).collect();
        let (out, stats) = par_map_indexed_stats(&items, 0, |_, &x| x + 1);
        assert_eq!(out, (1..=300).collect::<Vec<u64>>());
        assert_eq!(stats.workers(), 4);
        assert_eq!(stats.worker_items.iter().sum::<usize>(), items.len());
        assert!(stats.balance() >= 1.0);
        // The new latency columns are parallel to the busy column and
        // non-negative.
        assert_eq!(stats.worker_queue_wait_seconds.len(), 4);
        assert_eq!(stats.worker_idle_seconds.len(), 4);
        assert!(stats.max_queue_wait_seconds() >= 0.0);
        assert!(stats.total_idle_seconds() >= 0.0);
    }

    #[test]
    fn balance_ignores_workers_that_claimed_nothing() {
        // A worker that woke after the cursor ran dry (0 items, ~zero
        // busy time) is wakeup latency, not imbalance.
        let stats = StealStats {
            worker_busy_seconds: vec![2.0, 1.0, 1e-7],
            worker_items: vec![5, 3, 0],
            ..StealStats::default()
        };
        assert_eq!(stats.balance(), 2.0);
        let one_loaded = StealStats {
            worker_busy_seconds: vec![2.0, 1e-7],
            worker_items: vec![8, 0],
            ..StealStats::default()
        };
        assert_eq!(one_loaded.balance(), 1.0);
    }

    #[test]
    fn serial_fallback_reports_one_worker() {
        let _pin = pinned(NonZeroUsize::new(1));
        let items: Vec<u64> = (0..10).collect();
        let (_, stats) = par_map_indexed_stats(&items, 0, |_, &x| x);
        assert_eq!(stats.workers(), 1);
        assert_eq!(stats.worker_items, vec![10]);
        assert_eq!(stats.worker_queue_wait_seconds, vec![0.0]);
        assert_eq!(stats.worker_idle_seconds, vec![0.0]);
        assert_eq!(stats.balance(), 1.0);
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, 0, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .expect_err("the worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("format-style panics carry a String payload");
        assert_eq!(msg, "boom at 13");
    }

    #[test]
    fn pool_survives_panicking_jobs_and_is_reused() {
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..64).collect();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, 0, |&x| {
                assert_ne!(x, 7, "injected");
                x
            })
        }));
        // The panicking call's workers went back to the idle list; the
        // next call runs normally on the same pool.
        let expected: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(par_map(&items, 0, |x| x + 1), expected);
    }

    #[test]
    fn repeated_calls_reuse_pool_threads() {
        let _pin = pinned(NonZeroUsize::new(3));
        let items: Vec<u64> = (0..256).collect();
        // Warm the pool, then measure: many further calls at the same
        // width must not spawn additional threads.
        let _ = par_map(&items, 0, |x| x + 1);
        let warmed = pool_threads();
        for _ in 0..32 {
            let _ = par_map(&items, 0, |x| x * 2);
        }
        assert_eq!(
            pool_threads(),
            warmed,
            "steady-state calls must reuse parked workers, not spawn"
        );
    }

    #[test]
    fn spawn_pooled_runs_detached_jobs() {
        let (tx, rx) = mpsc::channel::<u64>();
        for i in 0..8u64 {
            let tx = tx.clone();
            spawn_pooled(move || {
                // Detached jobs run on marked workers: nested fan-outs
                // inside them take the serial fallback.
                assert!(in_parallel_worker());
                tx.send(i * 10).unwrap();
            });
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_with_reports_helper_count_and_joins() {
        let _pin = pinned(None);
        let hits = AtomicUsize::new(0);
        let work = |_slot: usize| {
            hits.fetch_add(1, Ordering::SeqCst);
        };
        let running = scope_with(2, &work, |running| {
            // The caller is marked as a worker for the duration of main.
            assert!(in_parallel_worker());
            running
        });
        assert!(running <= 2);
        // Every granted helper ran its work closure by the time the
        // barrier returned.
        assert_eq!(hits.load(Ordering::SeqCst), running);
        assert!(!in_parallel_worker(), "caller mark must be restored");
    }

    #[test]
    fn small_inputs_run_serially() {
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, 64, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: [u32; 0] = [];
        assert!(par_map(&items, 0, |x| *x).is_empty());
    }

    #[test]
    fn nested_par_map_runs_serially_inside_workers() {
        let _pin = pinned(NonZeroUsize::new(4));
        assert!(!in_parallel_worker(), "main thread is not a worker");
        let items: Vec<u64> = (0..64).collect();
        // Each outer item runs an inner par_map; the guard must force the
        // inner one onto the worker thread itself (observable via the
        // worker flag staying set and results staying correct).
        let nested_flags = par_map(&items, 0, |&x| {
            let inner: Vec<u64> = par_map(&[x, x + 1, x + 2], 0, |y| y * 2);
            (in_parallel_worker(), inner)
        });
        for (i, (flagged, inner)) in nested_flags.iter().enumerate() {
            assert!(*flagged, "outer item {i} should run on a marked worker");
            let x = i as u64;
            assert_eq!(inner, &vec![2 * x, 2 * x + 2, 2 * x + 4]);
        }
        assert!(
            !in_parallel_worker(),
            "participation must not leak the worker mark"
        );
    }

    #[test]
    fn par_map_with_reuses_one_context_per_worker() {
        // Pin the override: the worker-count bound below must match the
        // fan-out actually used, not whatever the auto count says — and
        // certainly not an override a previously-failed test left behind
        // (the RAII guards rule that out, too).
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..10_000).collect();
        let contexts = AtomicUsize::new(0);
        let out = par_map_with(
            &items,
            0,
            || {
                contexts.fetch_add(1, Ordering::SeqCst);
                Vec::<u64>::new()
            },
            |buf, &x| {
                buf.clear();
                buf.push(x);
                buf[0] * 2
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let workers = effective_threads();
        assert!(
            contexts.load(Ordering::SeqCst) <= workers.min(items.len()),
            "one context per worker, not per item"
        );
    }
}
