//! Ordered parallel map over slices, built on `std::thread::scope`, with a
//! work-stealing schedule.
//!
//! The workspace's `parallel` features parallelize pair-cost estimation in
//! the merge engine and planner, and the fleet layer fans whole instances
//! out across threads. The container image has no crates.io access, so
//! instead of `rayon` this crate provides the one primitive those features
//! need: an ordered fork-join map ([`par_map`], [`par_map_with`],
//! [`par_map_indexed`]) that preserves input order (making parallel runs
//! bit-identical to serial ones) and falls back to a serial loop for small
//! inputs where thread spawn overhead dominates.
//!
//! # Scheduling: small-block work stealing
//!
//! Workers do **not** get fixed contiguous chunks. All workers share one
//! atomic next-index cursor and repeatedly claim small blocks of
//! consecutive items from it until the slice is exhausted. A worker that
//! lands on cheap items comes back for more while a worker stuck on an
//! expensive item keeps crunching — so skewed workloads (one huge item
//! among many small ones) no longer leave most threads idle, which is
//! exactly the shape of a routing portfolio. Each result is written to the
//! slot of its *input* index, so the output vector is identical at every
//! thread count: stealing changes scheduling, never output.
//!
//! # Nested parallelism
//!
//! The map never nests: worker threads are marked, and any call made *from
//! inside a worker* takes the serial fallback. An outer fan-out (the fleet
//! layer mapping over instances) therefore forces every inner fan-out (the
//! engine mapping over candidate pairs) serial, instead of multiplying
//! thread counts. Results are unchanged either way — the serial fallback
//! is byte-for-byte the one-thread schedule — so the guard only prevents
//! oversubscription, never changes output.
//!
//! # Panics
//!
//! If the mapped closure panics on a worker thread, the panic **payload**
//! is re-raised on the caller via [`std::panic::resume_unwind`] — not
//! swallowed into a generic join-failure message — so callers that isolate
//! failures (the fleet layer catches per-instance panics) and test
//! harnesses both see the original message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

thread_local! {
    /// Whether the current thread is a parallel-map worker. Workers run
    /// nested calls serially (see the module docs).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling thread is inside a parallel-map worker — i.e. a
/// further [`par_map`] call from here would take the serial fallback.
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Process-global thread-count override (0 = none / auto).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequent map call to use exactly `n` threads instead of
/// `available_parallelism` (`None` restores auto). `Some(1)` runs the
/// serial fallback — byte-for-byte the code path a build without any
/// parallelism takes.
///
/// Results are thread-count invariant by construction (outputs are
/// written to input-order slots), so this knob only changes *scheduling*:
/// the determinism tests sweep it to prove exactly that, and the scaling
/// bench uses it for its parallel-vs-serial measurement. Process-global;
/// concurrent tests that flip it should serialize on a lock and restore
/// the previous value with [`override_guard`] so a failing test cannot
/// poison later ones.
pub fn set_thread_override(n: Option<NonZeroUsize>) {
    THREAD_OVERRIDE.store(n.map_or(0, NonZeroUsize::get), Ordering::SeqCst);
}

/// The active thread-count override, if any.
pub fn thread_override() -> Option<NonZeroUsize> {
    NonZeroUsize::new(THREAD_OVERRIDE.load(Ordering::SeqCst))
}

/// RAII handle restoring the previous thread-count override on drop; see
/// [`override_guard`].
#[must_use = "dropping the guard immediately restores the previous override"]
#[derive(Debug)]
pub struct ThreadOverrideGuard {
    prev: Option<NonZeroUsize>,
}

/// Sets the thread-count override to `n` and returns a guard that restores
/// the *previous* value when dropped — including during a panic unwind, so
/// a failing test or bench cannot leave its override in place to poison
/// whatever runs next in the same process.
///
/// Tests that sweep several counts can keep calling
/// [`set_thread_override`] inside the guard's scope; the guard always
/// restores the value it captured at construction.
pub fn override_guard(n: Option<NonZeroUsize>) -> ThreadOverrideGuard {
    let prev = thread_override();
    set_thread_override(n);
    ThreadOverrideGuard { prev }
}

impl Drop for ThreadOverrideGuard {
    fn drop(&mut self) {
        set_thread_override(self.prev);
    }
}

/// `available_parallelism`, read once per process. The std call is not
/// cheap on Linux (it re-reads cgroup quota files every time), and the
/// merge engine calls [`par_map`] once per merge — uncached, the lookup
/// alone cost ~2x on single-core machines.
fn auto_threads() -> usize {
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Per-worker scheduling statistics of one parallel map call: the raw
/// material for load-balance measurements (the scaling bench's skewed
/// fleet portfolio records [`StealStats::balance`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StealStats {
    /// Busy wall-clock seconds per worker, from thread start to the moment
    /// the shared cursor ran dry for it. One entry per worker; exactly one
    /// entry when the call took the serial fallback.
    pub worker_busy_seconds: Vec<f64>,
    /// Items processed per worker (sums to the input length).
    pub worker_items: Vec<usize>,
}

impl StealStats {
    /// Number of workers that participated (1 for the serial fallback).
    pub fn workers(&self) -> usize {
        self.worker_busy_seconds.len()
    }

    /// Load balance as max/min worker busy-time over the workers that
    /// processed at least one item: 1.0 is perfect, large values mean
    /// some loaded workers sat on far less work than others. Workers that
    /// claimed nothing are excluded — a thread that spawned after the
    /// cursor ran dry is spawn latency, not imbalance, and dividing by
    /// its ~zero busy time would turn the metric into noise. Defined as
    /// 1.0 when fewer than two workers processed items (including the
    /// serial fallback).
    pub fn balance(&self) -> f64 {
        let busy = || {
            self.worker_busy_seconds
                .iter()
                .zip(&self.worker_items)
                .filter(|&(_, &items)| items > 0)
                .map(|(&secs, _)| secs)
        };
        if busy().count() < 2 {
            return 1.0;
        }
        let max = busy().fold(0.0f64, f64::max);
        let min = busy().fold(f64::INFINITY, f64::min);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }
}

/// How many steal blocks each worker's fair share is split into. Higher
/// means finer-grained stealing (better balance, more cursor contention);
/// 8 keeps the block claim cost negligible while letting a worker that
/// drew the expensive items shed the rest of the slice to its peers.
const BLOCKS_PER_WORKER: usize = 8;

/// Steal-block size for `len` items over `threads` workers: small blocks,
/// never zero. For the fleet's portfolio-sized inputs this degenerates to
/// single-item stealing, which is what a handful of wildly-uneven
/// instances wants.
fn steal_block(len: usize, threads: usize) -> usize {
    (len / (threads * BLOCKS_PER_WORKER)).max(1)
}

/// The worker count a call over `len` items would fan out to; 1 means the
/// serial fallback (small input, single core, nested call, or an override
/// of one).
fn fanout_threads(len: usize, min_len: usize) -> usize {
    let threads = thread_override().map_or_else(auto_threads, NonZeroUsize::get);
    if len < min_len.max(2) || threads < 2 || in_parallel_worker() {
        1
    } else {
        threads.min(len)
    }
}

/// The serial schedule: one context, one in-order pass. Both the fallback
/// path and the one-thread reference the determinism tests compare
/// against.
fn serial_map<C, T, R>(
    items: &[T],
    make_ctx: impl Fn() -> C,
    f: impl Fn(&mut C, usize, &T) -> R,
) -> Vec<R> {
    let mut ctx = make_ctx();
    items
        .iter()
        .enumerate()
        .map(|(i, item)| f(&mut ctx, i, item))
        .collect()
}

/// The work-stealing schedule: `threads` workers share an atomic cursor,
/// claim small blocks of consecutive indices, and tag every result with
/// its input index; the caller-side reassembly writes each result into its
/// input-order slot, so the output is bit-identical to [`serial_map`].
fn steal_map<C, T, R, F>(
    items: &[T],
    threads: usize,
    make_ctx: &(impl Fn() -> C + Sync),
    f: &F,
) -> (Vec<R>, StealStats)
where
    T: Sync,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let block = steal_block(items.len(), threads);
    let next = AtomicUsize::new(0);
    let mut parts: Vec<(Vec<(usize, R)>, f64)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Fresh OS thread: mark it so nested calls in `f` run
                    // serially instead of spawning another layer.
                    IN_WORKER.with(|w| w.set(true));
                    let t0 = Instant::now();
                    let mut ctx = make_ctx();
                    let mut part: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = next.fetch_add(block, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + block).min(items.len());
                        for (i, item) in items[start..end].iter().enumerate() {
                            part.push((start + i, f(&mut ctx, start + i, item)));
                        }
                    }
                    (part, t0.elapsed().as_secs_f64())
                })
            })
            .collect();
        parts = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                // Surface the worker's own panic payload on the caller,
                // not a second-hand "worker panicked" message.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
    });
    let mut stats = StealStats::default();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (part, busy) in parts {
        stats.worker_items.push(part.len());
        stats.worker_busy_seconds.push(busy);
        for (i, r) in part {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("stealing cursor covers every index exactly once"))
        .collect();
    (out, stats)
}

/// Maps `f` over `items` with the index of each item, using up to
/// `available_parallelism` work-stealing workers (or the
/// [`set_thread_override`] count, when set). Inputs shorter than `min_len`
/// (or single-core machines, or calls from inside a worker) run serially.
/// Results land in input order regardless of which worker computed them,
/// so output is deterministic at every thread count.
pub fn par_map_indexed<T, R, F>(items: &[T], min_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = fanout_threads(items.len(), min_len);
    if threads < 2 {
        return serial_map(items, || (), |(), i, item| f(i, item));
    }
    steal_map(items, threads, &|| (), &|(): &mut (), i, item| f(i, item)).0
}

/// Like [`par_map_indexed`], but additionally returns the per-worker
/// [`StealStats`] of the run — the fleet layer's balance measurements ride
/// on this. The serial fallback reports a single worker whose busy time is
/// the whole loop.
pub fn par_map_indexed_stats<T, R, F>(items: &[T], min_len: usize, f: F) -> (Vec<R>, StealStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = fanout_threads(items.len(), min_len);
    if threads < 2 {
        let t0 = Instant::now();
        let out = serial_map(items, || (), |(), i, item| f(i, item));
        let stats = StealStats {
            worker_busy_seconds: vec![t0.elapsed().as_secs_f64()],
            worker_items: vec![items.len()],
        };
        return (out, stats);
    }
    steal_map(items, threads, &|| (), &|(): &mut (), i, item| f(i, item))
}

/// Maps `f` over `items`, in input order — a thin wrapper over the
/// work-stealing scheduler of [`par_map_indexed`] that ignores the item
/// index.
pub fn par_map<T, R, F>(items: &[T], min_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, min_len, |_, item| f(item))
}

/// Like [`par_map`], but each worker thread builds one scratch context
/// with `make_ctx` and threads it through every item it steals — for
/// callers whose per-item work wants reusable buffers without per-item
/// allocation. The serial fallback builds exactly one context. A thin
/// wrapper over the same work-stealing scheduler as [`par_map_indexed`].
pub fn par_map_with<C, T, R, F>(
    items: &[T],
    min_len: usize,
    make_ctx: impl Fn() -> C + Sync,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut C, &T) -> R + Sync,
{
    let threads = fanout_threads(items.len(), min_len);
    if threads < 2 {
        return serial_map(items, make_ctx, |ctx, _, item| f(ctx, item));
    }
    steal_map(items, threads, &make_ctx, &|ctx: &mut C, _, item| {
        f(ctx, item)
    })
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Tests touching the process-global override (or asserting worker
    /// counts, which the override perturbs) serialize on this lock.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    /// Lock + RAII override for a test: serializes on [`OVERRIDE_LOCK`]
    /// and restores the previous override when dropped — even when the
    /// test body panics mid-sweep, so one failing test cannot poison the
    /// override for the rest of the binary.
    fn pinned(n: Option<NonZeroUsize>) -> (MutexGuard<'static, ()>, ThreadOverrideGuard) {
        let lock = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        (lock, override_guard(n))
    }

    #[test]
    fn thread_override_is_respected_and_results_invariant() {
        let _pin = pinned(None);
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for n in [1usize, 2, 3, 8] {
            set_thread_override(NonZeroUsize::new(n));
            assert_eq!(thread_override(), NonZeroUsize::new(n));
            assert_eq!(par_map(&items, 0, |x| x * 7), expected, "threads = {n}");
        }
        set_thread_override(None);
        assert_eq!(thread_override(), None);
        assert_eq!(par_map(&items, 0, |x| x * 7), expected);
    }

    #[test]
    fn override_guard_restores_previous_value() {
        let _pin = pinned(NonZeroUsize::new(3));
        {
            let _inner = override_guard(NonZeroUsize::new(7));
            assert_eq!(thread_override(), NonZeroUsize::new(7));
            // Sweeping inside the guard is fine; drop restores 3, not 5.
            set_thread_override(NonZeroUsize::new(5));
        }
        assert_eq!(thread_override(), NonZeroUsize::new(3));
    }

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let parallel = par_map(&items, 0, |x| x * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn indexed_map_sees_input_indices() {
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..777).map(|x| x * 2).collect();
        let out = par_map_indexed(&items, 0, |i, &x| (i as u64) * 1000 + x);
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as u64) * 1000 + x)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn skewed_costs_stay_bit_identical() {
        // One very expensive item at the front, many cheap ones behind it:
        // the work-stealing schedule must reassemble input order exactly.
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u32> = (0..97).map(|i| if i == 0 { 200_000 } else { 50 }).collect();
        let crunch = |x: u32| -> u64 { (0..x as u64).fold(7u64, |a, b| a.wrapping_mul(31) ^ b) };
        let serial: Vec<u64> = items.iter().map(|&x| crunch(x)).collect();
        assert_eq!(par_map(&items, 0, |&x| crunch(x)), serial);
    }

    #[test]
    fn stats_cover_every_item_and_worker() {
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..300).collect();
        let (out, stats) = par_map_indexed_stats(&items, 0, |_, &x| x + 1);
        assert_eq!(out, (1..=300).collect::<Vec<u64>>());
        assert_eq!(stats.workers(), 4);
        assert_eq!(stats.worker_items.iter().sum::<usize>(), items.len());
        assert!(stats.balance() >= 1.0);
    }

    #[test]
    fn balance_ignores_workers_that_claimed_nothing() {
        // A worker that spawned after the cursor ran dry (0 items, ~zero
        // busy time) is spawn latency, not imbalance.
        let stats = StealStats {
            worker_busy_seconds: vec![2.0, 1.0, 1e-7],
            worker_items: vec![5, 3, 0],
        };
        assert_eq!(stats.balance(), 2.0);
        let one_loaded = StealStats {
            worker_busy_seconds: vec![2.0, 1e-7],
            worker_items: vec![8, 0],
        };
        assert_eq!(one_loaded.balance(), 1.0);
    }

    #[test]
    fn serial_fallback_reports_one_worker() {
        let _pin = pinned(NonZeroUsize::new(1));
        let items: Vec<u64> = (0..10).collect();
        let (_, stats) = par_map_indexed_stats(&items, 0, |_, &x| x);
        assert_eq!(stats.workers(), 1);
        assert_eq!(stats.worker_items, vec![10]);
        assert_eq!(stats.balance(), 1.0);
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, 0, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .expect_err("the worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("format-style panics carry a String payload");
        assert_eq!(msg, "boom at 13");
    }

    #[test]
    fn small_inputs_run_serially() {
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, 64, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: [u32; 0] = [];
        assert!(par_map(&items, 0, |x| *x).is_empty());
    }

    #[test]
    fn nested_par_map_runs_serially_inside_workers() {
        let _pin = pinned(NonZeroUsize::new(4));
        assert!(!in_parallel_worker(), "main thread is not a worker");
        let items: Vec<u64> = (0..64).collect();
        // Each outer item runs an inner par_map; the guard must force the
        // inner one onto the worker thread itself (observable via the
        // worker flag staying set and results staying correct).
        let nested_flags = par_map(&items, 0, |&x| {
            let inner: Vec<u64> = par_map(&[x, x + 1, x + 2], 0, |y| y * 2);
            (in_parallel_worker(), inner)
        });
        for (i, (flagged, inner)) in nested_flags.iter().enumerate() {
            assert!(*flagged, "outer item {i} should run on a marked worker");
            let x = i as u64;
            assert_eq!(inner, &vec![2 * x, 2 * x + 2, 2 * x + 4]);
        }
    }

    #[test]
    fn par_map_with_reuses_one_context_per_worker() {
        // Pin the override: the worker-count bound below must match the
        // fan-out actually used, not whatever `available_parallelism`
        // says — and certainly not an override a previously-failed test
        // left behind (the RAII guards rule that out, too).
        let _pin = pinned(NonZeroUsize::new(4));
        let items: Vec<u64> = (0..10_000).collect();
        let contexts = AtomicUsize::new(0);
        let out = par_map_with(
            &items,
            0,
            || {
                contexts.fetch_add(1, Ordering::SeqCst);
                Vec::<u64>::new()
            },
            |buf, &x| {
                buf.clear();
                buf.push(x);
                buf[0] * 2
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let workers = thread_override().map_or_else(
            || std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            NonZeroUsize::get,
        );
        assert!(
            contexts.load(Ordering::SeqCst) <= workers.min(items.len()),
            "one context per worker, not per item"
        );
    }
}
