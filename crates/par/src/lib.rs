//! Ordered parallel map over slices, built on `std::thread::scope`.
//!
//! The workspace's `parallel` features parallelize pair-cost estimation in
//! the merge engine and planner, and the fleet layer fans whole instances
//! out across threads. The container image has no crates.io access, so
//! instead of `rayon` this crate provides the one primitive those features
//! need: [`par_map`], a fork-join map that preserves input order (making
//! parallel runs bit-identical to serial ones) and falls back to a serial
//! loop for small inputs where thread spawn overhead dominates.
//!
//! # Nested parallelism
//!
//! [`par_map`] never nests: worker threads are marked, and any `par_map`
//! call made *from inside a worker* takes the serial fallback. An outer
//! fan-out (the fleet layer mapping over instances) therefore forces every
//! inner fan-out (the engine mapping over candidate pairs) serial, instead
//! of multiplying thread counts. Results are unchanged either way — the
//! serial fallback is byte-for-byte the one-thread schedule — so the guard
//! only prevents oversubscription, never changes output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Whether the current thread is a [`par_map`] worker. Workers run
    /// nested `par_map` calls serially (see the module docs).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling thread is inside a [`par_map`] worker — i.e. a
/// further `par_map` call from here would take the serial fallback.
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Process-global thread-count override (0 = none / auto).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequent [`par_map`] / [`par_map_with`] call to use
/// exactly `n` threads instead of `available_parallelism` (`None` restores
/// auto). `Some(1)` runs the serial fallback — byte-for-byte the code path
/// a build without any parallelism takes.
///
/// Results are thread-count invariant by construction (outputs are
/// reassembled in input order), so this knob only changes *scheduling*:
/// the determinism tests sweep it to prove exactly that, and the scaling
/// bench uses it for its parallel-vs-serial measurement. Process-global;
/// concurrent tests that flip it should serialize on a lock.
pub fn set_thread_override(n: Option<NonZeroUsize>) {
    THREAD_OVERRIDE.store(n.map_or(0, NonZeroUsize::get), Ordering::SeqCst);
}

/// The active thread-count override, if any.
pub fn thread_override() -> Option<NonZeroUsize> {
    NonZeroUsize::new(THREAD_OVERRIDE.load(Ordering::SeqCst))
}

/// `available_parallelism`, read once per process. The std call is not
/// cheap on Linux (it re-reads cgroup quota files every time), and the
/// merge engine calls [`par_map`] once per merge — uncached, the lookup
/// alone cost ~2x on single-core machines.
fn auto_threads() -> usize {
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Maps `f` over `items`, in order, using up to `available_parallelism`
/// threads (or the [`set_thread_override`] count, when set). Inputs shorter
/// than `min_len` (or single-core machines) run serially. Results are
/// returned in input order regardless of scheduling, so output is
/// deterministic.
pub fn par_map<T, R, F>(items: &[T], min_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, min_len, || (), move |(), item| f(item))
}

/// Like [`par_map`], but each worker thread builds one scratch context
/// with `make_ctx` and threads it through its whole chunk — for callers
/// whose per-item work wants reusable buffers without per-item
/// allocation. The serial fallback builds exactly one context.
pub fn par_map_with<C, T, R, F>(
    items: &[T],
    min_len: usize,
    make_ctx: impl Fn() -> C + Sync,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut C, &T) -> R + Sync,
{
    let threads = thread_override().map_or_else(auto_threads, NonZeroUsize::get);
    if items.len() < min_len.max(2) || threads < 2 || in_parallel_worker() {
        let mut ctx = make_ctx();
        return items.iter().map(|item| f(&mut ctx, item)).collect();
    }
    let threads = threads.min(items.len());
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(|| {
                    // Fresh OS thread: mark it so nested par_map calls in
                    // `f` run serially instead of spawning another layer.
                    IN_WORKER.with(|w| w.set(true));
                    let mut ctx = make_ctx();
                    part.iter()
                        .map(|item| f(&mut ctx, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect();
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests touching the process-global override (or asserting worker
    /// counts, which the override perturbs) serialize on this lock.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn thread_override_is_respected_and_results_invariant() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for n in [1usize, 2, 3, 8] {
            set_thread_override(NonZeroUsize::new(n));
            assert_eq!(thread_override(), NonZeroUsize::new(n));
            assert_eq!(par_map(&items, 0, |x| x * 7), expected, "threads = {n}");
        }
        set_thread_override(None);
        assert_eq!(thread_override(), None);
        assert_eq!(par_map(&items, 0, |x| x * 7), expected);
    }

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let parallel = par_map(&items, 0, |x| x * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn small_inputs_run_serially() {
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, 64, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: [u32; 0] = [];
        assert!(par_map(&items, 0, |x| *x).is_empty());
    }

    #[test]
    fn nested_par_map_runs_serially_inside_workers() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_override(NonZeroUsize::new(4));
        assert!(!in_parallel_worker(), "main thread is not a worker");
        let items: Vec<u64> = (0..64).collect();
        // Each outer item runs an inner par_map; the guard must force the
        // inner one onto the worker thread itself (observable via the
        // worker flag staying set and results staying correct).
        let nested_flags = par_map(&items, 0, |&x| {
            let inner: Vec<u64> = par_map(&[x, x + 1, x + 2], 0, |y| y * 2);
            (in_parallel_worker(), inner)
        });
        set_thread_override(None);
        for (i, (flagged, inner)) in nested_flags.iter().enumerate() {
            assert!(*flagged, "outer item {i} should run on a marked worker");
            let x = i as u64;
            assert_eq!(inner, &vec![2 * x, 2 * x + 2, 2 * x + 4]);
        }
    }

    #[test]
    fn par_map_with_reuses_one_context_per_worker() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<u64> = (0..10_000).collect();
        let contexts = AtomicUsize::new(0);
        let out = par_map_with(
            &items,
            0,
            || {
                contexts.fetch_add(1, Ordering::SeqCst);
                Vec::<u64>::new()
            },
            |buf, &x| {
                buf.clear();
                buf.push(x);
                buf[0] * 2
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(
            contexts.load(Ordering::SeqCst) <= workers.min(items.len()),
            "one context per worker, not per item"
        );
    }
}
