//! The persistent worker pool behind every fan-out in this crate: lazily
//! spawned OS threads that park on a private job channel between calls and
//! are reused across calls, instead of being spawned and joined per call.
//!
//! # Lifecycle
//!
//! The pool starts empty. A fan-out checks out up to `n` idle workers
//! (spawning the shortfall, capped at `MAX_POOL_THREADS` per process) and
//! sends each one a job; when a worker finishes its job it checks itself
//! back into the idle list and parks on its channel again. Workers are
//! never joined — a parked worker costs one blocked OS thread and nothing
//! else, and parked threads do not keep the process alive. Every pool
//! thread is permanently marked as a parallel worker, so any nested
//! fan-out from a job takes the serial fallback (see the crate docs).
//!
//! # Two submission shapes
//!
//! * [`scope_with`] — the **blocking barrier** primitive: the caller
//!   participates in the work and does not return until every helper has
//!   finished. Because the call blocks, the work closure may borrow from
//!   the caller's stack (the classic scoped-thread contract, here checked
//!   by one audited `unsafe` lifetime erasure — see the safety comment).
//! * [`spawn_pooled`] — a **detached** job: it must own its data
//!   (`'static`), runs when a worker picks it up, and nothing waits for
//!   it. The fleet layer's completion-order streams ride on this; their
//!   handle types own their instances precisely because nothing here can
//!   promise to outwait a borrow (a leaked handle never joins).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::IN_WORKER;

/// A boxed unit of work handed to one parked worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A stashed panic payload from a helper, re-raised on the caller.
type PanicSlot = Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>;

/// One checked-out worker: the sending half of its private job channel.
/// Dropping a ticket after sending is fine — the worker holds its own
/// clone of the sender and re-enlists itself when the job completes.
struct Ticket(Sender<Job>);

/// Hard cap on pool threads per process — a sanity backstop far above any
/// real fan-out (thread counts come from `available_parallelism` or an
/// explicit override), not a tuning knob. Checkout shortfalls beyond it
/// degrade gracefully: barriers run the work on fewer helpers (the caller
/// always participates), detached jobs fall back to a one-shot thread.
const MAX_POOL_THREADS: usize = 256;

struct Pool {
    /// Parked workers available for checkout (LIFO: the most recently
    /// parked worker is the most likely to still be cache- and OS-warm).
    idle: Mutex<Vec<Ticket>>,
    /// Total pool threads ever spawned in this process.
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        idle: Mutex::new(Vec::new()),
        spawned: AtomicUsize::new(0),
    })
}

/// Number of pool threads spawned so far in this process — a diagnostic
/// for tests and benches proving reuse (repeated fan-outs must not grow
/// this past the fan-out width).
pub fn pool_threads() -> usize {
    pool().spawned.load(Ordering::Relaxed)
}

fn lock_idle() -> std::sync::MutexGuard<'static, Vec<Ticket>> {
    pool().idle.lock().unwrap_or_else(|e| e.into_inner())
}

/// The body of every pool thread: park on the channel, run one job, check
/// back in, park again. Exits (and ends the thread) only if its own sender
/// clone is gone, which never happens — the worker keeps one forever.
fn worker_main(rx: Receiver<Job>, self_sender: Sender<Job>) {
    IN_WORKER.with(|w| w.set(true));
    while let Ok(job) = rx.recv() {
        // Submitters wrap their jobs in `catch_unwind` and route payloads
        // to the caller; this outer catch only keeps the worker alive if
        // a payload ever slips through a submitter's wrapper.
        let _ = catch_unwind(AssertUnwindSafe(job));
        lock_idle().push(Ticket(self_sender.clone()));
    }
}

/// Checks out up to `want` workers: idle ones first, then freshly spawned
/// ones up to [`MAX_POOL_THREADS`]. May return fewer than `want` (even
/// zero); callers must treat the returned length as the real helper count.
fn checkout(want: usize) -> Vec<Ticket> {
    let mut out = Vec::with_capacity(want);
    if want == 0 {
        return out;
    }
    {
        let mut idle = lock_idle();
        let take = want.min(idle.len());
        let keep = idle.len() - take;
        out.extend(idle.drain(keep..));
    }
    while out.len() < want {
        let reserved = pool()
            .spawned
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < MAX_POOL_THREADS).then_some(n + 1)
            });
        if reserved.is_err() {
            break;
        }
        let (tx, rx) = channel::<Job>();
        let self_sender = tx.clone();
        let spawned = std::thread::Builder::new()
            .name("astdme-pool".into())
            .spawn(move || worker_main(rx, self_sender));
        match spawned {
            Ok(_) => out.push(Ticket(tx)),
            Err(_) => {
                pool().spawned.fetch_sub(1, Ordering::SeqCst);
                break;
            }
        }
    }
    out
}

/// A countdown latch: the caller blocks until every helper has counted
/// down. This is the object that makes borrowed-data submission sound.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut n = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *n -= 1;
        if *n == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut n = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            n = self.all_done.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Runs `f` with the current thread marked as a parallel worker, restoring
/// the previous mark afterwards (including on unwind) — the caller-side
/// half of the nested-fanout guard.
fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|w| w.set(self.0));
        }
    }
    let _restore = Restore(IN_WORKER.with(|w| w.replace(true)));
    f()
}

/// The blocking barrier primitive: runs `work(1..=running)` on up to
/// `helpers` pool workers while the caller runs `main(running)` on its own
/// thread (marked as a worker for the duration, so nested fan-outs inside
/// `main` take the serial fallback), then blocks until every helper has
/// finished before returning `main`'s result.
///
/// `running` is the number of helpers actually checked out — it can be
/// less than `helpers` (down to zero) if the pool is saturated, so a
/// `main` that *consumes* helper output must fall back to producing
/// inline when it receives zero.
///
/// Because this call does not return (or unwind) until every helper is
/// done, `work` may borrow data from the caller's stack even though pool
/// threads are `'static` — that is the entire point of the primitive.
///
/// # Panics
///
/// A panic in any helper is stashed and re-raised on the caller (original
/// payload, via [`std::panic::resume_unwind`]) after all helpers finish;
/// a panic in `main` likewise waits for the helpers before unwinding.
/// Pool workers themselves survive panicking jobs.
#[allow(unsafe_code)]
pub fn scope_with<R>(
    helpers: usize,
    work: &(dyn Fn(usize) + Sync),
    main: impl FnOnce(usize) -> R,
) -> R {
    let tickets = checkout(helpers);
    let running = tickets.len();
    if running == 0 {
        return run_as_worker(|| main(0));
    }
    let latch = Arc::new(Latch::new(running));
    let panic_slot: PanicSlot = Arc::new(Mutex::new(None));
    // SAFETY: `work` is only erased to `'static` so it can cross into the
    // pool threads' job boxes. Every job that captures it counts down the
    // latch as its final action, and this function — on both the return
    // and the unwind path (`main` runs under `catch_unwind`) — waits for
    // the latch before the borrow of `work` ends. No helper touches
    // `work` after its countdown, so the reference never outlives the
    // data it borrows.
    let work_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(work) };
    for (slot, ticket) in tickets.into_iter().enumerate() {
        let job_latch = Arc::clone(&latch);
        let panic_slot = Arc::clone(&panic_slot);
        let job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| work_static(slot + 1)));
            if let Err(payload) = result {
                let mut slot = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            job_latch.count_down();
        });
        if ticket.0.send(job).is_err() {
            // The worker's thread is gone (cannot happen while it holds
            // its own sender, but stay conservative): take over its latch
            // share so the barrier below cannot hang.
            latch.count_down();
        }
    }
    let main_result = catch_unwind(AssertUnwindSafe(|| run_as_worker(|| main(running))));
    latch.wait();
    let helper_panic = panic_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(payload) = helper_panic {
        resume_unwind(payload);
    }
    match main_result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// Submits one detached job to the pool: it runs when a worker picks it
/// up, and nothing waits for it — the job must own everything it touches
/// (`'static`). The worker running it is marked, so nested fan-outs
/// inside the job take the serial fallback.
///
/// If the pool is saturated (`MAX_POOL_THREADS` live workers, all busy)
/// the job falls back to a dedicated one-shot thread, and if even thread
/// spawning fails it runs inline on the caller — it is never dropped.
///
/// A panicking detached job is caught and its payload discarded (there is
/// no caller to re-raise on); submitters that care route failures through
/// their own channels, as the fleet layer's streams do.
pub fn spawn_pooled<F: FnOnce() + Send + 'static>(job: F) {
    let mut tickets = checkout(1);
    match tickets.pop() {
        Some(ticket) => {
            if let Err(failed) = ticket.0.send(Box::new(job)) {
                fallback_thread(failed.0);
            }
        }
        None => fallback_thread(Box::new(job)),
    }
}

/// Runs a job the pool could not take: on a fresh one-shot thread when
/// possible, inline (still marked as a worker) as the last resort. The
/// shared slot exists because a failed `spawn` does not hand the closure
/// back — the job must survive the attempt either way.
fn fallback_thread(job: Job) {
    let shared: Arc<Mutex<Option<Job>>> = Arc::new(Mutex::new(Some(job)));
    let for_thread = Arc::clone(&shared);
    let spawned = std::thread::Builder::new()
        .name("astdme-pool-overflow".into())
        .spawn(move || {
            IN_WORKER.with(|w| w.set(true));
            let taken = for_thread.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(job) = taken {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
        });
    if spawned.is_err() {
        let taken = shared.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(job) = taken {
            run_as_worker(|| {
                let _ = catch_unwind(AssertUnwindSafe(job));
            });
        }
    }
}
