//! Scheduler determinism under skew: random mixed-cost workloads mapped at
//! thread overrides 1/2/3/8 must produce output bit-identical to the
//! serial schedule — work stealing changes who computes an item, never
//! what lands in its slot.

use std::num::NonZeroUsize;

use proptest::prelude::*;

/// Deterministic busy-work whose cost scales with `rounds`: the value the
/// scheduler must reproduce regardless of which worker crunched it.
fn crunch(x: u64, rounds: u32) -> u64 {
    (0..rounds as u64).fold(x, |acc, i| {
        acc.wrapping_mul(6364136223846793005)
            .wrapping_add(i)
            .rotate_left(17)
    })
}

/// A skewed workload: item values plus per-item cost classes mixing very
/// cheap items with items hundreds of times more expensive, in random
/// positions — the shape that starves a fixed contiguous-chunk schedule.
fn workload() -> impl Strategy<Value = Vec<(u64, u32)>> {
    (1usize..120, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        (0..n)
            .map(|_| {
                let value = next();
                let rounds = match next() % 5 {
                    0 => 12_000, // expensive outlier
                    1 => 800,
                    _ => 40, // the cheap majority
                };
                (value, rounds as u32)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stealing_is_bit_identical_to_serial_across_thread_counts(items in workload()) {
        // RAII: a failing case restores whatever override was active
        // before this test instead of leaking its last sweep value.
        let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
        let f = |i: usize, &(v, rounds): &(u64, u32)| crunch(v ^ i as u64, rounds);
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
        prop_assert_eq!(&astdme_par::par_map_indexed(&items, 0, f), &serial);
        for threads in [2usize, 3, 8] {
            astdme_par::set_thread_override(NonZeroUsize::new(threads));
            prop_assert_eq!(
                &astdme_par::par_map_indexed(&items, 0, f),
                &serial,
                "par_map_indexed diverged at {} threads", threads
            );
            let (out, stats) = astdme_par::par_map_indexed_stats(&items, 0, f);
            prop_assert_eq!(&out, &serial, "stats variant diverged at {} threads", threads);
            prop_assert_eq!(stats.worker_items.iter().sum::<usize>(), items.len());
            let plain: Vec<u64> = astdme_par::par_map(&items, 0, |&(v, rounds)| crunch(v, rounds));
            let plain_serial: Vec<u64> =
                items.iter().map(|&(v, rounds)| crunch(v, rounds)).collect();
            prop_assert_eq!(&plain, &plain_serial, "par_map diverged at {} threads", threads);
            let with_ctx = astdme_par::par_map_with(
                &items,
                0,
                || 0u64,
                |scratch, &(v, rounds)| {
                    *scratch = crunch(v, rounds);
                    *scratch
                },
            );
            prop_assert_eq!(&with_ctx, &plain_serial, "par_map_with diverged at {} threads", threads);
        }
    }
}
