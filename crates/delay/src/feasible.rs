//! Feasible wire splits under shared-group skew constraints.
//!
//! When two subtrees merge, each sink group present in *both* subtrees
//! constrains how the merging wire may be split (Kim 2006, Ch. V.C–E). Let
//! `d_a(e_a)` and `d_b(e_b)` be the delays of the two halves of the merging
//! wire and `[lo, hi]` each child's existing delay spread for the group.
//! The merged spread is
//!
//! ```text
//! max(d_a + hi_a, d_b + hi_b) - min(d_a + lo_a, d_b + lo_b)  <=  bound
//! ```
//!
//! Writing `δ = d_a - d_b`, this is equivalent to the **δ-window**
//!
//! ```text
//! hi_b - lo_a - bound  <=  δ  <=  bound + lo_b - hi_a
//! ```
//!
//! (each case of the max/min falls out; see `delta_window` tests). With
//! several shared groups the windows intersect — the paper's Fig. 5
//! "feasible merging region" intersection. An empty intersection cannot be
//! fixed by any wire split or snake at *this* merge (δ is one number): it
//! requires re-balancing inside a child, which the engine performs as
//! offset adjustment (the paper's wire sneaking, Eqs. 5.1–5.3).
//!
//! Since `d_a` is strictly increasing and `d_b` strictly decreasing in the
//! split position, δ is strictly increasing, and the feasible split set for
//! a non-empty window is a single interval found by monotone root solving —
//! exact, no sampling.

use astdme_geom::Interval;

use crate::{DelayModel, IntervalSet};

/// A skew constraint induced by one sink group shared between the two
/// subtrees being merged.
///
/// `lo_a`/`hi_a` bound the group's delay spread in child `a` (measured from
/// `a`'s root), `lo_b`/`hi_b` likewise for child `b`; `bound` is the
/// maximum allowed spread after the merge (`0` for zero skew).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedConstraint {
    /// Minimum delay to the group's sinks in child `a`.
    pub lo_a: f64,
    /// Maximum delay to the group's sinks in child `a`.
    pub hi_a: f64,
    /// Minimum delay to the group's sinks in child `b`.
    pub lo_b: f64,
    /// Maximum delay to the group's sinks in child `b`.
    pub hi_b: f64,
    /// Maximum allowed delay spread for the group after merging.
    pub bound: f64,
}

impl SharedConstraint {
    /// Zero-skew constraint between two exactly-balanced children with
    /// root-to-sink delays `ta` and `tb`.
    pub fn zero_skew(ta: f64, tb: f64) -> Self {
        Self {
            lo_a: ta,
            hi_a: ta,
            lo_b: tb,
            hi_b: tb,
            bound: 0.0,
        }
    }

    /// The window of `δ = d_a - d_b` values under which the merged spread
    /// stays within `bound`, or `None` if no alignment works (possible only
    /// when the children's spreads sum past `2·bound`).
    ///
    /// ```
    /// use astdme_delay::SharedConstraint;
    /// let c = SharedConstraint::zero_skew(3e-12, 5e-12);
    /// let w = c.delta_window().unwrap();
    /// // Zero-skew: δ must exactly offset the children's imbalance.
    /// assert_eq!(w.lo(), w.hi());
    /// assert!((w.lo() - 2e-12).abs() < 1e-24);
    /// ```
    pub fn delta_window(&self) -> Option<Interval> {
        self.delta_window_with_tol(0.0)
    }

    /// Like [`SharedConstraint::delta_window`], but windows inverted by at
    /// most `tol` (accumulated float noise on zero-skew children) snap to
    /// a point instead of reporting a spurious conflict. `tol` is absolute,
    /// in delay units.
    pub fn delta_window_with_tol(&self, tol: f64) -> Option<Interval> {
        let lo = self.hi_b - self.lo_a - self.bound;
        let hi = self.bound + self.lo_b - self.hi_a;
        if lo > hi && lo - hi <= tol {
            return Some(Interval::point(0.5 * (lo + hi)));
        }
        Interval::try_new(lo, hi)
    }
}

/// Intersects the δ-windows of `cons` with absolute rounding slack `tol`
/// (delay units).
///
/// The slack affects only the *feasibility decision*: windows that miss
/// each other by at most `2·tol` of float noise still intersect (collapsed
/// to the midpoint of the slack region). The returned window never extends
/// beyond the exact intersection, so splits sampled from it keep every
/// group's spread strictly within its bound — crucial, because consuming
/// the slack as real imbalance would compound across merge levels.
///
/// Returns `None` for a genuine conflict, `Some(None)` when there are no
/// constraints, and `Some(Some(window))` otherwise.
#[allow(clippy::option_option)]
pub fn intersect_delta_windows(cons: &[SharedConstraint], tol: f64) -> Option<Option<Interval>> {
    let mut dilated: Option<Interval> = None;
    let mut exact: Option<Option<Interval>> = None;
    for c in cons {
        let w = c.delta_window_with_tol(tol)?;
        dilated = Some(match dilated {
            None => w.dilate(tol),
            Some(prev) => prev.intersect(&w.dilate(tol))?,
        });
        exact = Some(match exact {
            None => Some(w),
            Some(prev) => prev.and_then(|p| p.intersect(&w)),
        });
    }
    match (dilated, exact) {
        (None, _) => Some(None),
        (Some(d), Some(Some(e))) => {
            // Exact intersection exists; ignore the slack entirely.
            let _ = d;
            Some(Some(e))
        }
        // Windows only meet within the slack: treat as the single point at
        // the middle of the slack region (exact in the limit tol -> 0).
        (Some(d), _) => Some(Some(Interval::point(d.mid()))),
    }
}

/// The set of wire splits `e_a ∈ [0, total]` (with `e_b = total - e_a`)
/// satisfying every shared-group constraint.
///
/// With no constraints the full `[0, total]` is feasible (merging subtrees
/// from entirely different groups — the paper's SDR case, Fig. 3). The
/// result is empty when the δ-windows conflict or when `total` is too short
/// to reach the common window.
pub fn feasible_splits(
    model: &DelayModel,
    ca: f64,
    cb: f64,
    total: f64,
    cons: &[SharedConstraint],
    tol: f64,
) -> IntervalSet {
    debug_assert!(total >= 0.0, "total wire length must be non-negative");
    let full = Interval::new(0.0, total);
    let Some(window) = intersect_delta_windows(cons, tol) else {
        return IntervalSet::empty();
    };
    let Some(window) = window else {
        // Unconstrained merge: all splits feasible.
        return IntervalSet::single(full);
    };
    // δ(x) = d_a(x) - d_b(total - x), strictly increasing in x.
    let da = model.delay_quad(ca);
    let db = model.delay_quad(cb).reflect(total);
    let delta_at = |x: f64| da.eval(x) - db.eval(x);
    let (dmin, dmax) = (delta_at(0.0), delta_at(total));
    // Tolerance in delay units, scaled to the values at play.
    let dtol = 1e-12
        * (dmax - dmin)
            .abs()
            .max(window.lo().abs() + window.hi().abs())
        + 1e-30;
    if window.hi() < dmin - dtol || window.lo() > dmax + dtol {
        return IntervalSet::empty();
    }
    let solve = |target: f64, default: f64| -> f64 {
        if target <= dmin {
            0.0
        } else if target >= dmax {
            total
        } else {
            da.sub(&db)
                .add_const(-target)
                .monotone_root(full)
                .unwrap_or(default)
        }
    };
    // Degenerate windows (zero-skew constraints): return the single exact
    // balance split rather than spreading samples across the `tol`-dilated
    // width — sampling inside the slack would smear real imbalance into
    // every candidate and compound across merge levels.
    if window.len() <= 4.0 * tol {
        let x = solve(window.mid(), 0.5 * total).clamp(0.0, total);
        return IntervalSet::single(Interval::point(x));
    }
    let x_lo = solve(window.lo(), 0.0);
    let x_hi = solve(window.hi(), total);
    match Interval::try_new(x_lo, x_hi) {
        Some(iv) => IntervalSet::single(iv),
        // Rounding can invert a degenerate window's endpoints.
        None => IntervalSet::single(Interval::point(0.5 * (x_lo + x_hi))),
    }
}

/// The smallest total wire length `>= dist` for which some split satisfies
/// all constraints, or `None` when the δ-windows conflict outright (which
/// no amount of wire at this merge can fix — see module docs).
///
/// When the balance needs more wire than the geometric distance, the
/// returned total exceeds `dist` and the excess is a snaking detour
/// (the generalization of the paper's Eq. 5.1–5.3 γ term).
pub fn min_total_for_feasibility(
    model: &DelayModel,
    ca: f64,
    cb: f64,
    dist: f64,
    cons: &[SharedConstraint],
    tol: f64,
) -> Option<f64> {
    debug_assert!(dist >= 0.0);
    let window = intersect_delta_windows(cons, tol)?;
    let Some(window) = window else {
        return Some(dist);
    };
    // δ ranges over [-d_b(total), d_a(total)]; both ends grow with total,
    // so the minimum total puts all wire on one side.
    let mut need = dist;
    if window.lo() > 0.0 {
        // Must slow side a down by at least window.lo().
        need = need.max(model.extension_for_delay(window.lo(), ca));
    }
    if window.hi() < 0.0 {
        need = need.max(model.extension_for_delay(-window.hi(), cb));
    }
    Some(need)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RcParams;

    fn m() -> DelayModel {
        DelayModel::elmore(RcParams::default())
    }

    /// Brute-force check of a split against the original max/min spread
    /// definition.
    fn spread_ok(
        model: &DelayModel,
        ca: f64,
        cb: f64,
        total: f64,
        x: f64,
        c: &SharedConstraint,
        tol: f64,
    ) -> bool {
        let da = model.wire_delay(x, ca);
        let db = model.wire_delay(total - x, cb);
        let hi = (da + c.hi_a).max(db + c.hi_b);
        let lo = (da + c.lo_a).min(db + c.lo_b);
        hi - lo <= c.bound + tol
    }

    #[test]
    fn delta_window_zero_skew_is_a_point() {
        let c = SharedConstraint::zero_skew(1e-12, 4e-12);
        let w = c.delta_window().unwrap();
        assert_eq!(w.lo(), 3e-12);
        assert_eq!(w.hi(), 3e-12);
    }

    #[test]
    fn delta_window_matches_bruteforce_definition() {
        let c = SharedConstraint {
            lo_a: 1e-12,
            hi_a: 3e-12,
            lo_b: 2e-12,
            hi_b: 4e-12,
            bound: 5e-12,
        };
        let w = c.delta_window().unwrap();
        // Scan δ values and compare against the definition directly,
        // skipping points within rounding distance of the window boundary.
        for i in -100..=100 {
            let delta = i as f64 * 1e-13;
            if (delta - w.lo()).abs() < 1e-26 || (delta - w.hi()).abs() < 1e-26 {
                continue;
            }
            let hi = (delta + c.hi_a).max(c.hi_b);
            let lo = (delta + c.lo_a).min(c.lo_b);
            let ok = hi - lo <= c.bound + 1e-30;
            assert_eq!(ok, w.contains(delta, 1e-30), "mismatch at delta = {delta}");
        }
    }

    #[test]
    fn delta_window_empty_when_spreads_exceed_twice_bound() {
        let c = SharedConstraint {
            lo_a: 0.0,
            hi_a: 8e-12,
            lo_b: 0.0,
            hi_b: 8e-12,
            bound: 5e-12,
        };
        assert!(c.delta_window().is_none());
    }

    #[test]
    fn unconstrained_split_is_everything() {
        let s = feasible_splits(&m(), 1e-14, 1e-14, 500.0, &[], 1e-22);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(500.0));
    }

    #[test]
    fn zero_skew_feasible_split_matches_balance() {
        // Imbalance small enough to absorb inside an 800 um merge wire.
        let (ta, ca, tb, cb, dist) = (1e-14, 2e-14, 3e-14, 1e-14, 800.0);
        let s = feasible_splits(
            &m(),
            ca,
            cb,
            dist,
            &[SharedConstraint::zero_skew(ta, tb)],
            1e-22,
        );
        assert!(!s.is_empty());
        let x = s.min().unwrap();
        assert!(s.measure() < 1e-6, "zero-skew split must be a point");
        let split = m().balance_split(ta, ca, tb, cb, dist);
        assert!((x - split.ea).abs() < 1e-6, "{x} vs {}", split.ea);
    }

    #[test]
    fn bounded_skew_widens_the_window() {
        let cons = SharedConstraint {
            lo_a: 0.0,
            hi_a: 0.0,
            lo_b: 0.0,
            hi_b: 0.0,
            bound: 1e-11,
        };
        let s0 = feasible_splits(
            &m(),
            1e-14,
            1e-14,
            1000.0,
            &[SharedConstraint::zero_skew(0.0, 0.0)],
            1e-22,
        );
        let s = feasible_splits(&m(), 1e-14, 1e-14, 1000.0, &[cons], 1e-22);
        assert!(s.measure() > s0.measure());
        // And all sampled splits really satisfy the bound.
        for x in s.sample(9) {
            assert!(spread_ok(&m(), 1e-14, 1e-14, 1000.0, x, &cons, 1e-18));
        }
    }

    #[test]
    fn infeasible_at_short_total_feasible_after_snaking() {
        // Child a is much slower: balancing needs eb long; with a short
        // total the window is unreachable.
        let cons = SharedConstraint::zero_skew(5e-11, 0.0);
        let s = feasible_splits(&m(), 1e-14, 1e-14, 10.0, &[cons], 1e-22);
        assert!(s.is_empty());
        let t = min_total_for_feasibility(&m(), 1e-14, 1e-14, 10.0, &[cons], 1e-22).unwrap();
        assert!(t > 10.0);
        let s2 = feasible_splits(&m(), 1e-14, 1e-14, t * (1.0 + 1e-12), &[cons], 1e-22);
        assert!(!s2.is_empty(), "feasible at the computed minimum total");
        // Minimality: 1% less total is still infeasible.
        let s3 = feasible_splits(&m(), 1e-14, 1e-14, t * 0.99, &[cons], 1e-22);
        assert!(s3.is_empty());
    }

    #[test]
    fn conflicting_windows_are_unfixable() {
        // Two zero-skew groups demanding different δ: impossible at any T.
        let g1 = SharedConstraint::zero_skew(0.0, 1e-12);
        let g2 = SharedConstraint::zero_skew(0.0, 2e-12);
        let s = feasible_splits(&m(), 1e-14, 1e-14, 1000.0, &[g1, g2], 1e-22);
        assert!(s.is_empty());
        assert!(min_total_for_feasibility(&m(), 1e-14, 1e-14, 1000.0, &[g1, g2], 1e-22).is_none());
    }

    #[test]
    fn compatible_multi_group_windows_intersect() {
        // Same required δ: feasible; bounded groups widen around it.
        let g1 = SharedConstraint::zero_skew(1e-14, 2e-14);
        let g2 = SharedConstraint {
            lo_a: 1e-14,
            hi_a: 1e-14,
            lo_b: 2e-14,
            hi_b: 2e-14,
            bound: 1e-14,
        };
        let s = feasible_splits(&m(), 1e-14, 1e-14, 2000.0, &[g1, g2], 1e-22);
        assert!(!s.is_empty());
        for x in s.sample(5) {
            assert!(spread_ok(&m(), 1e-14, 1e-14, 2000.0, x, &g1, 1e-18));
            assert!(spread_ok(&m(), 1e-14, 1e-14, 2000.0, x, &g2, 1e-18));
        }
    }

    #[test]
    fn feasible_splits_pathlength_model() {
        let m = DelayModel::pathlength();
        // ea - (T - ea) = tb - ta = 4 -> ea = (T + 4) / 2 = 7.
        let s = feasible_splits(
            &m,
            0.0,
            0.0,
            10.0,
            &[SharedConstraint::zero_skew(0.0, 4.0)],
            1e-22,
        );
        let x = s.nearest(0.0).unwrap();
        assert!((x - 7.0).abs() < 1e-9);
    }

    #[test]
    fn min_total_equals_dist_when_already_feasible() {
        let cons = SharedConstraint::zero_skew(0.0, 0.0);
        let t = min_total_for_feasibility(&m(), 1e-14, 1e-14, 123.0, &[cons], 1e-22).unwrap();
        assert_eq!(t, 123.0);
    }

    #[test]
    fn feasible_set_is_exactly_the_bound_boundary() {
        // The returned interval's endpoints must sit exactly on the skew
        // bound (the merging-region boundary of BST).
        let cons = SharedConstraint {
            lo_a: 0.0,
            hi_a: 0.0,
            lo_b: 0.0,
            hi_b: 0.0,
            bound: 5e-12,
        };
        let (ca, cb, total) = (2e-14, 3e-14, 2000.0);
        let s = feasible_splits(&m(), ca, cb, total, &[cons], 1e-22);
        let iv = s.iter().next().unwrap();
        for x in [iv.lo(), iv.hi()] {
            if x > 0.0 && x < total {
                let da = m().wire_delay(x, ca);
                let db = m().wire_delay(total - x, cb);
                assert!(
                    ((da - db).abs() - cons.bound).abs() < 1e-24,
                    "boundary split not tight at {x}"
                );
            }
        }
    }
}
