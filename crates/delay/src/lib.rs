//! Delay models and skew solvers for deferred-merge clock routing.
//!
//! This crate implements the electrical layer of the AST-DME reproduction:
//!
//! * the **Elmore delay model** over π-modelled RC wires (Kim 2006, Ch. III),
//!   plus the primitive **pathlength** (linear) model used by the prior
//!   associative-skew work it improves on — kept for ablation;
//! * **zero-skew balance**: the exact split of a merging wire that equalizes
//!   Elmore delay to both subtrees (Tsay 1991), with **wire snaking** when
//!   no interior split exists;
//! * **bounded-skew feasibility**: the set of wire splits keeping a merged
//!   group's delay spread within a bound — a piecewise-quadratic inequality
//!   solved exactly; this generalizes the merging-region construction of
//!   BST (Cong et al. 1998) and the feasible-merging-region intersection of
//!   Kim 2006, Ch. V.E.
//!
//! Units are SI throughout: lengths in micrometres, resistance in Ω/µm,
//! capacitance in F/µm, delay in seconds.
//!
//! # Example: zero-skew balance with snaking
//!
//! ```
//! use astdme_delay::{DelayModel, RcParams};
//!
//! let m = DelayModel::elmore(RcParams::default());
//! // Subtree a is much slower: the split lands at a's root (ea = 0) and
//! // the wire to b is longer than the distance — a snaking detour.
//! let split = m.balance_split(5e-10, 1e-13, 0.0, 1e-13, 100.0);
//! assert_eq!(split.ea, 0.0);
//! assert!(split.eb > 100.0);
//! assert!(split.snaked(100.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod feasible;
mod intervalset;
mod model;
mod params;
mod quad;

pub use feasible::{
    feasible_splits, intersect_delta_windows, min_total_for_feasibility, SharedConstraint,
};
pub use intervalset::IntervalSet;
pub use model::{DelayModel, Split};
pub use params::RcParams;
pub use quad::Quad;

/// Absolute tolerance (seconds) used when comparing delays and skews.
///
/// Clock delays on die-scale instances are ~1e-10 s; f64 rounding over a
/// full bottom-up pass accumulates error around 1e-22 s, so 1e-18 s (one
/// millionth of a picosecond) cleanly separates real skew from noise.
pub const DELAY_TOL: f64 = 1e-18;
