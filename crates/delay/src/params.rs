//! Interconnect RC parameters.

use core::fmt;

/// Per-unit-length interconnect parameters for the Elmore delay model.
///
/// The defaults match the technology used by the classic `r1`–`r5` clock
/// benchmarks (Tsay 1991 / Cong et al. 1998): 0.003 Ω/µm wire resistance and
/// 0.02 fF/µm wire capacitance.
///
/// ```
/// use astdme_delay::RcParams;
///
/// let p = RcParams::default();
/// assert_eq!(p.r_per_um(), 0.003);
/// assert_eq!(p.c_per_um(), 0.02e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcParams {
    r_per_um: f64,
    c_per_um: f64,
}

impl RcParams {
    /// Creates parameters from wire resistance (Ω/µm) and capacitance
    /// (F/µm).
    ///
    /// # Panics
    ///
    /// Panics if either value is non-positive or non-finite.
    pub fn new(r_per_um: f64, c_per_um: f64) -> Self {
        assert!(
            r_per_um > 0.0 && r_per_um.is_finite(),
            "wire resistance must be positive and finite, got {r_per_um}"
        );
        assert!(
            c_per_um > 0.0 && c_per_um.is_finite(),
            "wire capacitance must be positive and finite, got {c_per_um}"
        );
        Self { r_per_um, c_per_um }
    }

    /// Wire resistance in Ω/µm.
    #[inline]
    pub fn r_per_um(&self) -> f64 {
        self.r_per_um
    }

    /// Wire capacitance in F/µm.
    #[inline]
    pub fn c_per_um(&self) -> f64 {
        self.c_per_um
    }

    /// Total capacitance of a wire of length `len` µm.
    #[inline]
    pub fn wire_cap(&self, len: f64) -> f64 {
        self.c_per_um * len
    }

    /// Total resistance of a wire of length `len` µm.
    #[inline]
    pub fn wire_res(&self, len: f64) -> f64 {
        self.r_per_um * len
    }
}

impl Default for RcParams {
    /// The `r1`–`r5` benchmark technology: 0.003 Ω/µm, 0.02 fF/µm.
    fn default() -> Self {
        Self::new(0.003, 0.02e-15)
    }
}

impl fmt::Display for RcParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r = {} ohm/um, c = {} F/um",
            self.r_per_um, self.c_per_um
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_benchmark_technology() {
        let p = RcParams::default();
        assert_eq!(p.r_per_um(), 0.003);
        assert_eq!(p.c_per_um(), 2e-17);
    }

    #[test]
    fn wire_totals_scale_linearly() {
        let p = RcParams::default();
        assert!((p.wire_cap(1000.0) - 2e-14).abs() < 1e-30);
        assert!((p.wire_res(1000.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let _ = RcParams::new(0.0, 1e-17);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn negative_capacitance_rejected() {
        let _ = RcParams::new(0.003, -1e-17);
    }
}
