//! Delay models: Elmore (π-model RC) and pathlength (linear).

use core::fmt;

use crate::{Quad, RcParams};

/// Outcome of balancing a merge wire between two subtrees.
///
/// `ea` and `eb` are *electrical* wire lengths from the merge point to the
/// roots of subtrees `a` and `b`. Their sum may exceed the geometric
/// distance between the subtrees, in which case the excess is routed as a
/// snaking detour during embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Wire length from the merge point to subtree `a`'s root.
    pub ea: f64,
    /// Wire length from the merge point to subtree `b`'s root.
    pub eb: f64,
}

impl Split {
    /// Total wire spent by this merge.
    #[inline]
    pub fn total(&self) -> f64 {
        self.ea + self.eb
    }

    /// Returns `true` if the split spends more wire than the geometric
    /// `distance` (i.e. it snakes), up to rounding slack.
    #[inline]
    pub fn snaked(&self, distance: f64) -> bool {
        self.total() > distance * (1.0 + 1e-12) + 1e-12
    }
}

impl fmt::Display for Split {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(ea = {}, eb = {})", self.ea, self.eb)
    }
}

/// A signal-delay model for clock wires.
///
/// Both variants expose wire delay as the quadratic `a2·len² + a1·len` (with
/// `a1` depending on the load for Elmore), which is what lets every skew
/// constraint downstream be solved in closed form.
///
/// * [`DelayModel::Elmore`] — the model of the paper (Ch. III): a wire of
///   length `l` driving load `C` has delay `r·l·(c·l/2 + C)` (π-model).
/// * [`DelayModel::Pathlength`] — delay equals geometric pathlength; the
///   primitive model of the earlier associative-skew work (\[12\] in the
///   paper), kept to reproduce the paper's argument that it cannot control
///   Elmore skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Elmore delay over π-modelled RC wire.
    Elmore(RcParams),
    /// Delay = geometric pathlength (unit: metres of wire, not seconds).
    Pathlength,
}

impl DelayModel {
    /// Convenience constructor for [`DelayModel::Elmore`].
    #[inline]
    pub fn elmore(params: RcParams) -> Self {
        Self::Elmore(params)
    }

    /// Convenience constructor for [`DelayModel::Pathlength`].
    #[inline]
    pub fn pathlength() -> Self {
        Self::Pathlength
    }

    /// The underlying RC parameters, if Elmore.
    #[inline]
    pub fn rc(&self) -> Option<&RcParams> {
        match self {
            Self::Elmore(p) => Some(p),
            Self::Pathlength => None,
        }
    }

    /// Stable `u64` encoding of the model for content-addressed cache
    /// fingerprints: a variant tag followed by the RC parameter bits
    /// (`f64::to_bits`; zero for [`DelayModel::Pathlength`]). Two models
    /// route identically iff their words agree.
    #[inline]
    pub fn fingerprint_words(&self) -> [u64; 3] {
        match self {
            Self::Elmore(p) => [0, p.r_per_um().to_bits(), p.c_per_um().to_bits()],
            Self::Pathlength => [1, 0, 0],
        }
    }

    /// Delay of a wire of length `len` driving `downstream_cap` at its far
    /// end.
    ///
    /// ```
    /// use astdme_delay::{DelayModel, RcParams};
    /// let m = DelayModel::elmore(RcParams::new(0.003, 2e-17));
    /// // 1000 um driving 20 fF: 3 * (1e-14 + 2e-14) = 9e-14 s.
    /// assert!((m.wire_delay(1000.0, 2e-14) - 9e-14).abs() < 1e-28);
    /// ```
    #[inline]
    pub fn wire_delay(&self, len: f64, downstream_cap: f64) -> f64 {
        self.delay_quad(downstream_cap).eval(len)
    }

    /// Capacitance contributed by a wire of length `len` (zero for the
    /// pathlength model, which is purely geometric).
    #[inline]
    pub fn wire_cap(&self, len: f64) -> f64 {
        match self {
            Self::Elmore(p) => p.wire_cap(len),
            Self::Pathlength => 0.0,
        }
    }

    /// Wire delay as a quadratic in length for a fixed far-end load:
    /// Elmore gives `(rc/2)·l² + rC·l`; pathlength gives `l`.
    #[inline]
    pub fn delay_quad(&self, downstream_cap: f64) -> Quad {
        match self {
            Self::Elmore(p) => Quad::new(
                0.5 * p.r_per_um() * p.c_per_um(),
                p.r_per_um() * downstream_cap,
                0.0,
            ),
            Self::Pathlength => Quad::new(0.0, 1.0, 0.0),
        }
    }

    /// The wire split `(ea, eb)` with `ea + eb >= dist` equalizing delays
    /// from the merge point: `d(ea, Ca) + ta = d(eb, Cb) + tb`.
    ///
    /// If the balance point lies inside `[0, dist]` this is Tsay's exact
    /// zero-skew merge and `ea + eb = dist`; otherwise the faster side is
    /// extended past the distance (wire snaking) with the slower side's
    /// wire length pinned to zero.
    ///
    /// `ta`/`tb` are the subtree root-to-sink delays being equalized, and
    /// `ca`/`cb` the subtree load capacitances.
    pub fn balance_split(&self, ta: f64, ca: f64, tb: f64, cb: f64, dist: f64) -> Split {
        debug_assert!(dist >= 0.0, "distance must be non-negative");
        if dist > 0.0 {
            // Solve d(x, Ca) + ta = d(dist - x, Cb) + tb for x in [0, dist].
            // The difference is strictly increasing in x, so check ends.
            let da = self.delay_quad(ca);
            let db = self.delay_quad(cb).reflect(dist);
            let diff = da.add_const(ta).sub(&db.add_const(tb));
            if diff.eval(0.0) >= 0.0 {
                // a is already as slow or slower with no wire: snake b side.
                return Split {
                    ea: 0.0,
                    eb: self.extension_for_delay(ta - tb, cb).max(dist),
                };
            }
            if diff.eval(dist) <= 0.0 {
                return Split {
                    eb: 0.0,
                    ea: self.extension_for_delay(tb - ta, ca).max(dist),
                };
            }
            let x = diff
                .monotone_root(astdme_geom::Interval::new(0.0, dist))
                .expect("sign change bracketed above");
            Split {
                ea: x,
                eb: dist - x,
            }
        } else if ta >= tb {
            Split {
                ea: 0.0,
                eb: self.extension_for_delay(ta - tb, cb),
            }
        } else {
            Split {
                eb: 0.0,
                ea: self.extension_for_delay(tb - ta, ca),
            }
        }
    }

    /// The wire length whose delay into load `downstream_cap` equals
    /// `extra_delay` (>= 0): inverts `d(len) = extra_delay`. Used to size
    /// snaking detours.
    ///
    /// # Panics
    ///
    /// Panics if `extra_delay` is negative beyond rounding noise.
    pub fn extension_for_delay(&self, extra_delay: f64, downstream_cap: f64) -> f64 {
        assert!(
            extra_delay >= -1e-18,
            "cannot extend wire for negative delay {extra_delay}"
        );
        let extra = extra_delay.max(0.0);
        if extra == 0.0 {
            return 0.0;
        }
        match self {
            Self::Pathlength => extra,
            Self::Elmore(p) => {
                let (r, c) = (p.r_per_um(), p.c_per_um());
                // Solve (rc/2) e^2 + r C e - extra = 0 for e >= 0, in the
                // stable form e = 2·extra / (rC + sqrt((rC)^2 + 2 rc extra)).
                let rc2 = 0.5 * r * c;
                let rcl = r * downstream_cap;
                let disc = rcl * rcl + 4.0 * rc2 * extra;
                2.0 * extra / (rcl + disc.sqrt())
            }
        }
    }
}

impl fmt::Display for DelayModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Elmore(p) => write!(f, "Elmore({p})"),
            Self::Pathlength => write!(f, "Pathlength"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> DelayModel {
        DelayModel::elmore(RcParams::default())
    }

    #[test]
    fn wire_delay_matches_pi_model() {
        // r l (c l / 2 + C)
        let d = m().wire_delay(500.0, 1e-14);
        let expect = 0.003 * 500.0 * (2e-17 * 500.0 / 2.0 + 1e-14);
        assert!((d - expect).abs() < 1e-28);
    }

    #[test]
    fn pathlength_delay_is_length() {
        let m = DelayModel::pathlength();
        assert_eq!(m.wire_delay(123.0, 5e-14), 123.0);
        assert_eq!(m.wire_cap(123.0), 0.0);
    }

    #[test]
    fn balance_symmetric_splits_in_half() {
        let s = m().balance_split(0.0, 1e-14, 0.0, 1e-14, 1000.0);
        assert!((s.ea - 500.0).abs() < 1e-6);
        assert!((s.eb - 500.0).abs() < 1e-6);
        assert!(!s.snaked(1000.0));
    }

    #[test]
    fn balance_shifts_toward_faster_side() {
        // b is slower (tb > ta): merge point moves toward b, so eb < ea.
        // (2e-14 s is a realistic imbalance over a 1000 um merge.)
        let s = m().balance_split(0.0, 1e-14, 2e-14, 1e-14, 1000.0);
        assert!(s.eb < s.ea);
        assert!((s.total() - 1000.0).abs() < 1e-9);
        // Delays at the merge point agree.
        let da = m().wire_delay(s.ea, 1e-14);
        let db = m().wire_delay(s.eb, 1e-14) + 2e-14;
        assert!((da - db).abs() < 1e-26);
    }

    #[test]
    fn balance_snakes_when_one_side_dominates() {
        // a enormously slower than b: even ea = 0 can't equalize within
        // dist, so b's wire extends past the distance.
        let s = m().balance_split(1e-9, 1e-14, 0.0, 1e-14, 100.0);
        assert_eq!(s.ea, 0.0);
        assert!(s.eb > 100.0);
        // And the delays agree after the snake.
        let db = m().wire_delay(s.eb, 1e-14);
        assert!((db - 1e-9).abs() < 1e-19);
    }

    #[test]
    fn balance_zero_distance_snakes_exactly() {
        let s = m().balance_split(2e-12, 1e-14, 0.0, 2e-14, 0.0);
        assert_eq!(s.ea, 0.0);
        let db = m().wire_delay(s.eb, 2e-14);
        assert!((db - 2e-12).abs() < 1e-22);
    }

    #[test]
    fn extension_for_delay_inverts_wire_delay() {
        for extra in [0.0, 1e-13, 5e-11, 2e-10] {
            for cap in [0.0, 1e-15, 5e-14] {
                let e = m().extension_for_delay(extra, cap);
                assert!((m().wire_delay(e, cap) - extra).abs() < 1e-22 + 1e-12 * extra);
            }
        }
    }

    #[test]
    fn balance_equalizes_for_pathlength_model() {
        let m = DelayModel::pathlength();
        let s = m.balance_split(3.0, 0.0, 0.0, 0.0, 10.0);
        // ea + 3 = eb, ea + eb = 10 -> ea = 3.5
        assert!((s.ea - 3.5).abs() < 1e-9);
        assert!((s.eb - 6.5).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_words_separate_models() {
        let elmore = m().fingerprint_words();
        assert_eq!(elmore[0], 0);
        assert_eq!(elmore[1], 0.003f64.to_bits());
        assert_eq!(elmore, m().fingerprint_words(), "stable encoding");
        assert_ne!(elmore, DelayModel::pathlength().fingerprint_words());
        let other = DelayModel::elmore(RcParams::new(0.004, 2e-17));
        assert_ne!(elmore, other.fingerprint_words());
    }

    #[test]
    fn split_total_and_snaked() {
        let s = Split { ea: 3.0, eb: 4.0 };
        assert_eq!(s.total(), 7.0);
        assert!(s.snaked(6.0));
        assert!(!s.snaked(7.0));
    }
}
