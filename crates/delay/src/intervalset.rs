//! Finite unions of disjoint closed intervals.
//!
//! Feasible wire-split sets are unions of up to a few intervals per skew
//! constraint; merging subtrees that share several groups intersects one
//! set per group (the "feasible merging region" intersection of Kim 2006,
//! Fig. 5).

use core::fmt;

use astdme_geom::Interval;

/// A normalized union of disjoint, ascending closed intervals.
///
/// ```
/// use astdme_delay::IntervalSet;
/// use astdme_geom::Interval;
///
/// let a = IntervalSet::from_intervals(vec![
///     Interval::new(0.0, 2.0),
///     Interval::new(1.0, 3.0), // overlaps: coalesced
///     Interval::new(5.0, 6.0),
/// ]);
/// assert_eq!(a.iter().count(), 2);
/// let b = IntervalSet::from_intervals(vec![Interval::new(2.5, 5.5)]);
/// let i = a.intersect(&b);
/// assert_eq!(i.iter().collect::<Vec<_>>(), vec![
///     Interval::new(2.5, 3.0),
///     Interval::new(5.0, 5.5),
/// ]);
/// ```
#[derive(Clone, Default)]
pub struct IntervalSet {
    /// Disjoint intervals in ascending order.
    parts: Parts,
}

/// Inline capacity of an [`IntervalSet`]: the feasible-split sets the
/// engine builds per candidate pair are empty or a single interval almost
/// always (one δ-window), occasionally two after a subtraction — keeping
/// them off the heap removes an allocation from every pair expansion.
const INLINE_PARTS: usize = 2;

/// Small-set storage: inline array for the common case, heap spill beyond
/// [`INLINE_PARTS`].
#[derive(Clone)]
enum Parts {
    Inline(u8, [Interval; INLINE_PARTS]),
    Heap(Vec<Interval>),
}

impl Parts {
    fn as_slice(&self) -> &[Interval] {
        match self {
            Parts::Inline(n, buf) => &buf[..*n as usize],
            Parts::Heap(v) => v,
        }
    }

    /// Appends an interval, spilling to the heap at capacity. Callers keep
    /// the ascending-disjoint invariant themselves.
    fn push(&mut self, iv: Interval) {
        match self {
            Parts::Inline(n, buf) => {
                if (*n as usize) < INLINE_PARTS {
                    buf[*n as usize] = iv;
                    *n += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_PARTS * 2);
                    v.extend_from_slice(buf);
                    v.push(iv);
                    *self = Parts::Heap(v);
                }
            }
            Parts::Heap(v) => v.push(iv),
        }
    }

    fn last_mut(&mut self) -> Option<&mut Interval> {
        match self {
            Parts::Inline(n, buf) => buf[..*n as usize].last_mut(),
            Parts::Heap(v) => v.last_mut(),
        }
    }
}

impl Default for Parts {
    fn default() -> Self {
        Parts::Inline(0, [Interval::new(0.0, 0.0); INLINE_PARTS])
    }
}

impl IntervalSet {
    /// The empty set.
    #[inline]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single-interval set.
    #[inline]
    pub fn single(iv: Interval) -> Self {
        let mut parts = Parts::default();
        parts.push(iv);
        Self { parts }
    }

    /// Builds a set from arbitrary intervals, sorting and coalescing
    /// overlapping or touching ones.
    pub fn from_intervals(mut ivs: Vec<Interval>) -> Self {
        ivs.sort_by(|a, b| a.lo().partial_cmp(&b.lo()).expect("no NaN intervals"));
        let mut parts = Parts::default();
        for iv in ivs {
            match parts.last_mut() {
                Some(last) if iv.lo() <= last.hi() => {
                    *last = Interval::new(last.lo(), last.hi().max(iv.hi()));
                }
                _ => parts.push(iv),
            }
        }
        Self { parts }
    }

    /// The intervals as an ascending slice.
    #[inline]
    fn as_slice(&self) -> &[Interval] {
        self.parts.as_slice()
    }

    /// Returns `true` if the set contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Iterates the disjoint intervals in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.as_slice().iter().copied()
    }

    /// Total measure (sum of interval lengths).
    pub fn measure(&self) -> f64 {
        self.as_slice().iter().map(Interval::len).sum()
    }

    /// Smallest element, if non-empty.
    pub fn min(&self) -> Option<f64> {
        self.as_slice().first().map(Interval::lo)
    }

    /// Largest element, if non-empty.
    pub fn max(&self) -> Option<f64> {
        self.as_slice().last().map(Interval::hi)
    }

    /// Returns `true` if `x` belongs to the set (within `tol`).
    pub fn contains(&self, x: f64, tol: f64) -> bool {
        self.as_slice().iter().any(|iv| iv.contains(x, tol))
    }

    /// The set-intersection with `other`.
    pub fn intersect(&self, other: &Self) -> Self {
        let (sa, sb) = (self.as_slice(), other.as_slice());
        let (mut i, mut j) = (0, 0);
        let mut parts = Parts::default();
        while i < sa.len() && j < sb.len() {
            let (a, b) = (sa[i], sb[j]);
            if let Some(o) = a.intersect(&b) {
                parts.push(o);
            }
            if a.hi() <= b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        Self { parts }
    }

    /// The union with `other`.
    pub fn union(&self, other: &Self) -> Self {
        let mut all = self.as_slice().to_vec();
        all.extend_from_slice(other.as_slice());
        Self::from_intervals(all)
    }

    /// The element of the set nearest to `x`, if non-empty.
    pub fn nearest(&self, x: f64) -> Option<f64> {
        self.as_slice().iter().map(|iv| iv.clamp(x)).min_by(|a, b| {
            (a - x)
                .abs()
                .partial_cmp(&(b - x).abs())
                .expect("no NaN clamp results")
        })
    }

    /// Up to `k` representative points spread across the set: each
    /// interval's endpoints plus evenly spaced interior samples,
    /// proportionally to interval length.
    ///
    /// Returns at least one point per interval (its midpoint) even when
    /// `k` is small; degenerate intervals contribute their single point.
    pub fn sample(&self, k: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.sample_into(k, &mut out);
        out
    }

    /// [`IntervalSet::sample`] into a reused buffer (cleared first) — the
    /// engine's candidate-sampling hot path.
    pub fn sample_into(&self, k: usize, out: &mut Vec<f64>) {
        out.clear();
        let total = self.measure();
        for iv in self.as_slice() {
            if iv.len() == 0.0 || total == 0.0 {
                out.push(iv.mid());
                continue;
            }
            let share = ((iv.len() / total) * k as f64).round().max(1.0) as usize;
            if share == 1 {
                out.push(iv.mid());
            } else {
                for s in 0..share {
                    out.push(iv.lo() + iv.len() * s as f64 / (share - 1) as f64);
                }
            }
        }
    }
}

impl PartialEq for IntervalSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntervalSet")
            .field("parts", &self.as_slice())
            .finish()
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        Self::from_intervals(iter.into_iter().collect())
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        for (i, iv) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, " U ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn from_intervals_coalesces() {
        let s = IntervalSet::from_intervals(vec![iv(3.0, 4.0), iv(0.0, 1.0), iv(0.5, 2.0)]);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![iv(0.0, 2.0), iv(3.0, 4.0)]
        );
    }

    #[test]
    fn touching_intervals_merge() {
        let s = IntervalSet::from_intervals(vec![iv(0.0, 1.0), iv(1.0, 2.0)]);
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.measure(), 2.0);
    }

    #[test]
    fn intersect_empty_and_disjoint() {
        let a = IntervalSet::single(iv(0.0, 1.0));
        let b = IntervalSet::single(iv(2.0, 3.0));
        assert!(a.intersect(&b).is_empty());
        assert!(IntervalSet::empty().intersect(&a).is_empty());
    }

    #[test]
    fn intersect_multi_part() {
        let a = IntervalSet::from_intervals(vec![iv(0.0, 2.0), iv(4.0, 6.0), iv(8.0, 9.0)]);
        let b = IntervalSet::from_intervals(vec![iv(1.0, 5.0), iv(8.5, 10.0)]);
        let i = a.intersect(&b);
        assert_eq!(
            i.iter().collect::<Vec<_>>(),
            vec![iv(1.0, 2.0), iv(4.0, 5.0), iv(8.5, 9.0)]
        );
    }

    #[test]
    fn union_merges_everything() {
        let a = IntervalSet::single(iv(0.0, 1.0));
        let b = IntervalSet::from_intervals(vec![iv(0.5, 2.0), iv(5.0, 6.0)]);
        let u = a.union(&b);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![iv(0.0, 2.0), iv(5.0, 6.0)]
        );
    }

    #[test]
    fn nearest_picks_closest_part() {
        let s = IntervalSet::from_intervals(vec![iv(0.0, 1.0), iv(10.0, 11.0)]);
        assert_eq!(s.nearest(0.5), Some(0.5));
        assert_eq!(s.nearest(3.0), Some(1.0));
        assert_eq!(s.nearest(9.0), Some(10.0));
        assert_eq!(IntervalSet::empty().nearest(0.0), None);
    }

    #[test]
    fn min_max_and_contains() {
        let s = IntervalSet::from_intervals(vec![iv(1.0, 2.0), iv(5.0, 7.0)]);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(7.0));
        assert!(s.contains(6.0, 0.0));
        assert!(!s.contains(3.0, 0.0));
        assert!(s.contains(2.0 + 1e-9, 1e-6));
    }

    #[test]
    fn sample_covers_all_parts() {
        let s = IntervalSet::from_intervals(vec![iv(0.0, 4.0), iv(10.0, 10.0)]);
        let pts = s.sample(8);
        assert!(pts.iter().any(|&x| x <= 4.0));
        assert!(pts.contains(&10.0));
        for &x in &pts {
            assert!(s.contains(x, 1e-12));
        }
    }

    #[test]
    fn sample_of_degenerate_set() {
        let s = IntervalSet::single(iv(3.0, 3.0));
        assert_eq!(s.sample(5), vec![3.0]);
    }

    #[test]
    fn collect_from_iterator() {
        let s: IntervalSet = [iv(0.0, 1.0), iv(2.0, 3.0)].into_iter().collect();
        assert_eq!(s.iter().count(), 2);
    }
}
