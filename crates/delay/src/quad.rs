//! Quadratic polynomials with robust root and inequality solving.
//!
//! Elmore delay along a wire of length `x` driving a fixed load is the
//! quadratic `(rc/2)·x² + rC·x`, so every skew constraint in this crate
//! reduces to quadratic equalities/inequalities over split intervals. This
//! module centralizes the numerics: stable root formulas, degenerate-degree
//! fallbacks, and "where is `q(x) <= 0`" interval extraction.

use astdme_geom::Interval;

/// The polynomial `a2·x² + a1·x + a0`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quad {
    /// Coefficient of `x²`.
    pub a2: f64,
    /// Coefficient of `x`.
    pub a1: f64,
    /// Constant term.
    pub a0: f64,
}

impl Quad {
    /// Creates `a2·x² + a1·x + a0`.
    #[inline]
    pub fn new(a2: f64, a1: f64, a0: f64) -> Self {
        Self { a2, a1, a0 }
    }

    /// The zero polynomial.
    #[inline]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Evaluates the polynomial at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        (self.a2 * x + self.a1) * x + self.a0
    }

    /// Sum of two quadratics.
    #[inline]
    pub fn add(&self, other: &Self) -> Self {
        Self::new(self.a2 + other.a2, self.a1 + other.a1, self.a0 + other.a0)
    }

    /// Difference `self - other`.
    #[inline]
    pub fn sub(&self, other: &Self) -> Self {
        Self::new(self.a2 - other.a2, self.a1 - other.a1, self.a0 - other.a0)
    }

    /// Adds a constant.
    #[inline]
    pub fn add_const(&self, k: f64) -> Self {
        Self::new(self.a2, self.a1, self.a0 + k)
    }

    /// The polynomial `q(t - x)` as a polynomial in `x` (reflection used to
    /// express the far-side wire delay `db(total - ea)` in terms of `ea`).
    #[inline]
    pub fn reflect(&self, t: f64) -> Self {
        // q(t - x) = a2(t - x)^2 + a1(t - x) + a0
        Self::new(
            self.a2,
            -2.0 * self.a2 * t - self.a1,
            (self.a2 * t + self.a1) * t + self.a0,
        )
    }

    /// Real roots in ascending order, using the numerically stable
    /// `q = -(b + sign(b)·sqrt(disc))/2` formulation. Near-tangent cases
    /// (discriminant within `-tol_disc` of zero) report a double root.
    ///
    /// Degenerate degrees fall back to linear/constant handling: a constant
    /// zero polynomial reports no roots (callers treat "identically zero"
    /// via [`Quad::is_const_zero`]).
    pub fn roots(&self, tol_disc: f64) -> Vec<f64> {
        let scale = self.a2.abs().max(self.a1.abs()).max(self.a0.abs());
        if scale == 0.0 {
            return Vec::new();
        }
        // Treat coefficients negligible relative to the polynomial's own
        // scale as zero to avoid catastrophic cancellation.
        let eps = 1e-14 * scale;
        if self.a2.abs() <= eps {
            if self.a1.abs() <= eps {
                return Vec::new();
            }
            return vec![-self.a0 / self.a1];
        }
        let disc = self.a1 * self.a1 - 4.0 * self.a2 * self.a0;
        let disc_tol = tol_disc * scale * scale;
        if disc < -disc_tol {
            return Vec::new();
        }
        let sq = disc.max(0.0).sqrt();
        let q = -0.5 * (self.a1 + f64::copysign(sq, self.a1));
        let (r1, r2) = if q != 0.0 {
            (q / self.a2, self.a0 / q)
        } else {
            // a1 == 0 and disc == 0: double root at the vertex x = 0.
            (0.0, 0.0)
        };
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        if (hi - lo).abs() <= 0.0 {
            vec![lo]
        } else {
            vec![lo, hi]
        }
    }

    /// Returns `true` if the polynomial is identically zero up to `tol` on
    /// all coefficients.
    #[inline]
    pub fn is_const_zero(&self, tol: f64) -> bool {
        self.a2.abs() <= tol && self.a1.abs() <= tol && self.a0.abs() <= tol
    }

    /// The sub-intervals of `domain` where `q(x) <= slack`.
    ///
    /// Exact up to root rounding; returns at most two intervals (a quadratic
    /// changes sign at most twice). `tol` is an absolute slack tolerance in
    /// the polynomial's value units — boundary roots are kept even when the
    /// polynomial only touches `slack`.
    pub fn le_set(&self, slack: f64, domain: Interval, tol: f64) -> Vec<Interval> {
        let q = self.add_const(-slack);
        if q.is_const_zero(tol) {
            return vec![domain];
        }
        // Collect candidate breakpoints: domain ends + roots inside.
        let mut cuts = vec![domain.lo(), domain.hi()];
        for r in q.roots(1e-12) {
            if domain.contains(r, 0.0) {
                cuts.push(r);
            }
        }
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN cuts"));
        cuts.dedup_by(|a, b| (*a - *b).abs() <= 0.0);
        let mut out: Vec<Interval> = Vec::new();
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mid = 0.5 * (lo + hi);
            if q.eval(mid) <= tol {
                match out.last_mut() {
                    // Merge adjacent accepted pieces.
                    Some(last) if last.hi() >= lo => *last = Interval::new(last.lo(), hi),
                    _ => out.push(Interval::new(lo, hi)),
                }
            }
        }
        // A tangency exactly at a root with no accepted piece around it
        // still satisfies q <= slack at that single point.
        if out.is_empty() {
            for r in q.roots(1e-9) {
                if domain.contains(r, 0.0) && q.eval(r) <= tol {
                    out.push(Interval::point(domain.lo().max(r).min(domain.hi())));
                }
            }
        }
        out
    }

    /// The unique root of a (weakly) monotone polynomial inside `domain`,
    /// refined by bisection for robustness; `None` if no sign change.
    pub fn monotone_root(&self, domain: Interval) -> Option<f64> {
        let (mut lo, mut hi) = (domain.lo(), domain.hi());
        let (flo, fhi) = (self.eval(lo), self.eval(hi));
        if flo == 0.0 {
            return Some(lo);
        }
        if fhi == 0.0 {
            return Some(hi);
        }
        if flo.signum() == fhi.signum() {
            return None;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let fm = self.eval(mid);
            if fm == 0.0 || (hi - lo) <= f64::EPSILON * (1.0 + mid.abs()) {
                return Some(mid);
            }
            if fm.signum() == flo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner() {
        let q = Quad::new(2.0, -3.0, 1.0);
        assert_eq!(q.eval(0.0), 1.0);
        assert_eq!(q.eval(1.0), 0.0);
        assert_eq!(q.eval(2.0), 3.0);
    }

    #[test]
    fn roots_of_factored_quadratic() {
        // (x - 1)(x - 3) = x^2 - 4x + 3
        let r = Quad::new(1.0, -4.0, 3.0).roots(1e-12);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn roots_linear_and_none() {
        let r = Quad::new(0.0, 2.0, -4.0).roots(1e-12);
        assert_eq!(r, vec![2.0]);
        assert!(Quad::new(1.0, 0.0, 1.0).roots(1e-12).is_empty());
        assert!(Quad::new(0.0, 0.0, 5.0).roots(1e-12).is_empty());
        assert!(Quad::zero().roots(1e-12).is_empty());
    }

    #[test]
    fn roots_double() {
        let r = Quad::new(1.0, -2.0, 1.0).roots(1e-12);
        assert_eq!(r.len(), 1);
        assert!((r[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn roots_stable_for_tiny_coefficients() {
        // Coefficients at delay scale (~1e-10): stability matters.
        let q = Quad::new(3e-17, -2.4e-13, 1e-10);
        for r in q.roots(1e-12) {
            assert!(q.eval(r).abs() < 1e-18, "residual too large at {r}");
        }
    }

    #[test]
    fn reflect_identity() {
        let q = Quad::new(1.5, -2.0, 0.5);
        let t = 7.0;
        let refl = q.reflect(t);
        for x in [0.0, 1.0, 3.5, 7.0] {
            assert!((refl.eval(x) - q.eval(t - x)).abs() < 1e-12);
        }
    }

    #[test]
    fn le_set_interior_window() {
        // x^2 - 1 <= 0 on [-3, 3] -> [-1, 1]
        let q = Quad::new(1.0, 0.0, -1.0);
        let s = q.le_set(0.0, Interval::new(-3.0, 3.0), 1e-12);
        assert_eq!(s.len(), 1);
        assert!((s[0].lo() + 1.0).abs() < 1e-9);
        assert!((s[0].hi() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn le_set_two_windows_for_concave() {
        // -(x^2 - 1) <= 0 -> |x| >= 1 -> two windows on [-3, 3].
        let q = Quad::new(-1.0, 0.0, 1.0);
        let s = q.le_set(0.0, Interval::new(-3.0, 3.0), 1e-12);
        assert_eq!(s.len(), 2);
        assert!((s[0].hi() + 1.0).abs() < 1e-9);
        assert!((s[1].lo() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn le_set_everything_or_nothing() {
        let dom = Interval::new(0.0, 2.0);
        assert_eq!(Quad::new(0.0, 0.0, -5.0).le_set(0.0, dom, 1e-12), vec![dom]);
        assert!(Quad::new(0.0, 0.0, 5.0).le_set(0.0, dom, 1e-12).is_empty());
        // Identically-zero polynomial satisfies <= 0 everywhere.
        assert_eq!(Quad::zero().le_set(0.0, dom, 1e-12), vec![dom]);
    }

    #[test]
    fn le_set_tangency_yields_point() {
        // x^2 <= 0 touches only at x = 0.
        let q = Quad::new(1.0, 0.0, 0.0);
        let s = q.le_set(0.0, Interval::new(-1.0, 1.0), 1e-15);
        assert!(!s.is_empty());
        assert!(s[0].contains(0.0, 1e-9));
        assert!(s[0].len() < 1e-6);
    }

    #[test]
    fn monotone_root_bisection() {
        // Strictly increasing on [0, 10]: 0.5 x^2 + x - 30 has root 6.568...
        let q = Quad::new(0.5, 1.0, -30.0);
        let r = q.monotone_root(Interval::new(0.0, 10.0)).unwrap();
        assert!(q.eval(r).abs() < 1e-9);
        assert!(Quad::new(0.0, 1.0, 5.0)
            .monotone_root(Interval::new(0.0, 10.0))
            .is_none());
    }

    #[test]
    fn le_set_respects_slack() {
        // x^2 <= 4 on [0, 10] -> [0, 2]
        let q = Quad::new(1.0, 0.0, 0.0);
        let s = q.le_set(4.0, Interval::new(0.0, 10.0), 1e-12);
        assert_eq!(s.len(), 1);
        assert!((s[0].hi() - 2.0).abs() < 1e-9);
    }
}
