//! Property-based tests for the delay solvers.
//!
//! Cross-checks every closed-form solver against the defining equations on
//! randomized, physically plausible RC values.

use astdme_delay::{
    feasible_splits, min_total_for_feasibility, DelayModel, RcParams, SharedConstraint,
};
use proptest::prelude::*;

fn model() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        3 => (1e-4..1e-1f64, 1e-18..1e-15f64)
            .prop_map(|(r, c)| DelayModel::elmore(RcParams::new(r, c))),
        1 => Just(DelayModel::pathlength()),
    ]
}

fn cap() -> impl Strategy<Value = f64> {
    1e-16..1e-12f64
}

/// Delay magnitudes commensurate with wire delays over ~1e2..1e4 um.
fn small_delay() -> impl Strategy<Value = f64> {
    0.0..5e-13f64
}

proptest! {
    #[test]
    fn balance_split_equalizes_delays(
        m in model(),
        ta in small_delay(), ca in cap(),
        tb in small_delay(), cb in cap(),
        dist in 0.0..2e4f64,
    ) {
        let s = m.balance_split(ta, ca, tb, cb, dist);
        prop_assert!(s.ea >= 0.0 && s.eb >= 0.0);
        prop_assert!(s.total() >= dist * (1.0 - 1e-9));
        let da = m.wire_delay(s.ea, ca) + ta;
        let db = m.wire_delay(s.eb, cb) + tb;
        let scale = da.abs().max(db.abs()).max(1e-30);
        prop_assert!((da - db).abs() <= 1e-9 * scale, "imbalance {} vs {}", da, db);
    }

    #[test]
    fn balance_split_without_snaking_is_tight(
        m in model(),
        ca in cap(), cb in cap(),
        dist in 1.0..2e4f64,
    ) {
        // Equal subtree delays: split is interior, total equals dist.
        let s = m.balance_split(1e-13, ca, 1e-13, cb, dist);
        prop_assert!((s.total() - dist).abs() <= 1e-9 * dist);
    }

    #[test]
    fn extension_inverts_wire_delay(
        m in model(),
        extra in 0.0..1e-10f64,
        c in cap(),
    ) {
        let e = m.extension_for_delay(extra, c);
        prop_assert!(e >= 0.0);
        let back = m.wire_delay(e, c);
        prop_assert!((back - extra).abs() <= 1e-10 * extra.max(1e-30));
    }

    #[test]
    fn feasible_splits_satisfy_the_spread_definition(
        m in model(),
        ca in cap(), cb in cap(),
        total in 10.0..2e4f64,
        lo_a in small_delay(), wa in 0.0..1e-13f64,
        lo_b in small_delay(), wb in 0.0..1e-13f64,
        extra_bound in 0.0..5e-13f64,
    ) {
        // Bound always >= each child's spread, as the engine guarantees.
        let bound = wa.max(wb) + extra_bound;
        let cons = SharedConstraint { lo_a, hi_a: lo_a + wa, lo_b, hi_b: lo_b + wb, bound };
        let set = feasible_splits(&m, ca, cb, total, &[cons], 1e-22);
        for x in set.sample(7) {
            prop_assert!(x >= -1e-9 && x <= total + 1e-9);
            let da = m.wire_delay(x.max(0.0), ca);
            let db = m.wire_delay((total - x).max(0.0), cb);
            let hi = (da + cons.hi_a).max(db + cons.hi_b);
            let lo = (da + cons.lo_a).min(db + cons.lo_b);
            // Tolerance: root-finding precision on delays.
            prop_assert!(hi - lo <= bound + 1e-9 * hi.abs().max(1e-30),
                "spread {} exceeds bound {} at split {}", hi - lo, bound, x);
        }
    }

    #[test]
    fn infeasible_sets_become_feasible_at_min_total(
        m in model(),
        ca in cap(), cb in cap(),
        dist in 1.0..1e3f64,
        imbalance in 1e-13..1e-10f64,
    ) {
        let cons = SharedConstraint::zero_skew(imbalance, 0.0);
        if let Some(t) = min_total_for_feasibility(&m, ca, cb, dist, &[cons], 1e-22) {
            prop_assert!(t >= dist);
            let set = feasible_splits(&m, ca, cb, t * (1.0 + 1e-9) + 1e-12, &[cons], 1e-22);
            prop_assert!(!set.is_empty(), "infeasible at claimed minimum total {t}");
            if t > dist * (1.0 + 1e-6) {
                // Strictly snaked: shrinking below the minimum must fail.
                let below = feasible_splits(&m, ca, cb, t * 0.999, &[cons], 1e-22);
                prop_assert!(below.is_empty(), "feasible below the claimed minimum");
            }
        }
    }

    #[test]
    fn conflicting_zero_skew_groups_never_feasible(
        m in model(),
        ca in cap(), cb in cap(),
        total in 1.0..1e4f64,
        t1 in 1e-13..1e-11f64,
        gap in 1e-13..1e-11f64,
    ) {
        // Two zero-skew groups demanding different δ at the same merge.
        let g1 = SharedConstraint::zero_skew(t1, 0.0);
        let g2 = SharedConstraint::zero_skew(t1 + gap, 0.0);
        prop_assert!(feasible_splits(&m, ca, cb, total, &[g1, g2], 1e-22).is_empty());
        prop_assert!(min_total_for_feasibility(&m, ca, cb, total, &[g1, g2], 1e-22).is_none());
    }

    #[test]
    fn wire_delay_is_monotone_in_length_and_load(
        m in model(),
        l1 in 0.0..1e4f64, l2 in 0.0..1e4f64,
        c1 in cap(), c2 in cap(),
    ) {
        let (llo, lhi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let (clo, chi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(m.wire_delay(llo, clo) <= m.wire_delay(lhi, clo) + 1e-30);
        prop_assert!(m.wire_delay(llo, clo) <= m.wire_delay(llo, chi) + 1e-30);
    }

    #[test]
    fn delay_quad_matches_wire_delay(
        m in model(),
        len in 0.0..1e4f64,
        c in cap(),
    ) {
        let q = m.delay_quad(c);
        let d = m.wire_delay(len, c);
        prop_assert!((q.eval(len) - d).abs() <= 1e-12 * d.max(1e-30));
    }
}
