//! Merge recording and adoption: the engine half of incremental ECO
//! re-routing.
//!
//! A **recording** ([`MergeRecording`]) captures, per merge, everything a
//! later run needs to *re-create that merge without re-deriving it*:
//! which children merged, how many candidates the new node was created
//! with, which descendant nodes received appended candidates (offset
//! adjustment writes into the overlay-touched subtree), the merge's
//! residual contribution, and the global class-fusion state before and
//! after. Candidate **values** are deliberately not copied — the recorded
//! forest itself is kept alive by the ECO session, and every recorded
//! value is a slice of it:
//!
//! * creation candidates of node `r` = the first `creation_len` entries of
//!   `r`'s final candidate list (later appends are strictly suffix-only,
//!   see `commit_expansions`);
//! * appended candidates = `cands[start..start + len]` of the touched
//!   node's final list.
//!
//! [`MergeForest::adopt_merge`] replays one recorded merge into a *new*
//! forest: it validates that the class state matches the recorded
//! pre-merge snapshot and that every append target has a counterpart in
//! the new forest, then clones the creation prefix, re-pushes the recorded
//! append slices, and folds in the recorded residual. Because a merge's
//! result is a pure function of its children's candidate lists, the class
//! state, and the engine config, an adopted node is **bit-identical** to
//! what [`MergeForest::merge`] would have produced — adoption just skips
//! the expansion work. Any validation failure returns `None` and the
//! caller falls back to a fresh [`MergeForest::merge`], which is always
//! correct.

use super::node::Node;
use super::{MergeForest, NodeId};
use crate::Candidate;

/// Sentinel in node-translation maps: the node has no counterpart.
pub const NO_NODE: u32 = u32::MAX;

/// One recorded merge (the index slices follow the conventions laid out
/// in this module's docs).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeLog {
    /// First child, in merge orientation (merging is not symmetric in its
    /// argument order).
    pub a: u32,
    /// Second child.
    pub b: u32,
    /// The node the merge created.
    pub result: u32,
    /// Number of candidates `result` was created with; its final list may
    /// have grown by later appends, so the creation set is the prefix
    /// `cands[..creation_len]`.
    pub creation_len: u32,
    /// Candidates this merge appended to descendant nodes during offset
    /// adjustment, as `(node, start, len)` slices of the recorded forest's
    /// final candidate lists, in commit order.
    pub appends: Vec<(u32, u32, u32)>,
    /// The merge's residual contribution (worst accepted skew-bound
    /// violation; the forest residual is the running max of these).
    pub residual: f64,
    /// Index into [`MergeRecording`]'s class snapshots of the class state
    /// this merge ran under.
    pub epoch_before: u32,
    /// Index of the class state after this merge (differs from
    /// `epoch_before` only when the merge fused two classes).
    pub epoch_after: u32,
}

/// The full merge script of one bottom-up run: per-merge logs plus every
/// distinct class-fusion state the run went through (snapshot 0 is the
/// initial state; at most one new snapshot per group fusion).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeRecording {
    pub(super) logs: Vec<MergeLog>,
    class_snaps: Vec<(Vec<u32>, Vec<f64>)>,
}

impl MergeRecording {
    /// An empty recording seeded with `forest`'s current class state as
    /// snapshot 0. Create it right after the leaves are added, before the
    /// first merge.
    pub fn for_forest(forest: &MergeForest) -> Self {
        Self {
            logs: Vec::new(),
            class_snaps: vec![(forest.class_parent.clone(), forest.phi.clone())],
        }
    }

    /// The recorded merges, in execution order.
    pub fn logs(&self) -> &[MergeLog] {
        &self.logs
    }

    /// Index of the current (latest) class snapshot.
    pub(crate) fn epoch(&self) -> usize {
        self.class_snaps.len() - 1
    }

    /// Records the class state after a merge: pushes a new snapshot iff it
    /// differs bitwise from the latest one, and returns the current epoch.
    pub(crate) fn note_class_state(&mut self, class_parent: &[u32], phi: &[f64]) -> usize {
        let (lp, lphi) = self.class_snaps.last().expect("snapshot 0 always exists");
        let same = lp.as_slice() == class_parent
            && lphi.len() == phi.len()
            && lphi
                .iter()
                .zip(phi)
                .all(|(x, y)| x.to_bits() == y.to_bits());
        if !same {
            self.class_snaps.push((class_parent.to_vec(), phi.to_vec()));
        }
        self.epoch()
    }

    /// Whether `forest`'s current class state equals snapshot `epoch`,
    /// bit for bit.
    fn state_matches(&self, epoch: usize, forest: &MergeForest) -> bool {
        let (p, phi) = &self.class_snaps[epoch];
        p.as_slice() == forest.class_parent.as_slice()
            && phi.len() == forest.phi.len()
            && phi
                .iter()
                .zip(&forest.phi)
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }
}

impl MergeForest {
    /// [`MergeForest::merge`] that also appends a [`MergeLog`] to `rec`,
    /// so the merge can later be adopted into another forest. Produces a
    /// tree bit-identical to the unrecorded merge.
    pub fn merge_recorded(&mut self, a: NodeId, b: NodeId, rec: &mut MergeRecording) -> NodeId {
        self.merge_impl(a, b, Some(rec))
    }

    /// Replays the recorded merge `log` (of the forest `std`, recorded in
    /// `rec`) as the merge of `x` and `y` in this forest, translating
    /// recorded node ids through `std_to_new` (`std` node → this forest's
    /// node, [`NO_NODE`] = no counterpart).
    ///
    /// Returns the adopted node, bit-identical to what
    /// [`MergeForest::merge`]`(x, y)` would create — **provided** the
    /// caller guarantees `x` and `y` are bit-identical counterparts of
    /// `log.a` and `log.b` (same candidate lists, same orientation).
    /// Validation that can be checked here — the class state matching the
    /// recorded pre-merge snapshot, every append target being translated —
    /// is checked before any mutation; on failure the forest is untouched
    /// and `None` is returned (fall back to a fresh merge).
    ///
    /// When `rec_out` is given, the adopted merge is re-recorded into it
    /// in this forest's id space, so the new forest supports the next
    /// adoption pass.
    #[allow(clippy::too_many_arguments)]
    pub fn adopt_merge(
        &mut self,
        x: NodeId,
        y: NodeId,
        std: &MergeForest,
        log: &MergeLog,
        rec: &MergeRecording,
        std_to_new: &[u32],
        rec_out: Option<&mut MergeRecording>,
    ) -> Option<NodeId> {
        if self.cfg.fuse_groups && !rec.state_matches(log.epoch_before as usize, self) {
            return None;
        }
        for &(n, start, len) in &log.appends {
            let mapped = std_to_new.get(n as usize).copied().unwrap_or(NO_NODE);
            if mapped == NO_NODE {
                return None;
            }
            if std.nodes[n as usize].cands.len() < (start + len) as usize {
                return None;
            }
            // Positional alignment: the counterpart's list must sit at
            // exactly the recorded pre-append length, or the cloned
            // candidates' provenance indices (positional into child lists)
            // would refer to different candidates than they did on record.
            if self.nodes[mapped as usize].cands.len() != start as usize {
                return None;
            }
        }
        let src = &std.nodes[log.result as usize];
        if src.cands.len() < log.creation_len as usize {
            return None;
        }
        // Validated — mutate. Replay order (appends, then node creation)
        // does not matter for bit-identity: the creation candidates'
        // provenance indices point at creation-time child positions, which
        // later appends never shift.
        for &(n, start, len) in &log.appends {
            let mapped = std_to_new[n as usize] as usize;
            for i in start..start + len {
                let cand = std.nodes[n as usize].cands[i as usize].clone();
                self.nodes[mapped].push_candidate(cand);
            }
        }
        let cands: Vec<Candidate> = src.cands[..log.creation_len as usize].to_vec();
        self.residual = self.residual.max(log.residual);
        if self.cfg.fuse_groups && log.epoch_after != log.epoch_before {
            let (p, phi) = &rec.class_snaps[log.epoch_after as usize];
            self.class_parent.copy_from_slice(p);
            self.phi.copy_from_slice(phi);
        }
        let id = NodeId(self.nodes.len());
        let creation_len = cands.len();
        self.nodes.push(Node::new(cands, Some((x, y)), None));
        if let Some(out) = rec_out {
            let epoch_before = out.epoch();
            let epoch_after = if self.cfg.fuse_groups {
                out.note_class_state(&self.class_parent, &self.phi)
            } else {
                epoch_before
            };
            let appends = log
                .appends
                .iter()
                .map(|&(n, start, len)| (std_to_new[n as usize], start, len))
                .collect();
            out.logs.push(MergeLog {
                a: x.0 as u32,
                b: y.0 as u32,
                result: id.0 as u32,
                creation_len: creation_len as u32,
                appends,
                residual: log.residual,
                epoch_before: epoch_before as u32,
                epoch_after: epoch_after as u32,
            });
        }
        Some(id)
    }
}
