//! Candidate-pair expansion fan-out and the deterministic commit.
//!
//! Split from `mod.rs` (which keeps the `merge` orchestration): this file
//! owns the expand -> commit half of a merge — fanning ranked pairs out
//! against their own [`MergeCtx`](super::context::MergeCtx) snapshots
//! (in parallel under the `parallel` feature), replaying each pair's
//! overlay in ranked order so the committed candidate contents *and
//! indices* reproduce the serial build bit-for-bit, and pruning the
//! merged node's candidate list. See the module docs in `mod.rs` for the
//! borrow discipline that makes expansions independent.

use crate::{CandKind, Candidate};

use super::context::{Expansion, Scratch};
use super::{MergeForest, NodeId};

impl MergeForest {
    /// Expands every ranked pair against its own [`MergeCtx`]. With the
    /// `parallel` feature this is the candidate-pair *expansion* fan-out:
    /// each pair's case analysis runs on its own thread (expansions are
    /// independent by the borrow discipline), and the deterministic commit
    /// keeps results bit-identical to the serial build.
    #[cfg(feature = "parallel")]
    pub(super) fn expand_pairs(
        &mut self,
        a: NodeId,
        b: NodeId,
        pairs: &[(f64, usize, usize)],
    ) -> Vec<Expansion> {
        // Fan out only on *large* merges: a typical expansion is cheaper
        // than a thread spawn, and `merge` runs n-1 times per route, so
        // unconditional spawning would make the parallel build slower than
        // serial on multicore machines. The candidate-pair product is the
        // same work proxy the pair-cost path thresholds on (64): when the
        // children carry that many candidate combinations, the per-pair
        // case analysis (sampling, snaking search, offset adjustment) is
        // heavy enough to amortize the spawns.
        const EXPAND_WORK_THRESHOLD: usize = 64;
        let work = self.nodes[a.0].cands.len() * self.nodes[b.0].cands.len();
        if pairs.len() < 2 || work < EXPAND_WORK_THRESHOLD {
            return self.expand_pairs_serial(a, b, pairs);
        }
        // One scratch per worker thread, reused across its whole chunk
        // (the forest's shared scratch cannot cross threads).
        astdme_par::par_map_with(pairs, 2, Scratch::default, |scratch, &(_, ia, ib)| {
            self.expand_one(a, b, ia, ib, scratch)
        })
    }

    /// Expands every ranked pair against its own [`MergeCtx`] (serial
    /// build).
    #[cfg(not(feature = "parallel"))]
    pub(super) fn expand_pairs(
        &mut self,
        a: NodeId,
        b: NodeId,
        pairs: &[(f64, usize, usize)],
    ) -> Vec<Expansion> {
        self.expand_pairs_serial(a, b, pairs)
    }

    /// Serial expansion, reusing the forest's scratch across all pairs so
    /// the hot path allocates no per-pair buffers.
    fn expand_pairs_serial(
        &mut self,
        a: NodeId,
        b: NodeId,
        pairs: &[(f64, usize, usize)],
    ) -> Vec<Expansion> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = pairs
            .iter()
            .map(|&(_, ia, ib)| self.expand_one(a, b, ia, ib, &mut scratch))
            .collect();
        self.scratch = scratch;
        out
    }

    fn expand_one(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        scratch: &mut Scratch,
    ) -> Expansion {
        let mut ctx = self.ctx();
        let (cands, residual) = ctx.expand_pair(a, b, ia, ib, scratch);
        Expansion {
            cands,
            residual,
            overlay: ctx.into_overlay(),
        }
    }

    /// Commits expansions in ranked-pair order: overlay candidates are
    /// appended to their nodes and every overlay-local provenance index is
    /// remapped to its final position. Because expansions are computed
    /// against the pre-merge snapshot and replayed in pair order, the
    /// final candidate contents *and indices* are exactly what the old
    /// single-borrow serial loop produced.
    ///
    /// With `record` set, additionally returns the per-node append slices
    /// `(node, start, len)` this commit wrote (empty otherwise) — the raw
    /// material of a [`MergeLog`].
    pub(super) fn commit_expansions(
        &mut self,
        a: NodeId,
        b: NodeId,
        expansions: Vec<Expansion>,
        record: bool,
    ) -> (Vec<Candidate>, f64, Vec<(u32, u32, u32)>) {
        // Pre-commit candidate counts of every overlay-touched node: any
        // provenance index below the snapshot refers to a committed
        // candidate; anything at or above is overlay-local to its pair.
        // Expansions touch a handful of nodes, so `(node, count)`
        // association lists (reused via scratch) beat hash maps here.
        let mut snap = std::mem::take(&mut self.scratch.snap);
        snap.clear();
        for exp in &expansions {
            for n in exp.overlay.nodes() {
                if !snap.iter().any(|&(sn, _)| sn == n) {
                    snap.push((n, self.nodes[n].cands.len()));
                }
            }
        }
        fn lookup(list: &[(usize, usize)], node: usize) -> Option<usize> {
            list.iter().find(|&&(n, _)| n == node).map(|&(_, v)| v)
        }
        // Within one expansion's replay, a node's overlay candidates commit
        // at consecutive indices (nothing else touches the node), so the
        // remap only needs the node's candidate count at first touch.
        fn remap(
            bases: &[(usize, usize)],
            snap: &[(usize, usize)],
            node: usize,
            idx: usize,
        ) -> usize {
            match lookup(snap, node) {
                Some(s) if idx >= s => {
                    lookup(bases, node).expect("remapped node has a base") + (idx - s)
                }
                _ => idx,
            }
        }
        let mut bases = std::mem::take(&mut self.scratch.bases);
        let mut cands: Vec<Candidate> = Vec::new();
        let mut worst_residual = 0.0f64;
        for exp in expansions {
            worst_residual = worst_residual.max(exp.residual);
            // Committed index of this expansion's first overlay candidate,
            // per node.
            bases.clear();
            for (n, mut cand) in exp.overlay.into_entries() {
                if let CandKind::Merge { cand_a, cand_b, .. } = &mut cand.kind {
                    let (l, r) = self.nodes[n]
                        .children
                        .expect("overlay candidates extend merge nodes");
                    *cand_a = remap(&bases, &snap, l.0, *cand_a);
                    *cand_b = remap(&bases, &snap, r.0, *cand_b);
                }
                if !bases.iter().any(|&(bn, _)| bn == n) {
                    bases.push((n, self.nodes[n].cands.len()));
                }
                self.nodes[n].push_candidate(cand);
            }
            for mut cand in exp.cands {
                if let CandKind::Merge { cand_a, cand_b, .. } = &mut cand.kind {
                    *cand_a = remap(&bases, &snap, a.0, *cand_a);
                    *cand_b = remap(&bases, &snap, b.0, *cand_b);
                }
                cands.push(cand);
            }
        }
        let mut appends = Vec::new();
        if record {
            for &(n, pre) in snap.iter() {
                let now = self.nodes[n].cands.len();
                if now > pre {
                    appends.push((n as u32, pre as u32, (now - pre) as u32));
                }
            }
        }
        snap.clear();
        bases.clear();
        self.scratch.snap = snap;
        self.scratch.bases = bases;
        (cands, worst_residual, appends)
    }

    /// Keeps the `k` most promising candidates: cheapest wirelength first,
    /// larger regions (more downstream freedom) on ties. `total_cmp` so a
    /// poisoned (NaN) candidate sorts deterministically last instead of
    /// panicking — the audit reports the damage.
    pub(super) fn prune(cands: &mut Vec<Candidate>, k: usize) {
        cands.sort_by(|x, y| {
            let wl = x.wirelen.total_cmp(&y.wirelen);
            wl.then(y.region.diameter().total_cmp(&x.region.diameter()))
        });
        // Drop near-duplicates (same wirelen, same region within tolerance).
        cands.dedup_by(|x, y| {
            (x.wirelen - y.wirelen).abs() <= 1e-9 * (1.0 + y.wirelen)
                && x.region.hull(&y.region).half_perimeter() <= y.region.half_perimeter() + 1e-9
        });
        cands.truncate(k.max(1));
    }
}
