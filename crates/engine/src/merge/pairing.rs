//! Candidate-pair selection: shared-constraint assembly, merge-cost
//! estimation, and the cheapest-first ranking that decides which child
//! candidate pairs a merge expands.

use astdme_delay::{intersect_delta_windows, SharedConstraint};

use crate::{DelayMap, MergeForest};

use super::context::{class_of_in, MergeCtx, Scratch};
use super::NodeId;

/// Per-class adjusted delay hulls of a delay map, into a reused buffer
/// (cleared first): `(class, adj_lo, adj_hi, min member bound)`, ascending
/// by class. The single implementation behind both the hot pair-cost path
/// (scratch buffers) and class fusing after a merge commits.
pub(crate) fn effective_entries_into(
    class_parent: &[u32],
    phi: &[f64],
    bounds: &[f64],
    delays: &DelayMap,
    out: &mut Vec<(u32, f64, f64, f64)>,
) {
    out.clear();
    for (g, r) in delays.iter() {
        let c = class_of_in(class_parent, g);
        out.push((
            c,
            r.lo - phi[g.index()],
            r.hi - phi[g.index()],
            bounds[g.index()],
        ));
    }
    // Sort once, then coalesce same-class runs in place: O(C log C)
    // instead of a linear `find` per group (hulling is order-independent,
    // so this matches the old first-occurrence merge exactly).
    out.sort_unstable_by_key(|(c, ..)| *c);
    let mut w = 0;
    for i in 0..out.len() {
        if w > 0 && out[w - 1].0 == out[i].0 {
            out[w - 1].1 = out[w - 1].1.min(out[i].1);
            out[w - 1].2 = out[w - 1].2.max(out[i].2);
            out[w - 1].3 = out[w - 1].3.min(out[i].3);
        } else {
            out[w] = out[i];
            w += 1;
        }
    }
    out.truncate(w);
}

impl MergeCtx<'_> {
    /// Shared-group constraints between two candidates, into
    /// `scratch.cons` (cleared first), reusing `scratch`'s entry buffers —
    /// the sole entry point, so every caller shares one buffer set instead
    /// of allocating per call. With group fusion on, constraints are per
    /// effective class over offset-adjusted delays; otherwise per original
    /// group.
    pub(crate) fn shared_constraints_in(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        scratch: &mut Scratch,
    ) {
        let (ca, cb) = (self.cand(a, ia), self.cand(b, ib));
        if self.cfg.fuse_groups {
            effective_entries_into(
                self.class_parent,
                self.phi,
                self.bounds,
                &ca.delays,
                &mut scratch.ea,
            );
            effective_entries_into(
                self.class_parent,
                self.phi,
                self.bounds,
                &cb.delays,
                &mut scratch.eb,
            );
            let cons = &mut scratch.cons;
            cons.clear();
            let (ea, eb) = (&scratch.ea, &scratch.eb);
            let (mut i, mut j) = (0, 0);
            while i < ea.len() && j < eb.len() {
                match ea[i].0.cmp(&eb[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        cons.push(SharedConstraint {
                            lo_a: ea[i].1,
                            hi_a: ea[i].2,
                            lo_b: eb[j].1,
                            hi_b: eb[j].2,
                            bound: ea[i].3.min(eb[j].3),
                        });
                        i += 1;
                        j += 1;
                    }
                }
            }
            return;
        }
        let cons = &mut scratch.cons;
        cons.clear();
        cons.extend(
            ca.delays
                .shared_ranges(&cb.delays)
                .map(|(g, ra, rb)| SharedConstraint {
                    lo_a: ra.lo,
                    hi_a: ra.hi,
                    lo_b: rb.lo,
                    hi_b: rb.hi,
                    bound: self.bounds[g.index()],
                }),
        );
    }

    /// Estimated wire cost of merging one candidate pair: the geometric
    /// distance plus any snaking the shared-group δ-windows force, plus a
    /// proxy for offset-conflict resolution cost. This is what makes the
    /// engine prefer offset-compatible partners — the quantity the paper's
    /// "minimum merging-cost" scheme needs on difficult instances.
    ///
    /// Takes an explicit [`Scratch`] because this is the innermost loop of
    /// `merge`: the constraint assembly reuses the caller's buffers
    /// instead of allocating per call.
    pub(crate) fn pair_cost_estimate(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        scratch: &mut Scratch,
    ) -> f64 {
        let (ca, cb) = (self.cand(a, ia), self.cand(b, ib));
        let d = ca.region.distance(&cb.region);
        let (cap_a, cap_b) = (ca.cap, cb.cap);
        self.shared_constraints_in(a, b, ia, ib, scratch);
        let cons = &scratch.cons;
        match intersect_delta_windows(cons, self.cfg.skew_tol) {
            Some(None) => d,
            Some(Some(w)) => {
                let mut need = d;
                if w.lo() > 0.0 {
                    need = need.max(self.model.extension_for_delay(w.lo(), cap_a));
                }
                if w.hi() < 0.0 {
                    need = need.max(self.model.extension_for_delay(-w.hi(), cap_b));
                }
                need
            }
            None => {
                // Conflict: the windows' spread must be paid as relative
                // shifts somewhere inside a child. Approximate with the
                // wire needed to realize the full spread against the
                // smaller load.
                let (mut mid_lo, mut mid_hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for c in cons {
                    let mid = 0.5 * ((c.hi_b - c.lo_a - c.bound) + (c.bound + c.lo_b - c.hi_a));
                    mid_lo = mid_lo.min(mid);
                    mid_hi = mid_hi.max(mid);
                }
                let spread = mid_hi - mid_lo;
                d + self
                    .model
                    .extension_for_delay(spread.max(0.0), cap_a.min(cap_b))
            }
        }
    }

    /// Cost estimates for every listed index pair. With the `parallel`
    /// feature, large pair sets fan out over threads (each worker with its
    /// own [`Scratch`]); results are identical to the serial path.
    #[cfg(feature = "parallel")]
    pub(crate) fn pair_costs(
        &self,
        a: NodeId,
        b: NodeId,
        index_pairs: &[(usize, usize)],
        scratch: &mut Scratch,
    ) -> Vec<f64> {
        // Below the fan-out threshold, thread spawns cost more than the
        // estimates; reuse the shared scratch serially as the default
        // build does. Above it, each worker thread builds one scratch and
        // reuses it across its whole chunk (the shared one cannot cross
        // threads).
        const PAR_THRESHOLD: usize = 64;
        if index_pairs.len() < PAR_THRESHOLD {
            return self.pair_costs_serial(a, b, index_pairs, scratch);
        }
        astdme_par::par_map_with(
            index_pairs,
            PAR_THRESHOLD,
            Scratch::default,
            |scratch, &(ia, ib)| self.pair_cost_estimate(a, b, ia, ib, scratch),
        )
    }

    /// Cost estimates for every listed index pair (serial build).
    #[cfg(not(feature = "parallel"))]
    pub(crate) fn pair_costs(
        &self,
        a: NodeId,
        b: NodeId,
        index_pairs: &[(usize, usize)],
        scratch: &mut Scratch,
    ) -> Vec<f64> {
        self.pair_costs_serial(a, b, index_pairs, scratch)
    }

    fn pair_costs_serial(
        &self,
        a: NodeId,
        b: NodeId,
        index_pairs: &[(usize, usize)],
        scratch: &mut Scratch,
    ) -> Vec<f64> {
        index_pairs
            .iter()
            .map(|&(ia, ib)| self.pair_cost_estimate(a, b, ia, ib, scratch))
            .collect()
    }
}

impl MergeForest {
    /// Estimates the merge cost of every child-candidate pair and returns
    /// them sorted cheapest-first.
    pub(super) fn rank_candidate_pairs(
        &mut self,
        a: NodeId,
        b: NodeId,
    ) -> Vec<(f64, usize, usize)> {
        let (na, nb) = (self.nodes[a.0].cands.len(), self.nodes[b.0].cands.len());
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut index_pairs = std::mem::take(&mut scratch.index_pairs);
        index_pairs.clear();
        index_pairs.extend((0..na).flat_map(|ia| (0..nb).map(move |ib| (ia, ib))));
        let costs = self.ctx().pair_costs(a, b, &index_pairs, &mut scratch);
        let mut pairs: Vec<(f64, usize, usize)> = index_pairs
            .iter()
            .zip(costs)
            .map(|(&(ia, ib), cost)| (cost, ia, ib))
            .collect();
        scratch.index_pairs = index_pairs;
        self.scratch = scratch;
        // total_cmp, not partial_cmp: a NaN cost estimate must surface as
        // a deterministic ordering (NaN ranks after every real cost, so
        // the pair is expanded last or truncated) and ultimately as an
        // audit failure — not as a panic deep inside a merge round.
        pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
        pairs
    }
}
