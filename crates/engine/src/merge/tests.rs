//! Unit tests for the merge module tree (formerly `forest.rs` inline
//! tests), exercising each Fig. 6 case at the `MergeForest` API level.

use astdme_delay::{DelayModel, RcParams};
use astdme_geom::Point;

use crate::{CandKind, EngineConfig, GroupId, MergeForest};

fn forest_with(bounds: Vec<f64>) -> MergeForest {
    MergeForest::new(
        DelayModel::elmore(RcParams::default()),
        bounds,
        EngineConfig::default(),
    )
}

fn pt(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

#[test]
fn leaf_candidates_are_points_at_zero_delay() {
    let mut f = forest_with(vec![0.0]);
    let id = f.add_leaf(0, pt(3.0, 4.0), 1e-14, GroupId(0));
    let c = &f.candidates(id)[0];
    assert!(c.region.is_point(1e-12));
    assert_eq!(c.cap, 1e-14);
    assert_eq!(c.wirelen, 0.0);
    assert_eq!(c.delays.range(GroupId(0)).unwrap().hi, 0.0);
}

#[test]
fn same_group_zero_skew_merge_is_classic_dme() {
    let mut f = forest_with(vec![0.0]);
    let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
    let b = f.add_leaf(1, pt(1000.0, 0.0), 1e-14, GroupId(0));
    let m = f.merge(a, b);
    for c in f.candidates(m) {
        // Zero-skew with equal loads: split in half, region is an arc.
        let CandKind::Merge { ea, eb, .. } = c.kind else {
            panic!("expected merge provenance")
        };
        assert!((ea - 500.0).abs() < 1e-6);
        assert!((eb - 500.0).abs() < 1e-6);
        assert!(c.region.is_arc(1e-9));
        assert!((c.wirelen - 1000.0).abs() < 1e-9);
        // Both sinks at identical delay.
        let r = c.delays.range(GroupId(0)).unwrap();
        assert!(r.spread() < 1e-18);
    }
}

#[test]
fn different_groups_merge_spans_the_sdr() {
    // Fusion retains only the offset-consistent candidate; the SDR
    // sweep is visible in the general (unfused) mode.
    let mut f = MergeForest::new(
        DelayModel::elmore(RcParams::default()),
        vec![0.0, 0.0],
        EngineConfig {
            fuse_groups: false,
            ..EngineConfig::default()
        },
    );
    let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
    let b = f.add_leaf(1, pt(800.0, 600.0), 1e-14, GroupId(1));
    let m = f.merge(a, b);
    let cands = f.candidates(m);
    // Multiple sampled splits, all spending exactly the distance.
    assert!(cands.len() > 1);
    for c in cands {
        assert!((c.wirelen - 1400.0).abs() < 1e-6);
        assert_eq!(c.delays.group_count(), 2);
    }
    // The extreme samples touch the child positions.
    let spans: Vec<f64> = cands
        .iter()
        .map(|c| match c.kind {
            CandKind::Merge { ea, .. } => ea,
            _ => unreachable!(),
        })
        .collect();
    let min = spans.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = spans.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(min < 1e-6);
    assert!((max - 1400.0).abs() < 1e-6);
}

#[test]
fn bounded_skew_merge_allows_off_balance_splits() {
    let mut f = MergeForest::new(
        DelayModel::elmore(RcParams::default()),
        vec![1e-11],
        EngineConfig::default(),
    );
    let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
    let b = f.add_leaf(1, pt(2000.0, 0.0), 1e-14, GroupId(0));
    let m = f.merge(a, b);
    let mut spread_seen = 0.0f64;
    for c in f.candidates(m) {
        let r = c.delays.range(GroupId(0)).unwrap();
        assert!(r.spread() <= 1e-11 + 1e-18);
        spread_seen = spread_seen.max(r.spread());
    }
    assert!(spread_seen > 0.0, "bounded merges should use the slack");
}

#[test]
fn unbalanced_zero_skew_merge_snakes() {
    let mut f = forest_with(vec![0.0]);
    // A heavy, far subtree vs a nearby light sink: build the heavy one
    // first out of two distant sinks.
    let a1 = f.add_leaf(0, pt(0.0, 0.0), 5e-14, GroupId(0));
    let a2 = f.add_leaf(1, pt(4000.0, 0.0), 5e-14, GroupId(0));
    let a = f.merge(a1, a2);
    let b = f.add_leaf(2, pt(2050.0, 10.0), 1e-15, GroupId(0));
    let m = f.merge(a, b);
    // b is tiny and close to a's merging arc: zero skew demands more
    // wire to b than the distance.
    let c = &f.candidates(m)[0];
    let CandKind::Merge { ea, eb, .. } = c.kind else {
        panic!("expected merge")
    };
    let d = f
        .candidates(a)
        .iter()
        .map(|ca| ca.region.distance(&f.candidates(b)[0].region))
        .fold(f64::INFINITY, f64::min);
    assert!(ea + eb > d + 1.0, "expected a snaking detour");
    let r = c.delays.range(GroupId(0)).unwrap();
    assert!(r.spread() < 1e-18);
}

#[test]
fn embed_realizes_bookkept_wirelength_and_delays() {
    let mut f = forest_with(vec![0.0]);
    let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
    let b = f.add_leaf(1, pt(600.0, 400.0), 2e-14, GroupId(0));
    let m = f.merge(a, b);
    let best_wirelen = f.candidates(m)[0].wirelen;
    let tree = f.embed(m, pt(300.0, 1000.0));
    // Total wire = subtree wire + source connection.
    let subtree_wire: f64 = tree
        .nodes()
        .iter()
        .filter(|n| n.parent.is_some())
        .map(|n| n.wire)
        .sum();
    assert!((subtree_wire - best_wirelen).abs() < 1e-6);
    assert_eq!(tree.sink_nodes().count(), 2);
}

#[test]
fn merge_distance_and_representative_region() {
    let mut f = forest_with(vec![0.0, 0.0]);
    let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
    let b = f.add_leaf(1, pt(100.0, 0.0), 1e-14, GroupId(1));
    assert_eq!(f.merge_distance(a, b), 100.0);
    let m = f.merge(a, b);
    let rep = f.representative_region(m);
    for c in f.candidates(m) {
        assert!(rep.contains_trr(&c.region, 1e-9));
    }
}

#[test]
fn residual_zero_on_clean_instances() {
    let mut f = forest_with(vec![0.0, 0.0]);
    let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
    let b = f.add_leaf(1, pt(500.0, 0.0), 1e-14, GroupId(1));
    let c = f.add_leaf(2, pt(250.0, 400.0), 1e-14, GroupId(0));
    let ab = f.merge(a, b);
    let _ = f.merge(ab, c);
    assert_eq!(f.residual(), 0.0);
}

#[test]
#[should_panic(expected = "cannot merge a node with itself")]
fn merging_self_panics() {
    let mut f = forest_with(vec![0.0]);
    let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
    let _ = f.merge(a, a);
}
