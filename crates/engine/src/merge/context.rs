//! The explicit merge context: an immutable view of the forest plus a
//! private candidate overlay, so candidate-pair expansion is a pure
//! function of pre-merge state.
//!
//! # Borrow discipline
//!
//! [`MergeForest::merge`](crate::MergeForest::merge) runs in two phases:
//!
//! 1. **Expansion** — every selected child-candidate pair is expanded
//!    against a [`MergeCtx`]: shared `&` borrows of the forest's nodes,
//!    model, config and class state, plus an owned [`Overlay`] where the
//!    offset-adjustment machinery parks any candidates it derives on
//!    *existing* nodes. Expansions never see each other's overlays (a
//!    pair's provenance chain predates the merge), so the phase fans out
//!    over [`astdme_par`] under the `parallel` feature with bit-identical
//!    results.
//! 2. **Commit** — back under `&mut self`, the forest replays each
//!    expansion's overlay in pair order, remapping overlay-local candidate
//!    indices to their final positions. This reproduces the exact indices
//!    the old single-borrow serial code produced, which is what keeps
//!    serial and parallel builds routing identical trees.
//!
//! Per-worker [`Scratch`] buffers (constraint assembly) are threaded as
//! explicit `&mut` parameters rather than stored in the context, so a
//! context can hand out `&Candidate` borrows while a callee fills buffers.

use astdme_delay::{DelayModel, SharedConstraint};

use crate::{Candidate, EngineConfig, GroupId};

use super::node::Node;
use super::NodeId;

/// Reusable buffers for the hot constraint-assembly path
/// ([`MergeCtx::pair_cost_estimate`]): per-call `Vec` allocations in the
/// inner loop of `merge` showed up as a constant-factor tax, so the forest
/// carries one scratch set and the parallel paths create one per worker.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    pub(crate) ea: Vec<(u32, f64, f64, f64)>,
    pub(crate) eb: Vec<(u32, f64, f64, f64)>,
    pub(crate) cons: Vec<SharedConstraint>,
    /// Split-sample staging for `sample_candidates`.
    pub(crate) samples: Vec<f64>,
    /// Candidate-index-pair staging for `rank_candidate_pairs`.
    pub(crate) index_pairs: Vec<(usize, usize)>,
    /// Commit-phase node snapshots/bases (`commit_expansions`): small
    /// `(node, count)` association lists reused across merges.
    pub(crate) snap: Vec<(usize, usize)>,
    pub(crate) bases: Vec<(usize, usize)>,
}

/// Candidates derived on *existing* nodes during one pair expansion
/// (offset adjustment / wire sneaking), indexed past the node's pre-merge
/// candidate count. Owned by a [`MergeCtx`]; committed to the forest in
/// pair order afterwards.
///
/// Storage is three flat vectors (append list, intrusive per-node chain,
/// first-touch tail table) instead of a `HashMap<node, Vec<positions>>`:
/// an untouched overlay — the common case, one per candidate pair — costs
/// no allocation at all, and a touched one costs three `Vec`s regardless
/// of how many candidates a deep offset-adjustment recursion derives.
#[derive(Debug, Clone, Default)]
pub(crate) struct Overlay {
    /// `(node index, candidate)` in append order. Append order guarantees
    /// a candidate's overlay-local provenance indices refer to entries
    /// earlier in this list (children are derived before the parents that
    /// reference them), which is what lets the commit remap in one pass.
    added: Vec<(usize, Candidate)>,
    /// `prev[i]`: index in `added` of the previous candidate for the same
    /// node (`NO_PREV` for a node's first), forming per-node chains.
    prev: Vec<u32>,
    /// One entry per touched node, in first-touch order:
    /// `(node, last added index, count)`. Expansions touch a handful of
    /// nodes (the provenance chain of one pair), so lookup is a scan.
    tails: Vec<(usize, u32, u32)>,
}

/// Chain terminator in [`Overlay::prev`].
const NO_PREV: u32 = u32::MAX;

impl Overlay {
    /// The `slot`-th candidate appended for `node`.
    fn get(&self, node: usize, slot: usize) -> &Candidate {
        let &(_, last, count) = self
            .tails
            .iter()
            .find(|&&(n, ..)| n == node)
            .expect("overlay read of an untouched node");
        let mut pos = last;
        for _ in 0..(count as usize - 1 - slot) {
            pos = self.prev[pos as usize];
        }
        &self.added[pos as usize].1
    }

    fn push(&mut self, node: usize, cand: Candidate) -> usize {
        let at = self.added.len() as u32;
        let slot = match self.tails.iter_mut().find(|&&mut (n, ..)| n == node) {
            Some((_, last, count)) => {
                self.prev.push(*last);
                *last = at;
                *count += 1;
                *count as usize - 1
            }
            None => {
                self.prev.push(NO_PREV);
                self.tails.push((node, at, 1));
                0
            }
        };
        self.added.push((node, cand));
        slot
    }

    /// The touched node indices (with repeats, in append order).
    pub(crate) fn nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.added.iter().map(|(n, _)| *n)
    }

    /// Consumes the overlay in append order.
    pub(crate) fn into_entries(self) -> impl Iterator<Item = (usize, Candidate)> {
        self.added.into_iter()
    }
}

/// The immutable merge context: everything one pair expansion may read,
/// plus its private [`Overlay`]. See the module docs for the borrow
/// discipline.
pub(crate) struct MergeCtx<'a> {
    pub(crate) nodes: &'a [Node],
    pub(crate) model: &'a DelayModel,
    pub(crate) bounds: &'a [f64],
    pub(crate) cfg: &'a EngineConfig,
    pub(crate) class_parent: &'a [u32],
    pub(crate) phi: &'a [f64],
    overlay: Overlay,
}

impl<'a> MergeCtx<'a> {
    pub(crate) fn new(
        nodes: &'a [Node],
        model: &'a DelayModel,
        bounds: &'a [f64],
        cfg: &'a EngineConfig,
        class_parent: &'a [u32],
        phi: &'a [f64],
    ) -> Self {
        Self {
            nodes,
            model,
            bounds,
            cfg,
            class_parent,
            phi,
            overlay: Overlay::default(),
        }
    }

    /// Candidate `i` of `node`: a committed candidate when `i` is below the
    /// node's pre-merge count, an overlay entry otherwise.
    pub(crate) fn cand(&self, node: NodeId, i: usize) -> &Candidate {
        let base = &self.nodes[node.0].cands;
        if i < base.len() {
            &base[i]
        } else {
            self.overlay.get(node.0, i - base.len())
        }
    }

    /// Parks a derived candidate on `node`, returning the index future
    /// [`MergeCtx::cand`] calls (and provenance) can use for it.
    pub(crate) fn push_overlay(&mut self, node: NodeId, cand: Candidate) -> usize {
        let base = self.nodes[node.0].cands.len();
        base + self.overlay.push(node.0, cand)
    }

    /// Surrenders the overlay for the commit phase.
    pub(crate) fn into_overlay(self) -> Overlay {
        self.overlay
    }
}

/// Union-find root lookup over the class-parent table (path-compression-free:
/// chains are at most a few links long and the table is shared immutably
/// during expansion).
pub(crate) fn class_of_in(class_parent: &[u32], g: GroupId) -> u32 {
    let mut c = g.0;
    while class_parent[c as usize] != c {
        c = class_parent[c as usize];
    }
    c
}

/// The result of expanding one child-candidate pair: the merged candidates
/// (with provenance indices still overlay-local), the skew residual
/// incurred, and the overlay of candidates derived on existing nodes.
pub(crate) struct Expansion {
    pub(crate) cands: Vec<Candidate>,
    pub(crate) residual: f64,
    pub(crate) overlay: Overlay,
}
