//! Forest nodes: stable ids, per-node candidate storage, and the cached
//! hull / max-delay summaries the incremental planner queries every round.

use astdme_geom::Trr;

use crate::Candidate;

/// Identifier of a subtree (node) in a [`MergeForest`](crate::MergeForest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's index in creation order (leaves first).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from an index previously obtained via
    /// [`NodeId::index`]. Using indices from a different forest yields
    /// stale ids, which panic on use.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(i)
    }
}

/// One subtree root: its candidate set plus provenance and cached
/// summaries.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) cands: Vec<Candidate>,
    pub(crate) children: Option<(NodeId, NodeId)>,
    pub(crate) sink: Option<usize>,
    /// Hull of all candidate regions, maintained incrementally: candidates
    /// are only ever *added* to an existing node (offset adjustment), and
    /// hulls are monotone under insertion, so this never needs a rescan.
    pub(crate) hull: Trr,
    /// Largest root-to-sink delay over all candidates, maintained the same
    /// way. Both fields exist so the planner's per-round queries are O(1)
    /// instead of O(candidates).
    pub(crate) max_delay: f64,
}

impl Node {
    pub(crate) fn new(
        cands: Vec<Candidate>,
        children: Option<(NodeId, NodeId)>,
        sink: Option<usize>,
    ) -> Self {
        debug_assert!(!cands.is_empty(), "nodes always carry a candidate");
        let mut hull = cands[0].region;
        for c in &cands[1..] {
            hull = hull.hull(&c.region);
        }
        let max_delay = cands.iter().map(cand_max_delay).fold(0.0, f64::max);
        Self {
            cands,
            children,
            sink,
            hull,
            max_delay,
        }
    }

    /// Registers one more candidate, keeping the cached hull/delay exact.
    pub(crate) fn push_candidate(&mut self, cand: Candidate) {
        self.hull = self.hull.hull(&cand.region);
        self.max_delay = self.max_delay.max(cand_max_delay(&cand));
        self.cands.push(cand);
    }
}

pub(crate) fn cand_max_delay(c: &Candidate) -> f64 {
    c.delays.overall_range().map_or(0.0, |r| r.hi)
}
