//! Top-down embedding: turning a finished merge forest root into a routed
//! tree by walking candidate provenance.

use astdme_geom::Point;

use crate::{CandKind, MergeForest, RoutedNode, RoutedTree};

use super::NodeId;

impl MergeForest {
    /// Top-down embedding: turns the finished subtree `root` into a routed
    /// tree connected to `source`.
    ///
    /// Picks the root candidate minimizing total wirelength including the
    /// source connection, then walks the provenance, placing each child at
    /// the nearest point of its recorded region (snaking detours make up
    /// any electrical/geometric difference).
    ///
    /// # Panics
    ///
    /// Panics if `root` is stale.
    pub fn embed(&self, root: NodeId, source: Point) -> RoutedTree {
        // Choose the root candidate. total_cmp: a poisoned (NaN) cost must
        // lose deterministically to every finite one, not panic here.
        let (best_idx, _) = self.nodes[root.0]
            .cands
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.wirelen + c.region.distance_to_point(source)))
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .expect("nodes always keep at least one candidate");

        let mut nodes: Vec<RoutedNode> = Vec::new();
        // Stack of (forest node, candidate index, parent routed index,
        // electrical wire to parent, parent point).
        let root_cand = &self.nodes[root.0].cands[best_idx];
        let root_pos = root_cand.region.nearest_point(source);
        let mut stack = vec![(
            root,
            best_idx,
            None::<usize>,
            source.dist(root_pos),
            root_pos,
        )];
        while let Some((nid, cidx, parent, wire, pos)) = stack.pop() {
            let me = nodes.len();
            let cand = &self.nodes[nid.0].cands[cidx];
            nodes.push(RoutedNode {
                pos,
                parent,
                wire,
                sink: self.nodes[nid.0].sink,
            });
            if let CandKind::Merge {
                cand_a,
                cand_b,
                ea,
                eb,
            } = cand.kind
            {
                let (a, b) = self.nodes[nid.0]
                    .children
                    .expect("merge candidates only on merge nodes");
                let pa = self.nodes[a.0].cands[cand_a].region.nearest_point(pos);
                let pb = self.nodes[b.0].cands[cand_b].region.nearest_point(pos);
                debug_assert!(
                    pos.dist(pa) <= ea + 1e-6 * (1.0 + ea),
                    "child a unreachable: {} > {}",
                    pos.dist(pa),
                    ea
                );
                debug_assert!(
                    pos.dist(pb) <= eb + 1e-6 * (1.0 + eb),
                    "child b unreachable: {} > {}",
                    pos.dist(pb),
                    eb
                );
                stack.push((a, cand_a, Some(me), ea, pa));
                stack.push((b, cand_b, Some(me), eb, pb));
            }
        }
        RoutedTree::new(source, nodes)
    }
}
