//! The merge forest: bottom-up subtree merging with group-aware skew
//! feasibility, snaking, and offset adjustment.
//!
//! This implements the body of the AST-DME algorithm (Kim 2006, Fig. 6).
//! The four cases distinguished there fall out of the shared-group
//! structure of the two children's [`DelayMap`]s:
//!
//! | paper case | shared groups | behaviour here |
//! |---|---|---|
//! | same group (step 4) | all, windows overlap | classic DME/BST split |
//! | different groups (step 5) | none | SDR: every split `[0, D]` feasible |
//! | share one group (step 6) | some, windows overlap | constrained window |
//! | share several groups (step 7) | some, windows conflict | offset adjustment (wire sneaking, Eqs. 5.1–5.3) |
//!
//! plus wire snaking whenever the feasible δ-window is out of reach at the
//! geometric distance (the classic detour case of exact zero-skew routing).
//!
//! # Module map
//!
//! | module | contents |
//! |---|---|
//! | [`mod@self`] | [`MergeForest`]: construction, accessors, the `merge` orchestration (rank → expand → commit → prune/fuse) |
//! | `node` | [`NodeId`], the per-node candidate storage and cached hull / max-delay summaries |
//! | `context` | `MergeCtx` (the immutable expansion view), the candidate `Overlay`, per-worker `Scratch` buffers |
//! | `expand` | the expansion fan-out (parallel under the `parallel` feature), the deterministic overlay-replay commit, candidate pruning |
//! | `pairing` | shared-constraint assembly, pair-cost estimation, cheapest-first candidate-pair ranking |
//! | `cases` | the Fig. 6 case analysis: feasible splits, snaking, best-effort fallback |
//! | `offset` | class fusing (steps 6–7) and recursive offset adjustment / wire sneaking |
//! | `embed` | top-down embedding of a finished root into a [`RoutedTree`] |
//!
//! # Borrow discipline (and why expansion parallelizes)
//!
//! [`MergeForest::merge`] never hands `&mut self` to the case analysis.
//! Instead it builds a `MergeCtx` — shared borrows of the node table,
//! delay model, config and class state — and expands each ranked
//! candidate pair against it. Anything an expansion *derives* (offset
//! adjustment re-deriving child candidates) goes into the context's
//! private overlay. Expansions only ever read state that predates the
//! merge call, so they are independent; under the `parallel` feature they
//! fan out through [`astdme_par::par_map`] and the commit phase replays
//! the overlays in ranked-pair order, reproducing the serial result
//! bit-for-bit. See `context` for details.

use astdme_delay::DelayModel;
use astdme_geom::{Point, Trr};

use crate::{CandKind, Candidate, DelayMap, EngineConfig, GroupId, Instance};

mod cases;
mod context;
mod embed;
mod expand;
mod node;
mod offset;
mod pairing;
mod record;

#[cfg(test)]
mod tests;

pub use node::NodeId;
pub use record::{MergeLog, MergeRecording, NO_NODE};

use context::{class_of_in, MergeCtx, Scratch};
use node::Node;

/// Bottom-up merge state for one routing run.
///
/// Leaves are created first (one per sink); [`MergeForest::merge`] combines
/// two subtrees into a new one, enforcing every shared group's skew bound;
/// [`MergeForest::embed`] turns the finished root into a
/// [`RoutedTree`](crate::RoutedTree).
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct MergeForest {
    nodes: Vec<Node>,
    model: DelayModel,
    bounds: Vec<f64>,
    cfg: EngineConfig,
    leaves: usize,
    residual: f64,
    // Global group fusion (cfg.fuse_groups): union-find over groups plus
    // the prescribed offset of each original group relative to its class
    // reference (adjusted delay = real delay - phi).
    class_parent: Vec<u32>,
    phi: Vec<f64>,
    scratch: Scratch,
}

impl MergeForest {
    /// Creates an empty forest for a given delay model and per-group skew
    /// bounds (seconds, indexed by group).
    pub fn new(model: DelayModel, bounds: Vec<f64>, cfg: EngineConfig) -> Self {
        let k = bounds.len();
        Self {
            nodes: Vec::new(),
            model,
            bounds,
            cfg,
            leaves: 0,
            residual: 0.0,
            class_parent: (0..k as u32).collect(),
            phi: vec![0.0; k],
            scratch: Scratch::default(),
        }
    }

    /// Creates a forest for `inst` using its RC technology under the Elmore
    /// model, with one leaf per sink.
    pub fn for_instance(inst: &Instance, cfg: EngineConfig) -> Self {
        Self::for_instance_with_model(inst, DelayModel::elmore(*inst.rc()), cfg)
    }

    /// Like [`MergeForest::for_instance`] but with an explicit delay model
    /// (e.g. [`DelayModel::Pathlength`] for the ablation of Ch. III).
    pub fn for_instance_with_model(inst: &Instance, model: DelayModel, cfg: EngineConfig) -> Self {
        let mut f = Self::new(model, inst.groups().bounds().to_vec(), cfg);
        for (i, s) in inst.sinks().iter().enumerate() {
            f.add_leaf(i, s.pos, s.cap, inst.group_of(i));
        }
        f
    }

    /// The expansion view of the current forest state: shared borrows of
    /// everything the case analysis reads, plus a fresh overlay. See the
    /// module docs for the borrow discipline.
    pub(crate) fn ctx(&self) -> MergeCtx<'_> {
        MergeCtx::new(
            &self.nodes,
            &self.model,
            &self.bounds,
            &self.cfg,
            &self.class_parent,
            &self.phi,
        )
    }

    /// Adds a leaf subtree for sink `sink_idx` and returns its node.
    pub fn add_leaf(&mut self, sink_idx: usize, pos: Point, cap: f64, group: GroupId) -> NodeId {
        debug_assert!(
            group.index() < self.bounds.len(),
            "group {group} has no declared bound"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::new(
            vec![Candidate {
                region: Trr::from_point(pos),
                delays: DelayMap::leaf(group),
                cap,
                wirelen: 0.0,
                kind: CandKind::Leaf(sink_idx),
            }],
            None,
            Some(sink_idx),
        ));
        self.leaves += 1;
        id
    }

    /// Node ids of all leaves, in insertion order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.sink.is_some())
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// The candidates of a node.
    pub fn candidates(&self, id: NodeId) -> &[Candidate] {
        &self.nodes[id.0].cands
    }

    /// The children of a node, if it is a merge.
    pub fn children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[id.0].children
    }

    /// A representative region for neighbor queries: the hull of the node's
    /// candidate regions (TRRs are closed under hull). O(1): the hull is
    /// maintained as candidates are created, never recomputed — the
    /// incremental planner queries this every round.
    pub fn representative_region(&self, id: NodeId) -> Trr {
        self.nodes[id.0].hull
    }

    /// Minimum distance between the best candidates of two nodes — the
    /// merging cost used for nearest-neighbor selection.
    pub fn merge_distance(&self, a: NodeId, b: NodeId) -> f64 {
        let mut best = f64::INFINITY;
        for ca in &self.nodes[a.0].cands {
            for cb in &self.nodes[b.0].cands {
                best = best.min(ca.region.distance(&cb.region));
            }
        }
        best
    }

    /// Minimum estimated merge cost over all candidate pairs (see
    /// [`MergeForest::merge_distance`] for the purely geometric variant).
    pub fn merge_cost(&self, a: NodeId, b: NodeId) -> f64 {
        let ctx = self.ctx();
        let mut scratch = Scratch::default();
        let mut best = f64::INFINITY;
        for ia in 0..self.nodes[a.0].cands.len() {
            for ib in 0..self.nodes[b.0].cands.len() {
                best = best.min(ctx.pair_cost_estimate(a, b, ia, ib, &mut scratch));
            }
        }
        best
    }

    /// The largest root-to-sink delay among a node's candidates (used by
    /// the delay-target merging-order enhancement, Ch. V.F). O(1): cached
    /// at candidate creation like [`MergeForest::representative_region`].
    pub fn max_delay(&self, id: NodeId) -> f64 {
        self.nodes[id.0].max_delay
    }

    /// Worst skew-bound violation accepted so far (seconds); zero on any
    /// instance the engine solved exactly. Non-zero values indicate an
    /// irreconcilable offset conflict that even wire sneaking could not
    /// repair (see module docs) and are surfaced by the audit as well.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Number of nodes (leaves + merges) created so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The effective (fused) class of a group.
    pub fn class_of(&self, g: GroupId) -> u32 {
        class_of_in(&self.class_parent, g)
    }

    /// The prescribed offset of a group relative to its class reference.
    pub fn class_offset(&self, g: GroupId) -> f64 {
        self.phi[g.index()]
    }

    /// Merges subtrees `a` and `b` into a new subtree, satisfying every
    /// shared group's skew bound, snaking or adjusting offsets as needed.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either id is stale.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.merge_impl(a, b, None)
    }

    /// The merge body, optionally recording a [`MergeLog`] into `rec` (see
    /// [`MergeForest::merge_recorded`]). The recorded and unrecorded paths
    /// run the same operations in the same order, so recording never
    /// changes a routed bit.
    fn merge_impl(&mut self, a: NodeId, b: NodeId, mut rec: Option<&mut MergeRecording>) -> NodeId {
        assert!(a != b, "cannot merge a node with itself");
        // Rank child-candidate pairs by estimated merge cost (distance plus
        // forced snaking / conflict-resolution cost); expand the best few.
        // NaN costs sort last (total_cmp); as long as any finite-cost pair
        // exists, NaN pairs are dropped here so poisoned estimates never
        // reach expansion (where their NaN wirelengths would panic the
        // pruning sort). An all-NaN ranking keeps the first pair and lets
        // the audit flag the poisoned result downstream.
        let mut pairs = self.rank_candidate_pairs(a, b);
        if !pairs[0].0.is_nan() {
            pairs.truncate(
                pairs
                    .iter()
                    .position(|p| p.0.is_nan())
                    .unwrap_or(pairs.len()),
            );
        } else {
            pairs.truncate(1);
        }
        pairs.truncate(self.cfg.pair_limit);

        let expansions = self.expand_pairs(a, b, &pairs);
        let (mut cands, worst_residual, appends) =
            self.commit_expansions(a, b, expansions, rec.is_some());
        if self.cfg.debug {
            if let Some(c) = cands.first() {
                let d = self.nodes[a.0].cands[0]
                    .region
                    .distance(&self.nodes[b.0].cands[0].region);
                if c.merge_wire() > 20.0 * (d + 100.0) {
                    eprintln!(
                        "[bigmerge] {}x{}: wire {:.0} vs dist {:.0}",
                        a.0,
                        b.0,
                        c.merge_wire(),
                        d
                    );
                }
            }
        }
        if cands.is_empty() {
            // All pairs failed even best-effort: should be unreachable, but
            // degrade gracefully with the closest pair at face value.
            let (_, ia, ib) = pairs[0];
            let d = self.nodes[a.0].cands[ia]
                .region
                .distance(&self.nodes[b.0].cands[ib].region);
            let half = 0.5 * d;
            let fallback = self.ctx().build_candidate(a, b, ia, ib, half, d - half);
            cands.push(fallback);
        }
        Self::prune(&mut cands, self.cfg.max_candidates);
        self.residual = self.residual.max(worst_residual);
        let epoch_before = rec.as_ref().map_or(0, |r| r.epoch());
        if self.cfg.fuse_groups {
            self.fuse_classes(&mut cands);
        }
        let epoch_after = match rec.as_mut() {
            Some(r) if self.cfg.fuse_groups => r.note_class_state(&self.class_parent, &self.phi),
            _ => epoch_before,
        };
        let id = NodeId(self.nodes.len());
        let creation_len = cands.len();
        self.nodes.push(Node::new(cands, Some((a, b)), None));
        if let Some(r) = rec {
            r.logs.push(MergeLog {
                a: a.0 as u32,
                b: b.0 as u32,
                result: id.0 as u32,
                creation_len: creation_len as u32,
                appends,
                residual: worst_residual,
                epoch_before: epoch_before as u32,
                epoch_after: epoch_after as u32,
            });
        }
        id
    }
}
