//! The four merge cases of the paper's Fig. 6, as pure expansions over a
//! [`MergeCtx`]: feasible-split merging (cases 1–3), snaking when the
//! δ-window is out of geometric reach, offset adjustment on conflicting
//! windows (case 4, delegated to [`super::offset`]), and the best-effort
//! fallback that records a skew residual.

use astdme_delay::{feasible_splits, min_total_for_feasibility, SharedConstraint};
use astdme_geom::{merge_locus, Interval};

use crate::{CandKind, Candidate};

use super::context::{MergeCtx, Scratch};
use super::NodeId;

impl MergeCtx<'_> {
    /// Expands one child-candidate pair into merged candidates. Returns the
    /// candidates plus the skew residual incurred (0 when solved exactly).
    ///
    /// Mutation is confined to the context's overlay (candidates the
    /// offset-adjustment machinery derives on existing nodes), which is
    /// what lets `merge` fan expansions out across threads. `scratch` is
    /// the caller's buffer set (one per worker): every constraint assembly
    /// on this path reuses it, so an expansion allocates nothing beyond
    /// the candidates it produces.
    pub(crate) fn expand_pair(
        &mut self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        scratch: &mut Scratch,
    ) -> (Vec<Candidate>, f64) {
        self.shared_constraints_in(a, b, ia, ib, scratch);
        // Cases 1-3 (plus snaking) at the pair as given.
        if let Some(cands) = self.try_expand_at(a, b, ia, ib, &scratch.cons, &mut scratch.samples) {
            return (cands, 0.0);
        }
        // Case 4: conflicting δ-windows — only re-balancing inside a child
        // can align the groups (the paper's wire sneaking, Fig. 5).
        let debug = self.cfg.debug;
        if debug {
            eprintln!(
                "[conflict] merge {}x{} cands {ia},{ib}: {} shared groups",
                a.0,
                b.0,
                scratch.cons.len()
            );
            for c in &scratch.cons {
                eprintln!(
                    "  cons: a=[{:.6e},{:.6e}] b=[{:.6e},{:.6e}] bound={:.1e} spread_a={:.2e} spread_b={:.2e}",
                    c.lo_a, c.hi_a, c.lo_b, c.hi_b, c.bound,
                    c.hi_a - c.lo_a, c.hi_b - c.lo_b
                );
            }
        }
        if let Some((ia2, ib2)) = self.adjust_offsets(a, b, ia, ib, scratch) {
            self.shared_constraints_in(a, b, ia2, ib2, scratch);
            if let Some(cands) =
                self.try_expand_at(a, b, ia2, ib2, &scratch.cons, &mut scratch.samples)
            {
                return (cands, 0.0);
            }
        }
        // Best effort: minimize the worst window violation.
        if debug {
            eprintln!("[conflict] -> best_effort");
        }
        // Re-derive the original pair's constraints (the adjustment path
        // reused the buffers); assembly is deterministic, so this is the
        // same constraint set the first attempt saw.
        self.shared_constraints_in(a, b, ia, ib, scratch);
        self.best_effort(a, b, ia, ib, &scratch.cons)
    }

    /// Cases 1-3 plus snaking for one concrete pair: sample the feasible
    /// splits at the geometric distance, else at the minimum total wire
    /// that restores feasibility (the snaking detour). `None` means the
    /// δ-windows conflict outright and case 4 must take over.
    fn try_expand_at(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        cons: &[SharedConstraint],
        samples: &mut Vec<f64>,
    ) -> Option<Vec<Candidate>> {
        let (ca, cb) = (self.cand(a, ia), self.cand(b, ib));
        let d = ca.region.distance(&cb.region);
        let (cap_a, cap_b) = (ca.cap, cb.cap);
        let set = feasible_splits(self.model, cap_a, cap_b, d, cons, self.cfg.skew_tol);
        if !set.is_empty() {
            return Some(self.sample_candidates(a, b, ia, ib, d, &set, samples));
        }
        let t = min_total_for_feasibility(self.model, cap_a, cap_b, d, cons, self.cfg.skew_tol)?;
        let t = t + (t * 1e-12).max(1e-9);
        let set = feasible_splits(self.model, cap_a, cap_b, t, cons, self.cfg.skew_tol);
        (!set.is_empty()).then(|| self.sample_candidates(a, b, ia, ib, t, &set, samples))
    }

    /// Builds candidates for sampled splits of a feasible set. `samples`
    /// is a reused staging buffer (cleared here).
    #[allow(clippy::too_many_arguments)] // mirrors build_candidate's pair/split args plus the buffer
    pub(crate) fn sample_candidates(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        total: f64,
        set: &astdme_delay::IntervalSet,
        samples: &mut Vec<f64>,
    ) -> Vec<Candidate> {
        set.sample_into(self.cfg.split_samples, samples);
        samples
            .iter()
            .map(|&ea| {
                let ea = ea.clamp(0.0, total);
                self.build_candidate(a, b, ia, ib, ea, total - ea)
            })
            .collect()
    }

    /// Constructs the merged candidate for an explicit wire split.
    pub(crate) fn build_candidate(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        ea: f64,
        eb: f64,
    ) -> Candidate {
        let (ca, cb) = (self.cand(a, ia), self.cand(b, ib));
        let da = self.model.wire_delay(ea, ca.cap);
        let db = self.model.wire_delay(eb, cb.cap);
        let region = merge_locus(&ca.region, &cb.region, ea, eb)
            .expect("split must cover the geometric distance");
        Candidate {
            region,
            delays: ca.delays.shifted(da).merge(&cb.delays.shifted(db)),
            cap: ca.cap + cb.cap + self.model.wire_cap(ea + eb),
            wirelen: ca.wirelen + cb.wirelen + ea + eb,
            kind: CandKind::Merge {
                cand_a: ia,
                cand_b: ib,
                ea,
                eb,
            },
        }
    }

    /// Fallback when offsets cannot be aligned: merge at the δ minimizing
    /// the worst window violation and record the residual.
    pub(crate) fn best_effort(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        cons: &[SharedConstraint],
    ) -> (Vec<Candidate>, f64) {
        let (ca, cb) = (self.cand(a, ia), self.cand(b, ib));
        let d = ca.region.distance(&cb.region);
        // Minimax point over the windows: midpoint of [max lo, min hi].
        let mut lo_max = f64::NEG_INFINITY;
        let mut hi_min = f64::INFINITY;
        for c in cons {
            // Use the raw ends even if the window itself is inverted/empty.
            lo_max = lo_max.max(c.hi_b - c.lo_a - c.bound);
            hi_min = hi_min.min(c.bound + c.lo_b - c.hi_a);
        }
        let (delta_hat, residual) = if lo_max.is_finite() && hi_min.is_finite() {
            (0.5 * (lo_max + hi_min), (0.5 * (lo_max - hi_min)).max(0.0))
        } else {
            (0.0, 0.0)
        };
        // Realize δ̂ with minimal wire: extend one side if out of range.
        let (cap_a, cap_b) = (ca.cap, cb.cap);
        let mut total = d;
        let delta_max = self.model.wire_delay(d, cap_a);
        let delta_min = -self.model.wire_delay(d, cap_b);
        if delta_hat > delta_max {
            total = self
                .model
                .extension_for_delay(delta_hat.max(0.0), cap_a)
                .max(d);
        } else if delta_hat < delta_min {
            total = self
                .model
                .extension_for_delay((-delta_hat).max(0.0), cap_b)
                .max(d);
        }
        let diff = self
            .model
            .delay_quad(cap_a)
            .sub(&self.model.delay_quad(cap_b).reflect(total))
            .add_const(-delta_hat);
        let ea = diff
            .monotone_root(Interval::new(0.0, total))
            .unwrap_or(0.5 * total)
            .clamp(0.0, total);
        (
            vec![self.build_candidate(a, b, ia, ib, ea, total - ea)],
            residual,
        )
    }
}
