//! Offset machinery for difficult instances: class fusing (Fig. 6 steps
//! 6–7) and the generalization of the paper's wire sneaking (Ch. V.E
//! instance 2) that re-derives a child subtree so conflicting δ-windows
//! align. Derived candidates are parked in the context's overlay, never
//! written to the forest directly.

use astdme_delay::{intersect_delta_windows, min_total_for_feasibility, SharedConstraint};
use astdme_geom::Interval;

use crate::{CandKind, Candidate, DelayMap, GroupId, MergeForest};

use super::context::{MergeCtx, Scratch};
use super::pairing::effective_entries_into;
use super::NodeId;

impl MergeCtx<'_> {
    /// Attempts to re-balance one child's last merge so that the conflicting
    /// δ-windows of this merge align (Kim 2006, Ch. V.E instance 2).
    ///
    /// Returns candidate indices to use instead, or `None` if neither side
    /// can be adjusted.
    pub(crate) fn adjust_offsets(
        &mut self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        scratch: &mut Scratch,
    ) -> Option<(usize, usize)> {
        // Prefer adjusting the subtree with smaller load (cheaper snake).
        let order = if self.cand(a, ia).cap <= self.cand(b, ib).cap {
            [(a, ia, b, ib, true), (b, ib, a, ia, false)]
        } else {
            [(b, ib, a, ia, false), (a, ia, b, ib, true)]
        };
        for (child, ic, other, io, child_is_a) in order {
            if let Some(new_ic) = self.adjust_child(child, ic, other, io, child_is_a, scratch) {
                return Some(if child_is_a {
                    (new_ic, ib)
                } else {
                    (ia, new_ic)
                });
            }
        }
        None
    }

    /// Re-derives `child` (recursively where needed) so that its group
    /// delays align with `other`'s δ-windows: the generalization of the
    /// paper's wire sneaking (Ch. V.E instance 2) to arbitrarily deep
    /// offset conflicts.
    ///
    /// `child_is_a` says which role `child` plays in the parent merge (the
    /// δ-window formulas are asymmetric).
    fn adjust_child(
        &mut self,
        child: NodeId,
        ic: usize,
        other: NodeId,
        io: usize,
        child_is_a: bool,
        scratch: &mut Scratch,
    ) -> Option<usize> {
        let cc = self.cand(child, ic).clone();
        let oc = self.cand(other, io).clone();
        // δ-windows in the *child-first* orientation (child plays role
        // "a") regardless of its actual role: intersection emptiness is
        // orientation invariant, and in this orientation shifting the
        // group's delays inside `child` by +σ always translates the window
        // by -σ. The final validation below re-checks in true orientation.
        let mut windows: Vec<(GroupId, Interval)> = Vec::new();
        for (g, rc_g, ro_g) in cc.delays.shared_ranges(&oc.delays) {
            let w = SharedConstraint {
                lo_a: rc_g.lo,
                hi_a: rc_g.hi,
                lo_b: ro_g.lo,
                hi_b: ro_g.hi,
                bound: self.bounds[g.index()],
            }
            .delta_window_with_tol(self.cfg.skew_tol)?;
            windows.push((g, w));
        }
        if windows.len() < 2 {
            // A single group's window is never self-conflicting.
            return None;
        }
        // Candidate anchors δ̂: aligning on each group's own window (that
        // group shifts nothing, the others move to it) plus the median of
        // window midpoints. The cheapest *realized* adjustment wins —
        // which shifts are free depends on slack deep inside the child, so
        // we measure rather than predict.
        // total_cmp: an unbounded group's window is (-inf, +inf), whose
        // midpoint is NaN — it must sort deterministically (its anchor
        // no-ops below: every per-group shift against a NaN δ̂ comes out
        // 0), not panic.
        let mut mids: Vec<f64> = windows.iter().map(|(_, w)| w.mid()).collect();
        mids.sort_by(|x, y| x.total_cmp(y));
        let mut anchors: Vec<f64> = mids.clone();
        anchors.push(mids[mids.len() / 2]);
        anchors.dedup_by(|x, y| (*x - *y).abs() <= 1e-12 * (y.abs() + 1e-30));

        let mut best: Option<(f64, usize)> = None;
        for delta_hat in anchors {
            // Per-group shift: the nearest point of (W_g - δ̂) to zero.
            let targets: Vec<(GroupId, f64)> = windows
                .iter()
                .filter_map(|(g, w)| {
                    let (lo, hi) = (w.lo() - delta_hat, w.hi() - delta_hat);
                    // Nearest point of (W_g - δ̂) to zero; a window that
                    // already covers δ̂ needs no shift. Branching directly
                    // keeps the selection free of raw float equality
                    // (astdme_lint's float-eq rule) without changing a bit:
                    // the old form computed s = 0.0 for the covering case
                    // and filtered it with `s != 0.0`.
                    if lo > 0.0 {
                        Some((*g, lo))
                    } else if hi < 0.0 {
                        Some((*g, hi))
                    } else {
                        None
                    }
                })
                .collect();
            if targets.is_empty() {
                continue; // windows already intersect; nothing to adjust
            }
            let Some(idx) = self.shift_candidate(child, ic, &targets) else {
                continue;
            };
            // Validate in true orientation (with rounding slack) and cost
            // the result: the new candidate's wire plus the snake the
            // parent merge would still need.
            if child_is_a {
                self.shared_constraints_in(child, other, idx, io, scratch);
            } else {
                self.shared_constraints_in(other, child, io, idx, scratch);
            }
            let cons = &scratch.cons;
            if intersect_delta_windows(cons, self.cfg.skew_tol).is_none() {
                // Leave the unused candidate in the overlay (indices must
                // stay stable once created); it is committed with the rest
                // but simply never gets referenced.
                continue;
            }
            let new_c = self.cand(child, idx);
            let d = new_c.region.distance(&oc.region);
            let (cap_c, cap_o) = (new_c.cap, oc.cap);
            let new_wirelen = new_c.wirelen;
            let parent_total = if child_is_a {
                min_total_for_feasibility(self.model, cap_c, cap_o, d, cons, self.cfg.skew_tol)
            } else {
                min_total_for_feasibility(self.model, cap_o, cap_c, d, cons, self.cfg.skew_tol)
            }
            .unwrap_or(d);
            let cost = new_wirelen + parent_total;
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, idx));
            }
        }
        best.map(|(_, idx)| idx)
    }

    /// Builds a new candidate of `node` in which each listed group's delay
    /// range is shifted by the given amount *relative to* the node's other
    /// groups (an arbitrary common absolute shift on top is permitted —
    /// the parent merge absorbs it in its own wire balance).
    ///
    /// Recursion: at each merge, the shift decomposes into a common part
    /// per child (absorbed by that child's merge wire, snaking if needed)
    /// plus residual relative shifts inside each child. Groups present
    /// under both children receive consistent shifts on both sides, so
    /// their alignment (and any bounded spread) is preserved exactly.
    ///
    /// Returns the index of the new candidate on `node` (an overlay index
    /// past the node's committed count), or `None` when a shift is
    /// infeasible (e.g. it would require negative wire).
    fn shift_candidate(
        &mut self,
        node: NodeId,
        ic: usize,
        targets: &[(GroupId, f64)],
    ) -> Option<usize> {
        let cand = self.cand(node, ic).clone();
        let shift_of = |g: GroupId| -> f64 {
            targets
                .iter()
                .find(|(tg, _)| *tg == g)
                .map(|(_, s)| *s)
                .unwrap_or(0.0)
        };
        // Relative no-op (all groups shifted equally)?
        let shifts: Vec<f64> = cand.delays.groups().map(shift_of).collect();
        let s_min = shifts.iter().cloned().fold(f64::INFINITY, f64::min);
        let s_max = shifts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let scale = s_min.abs().max(s_max.abs());
        if s_max - s_min <= 1e-12 * scale + 1e-30 {
            return Some(ic);
        }
        let (l, r) = self.nodes[node.0].children?;
        let CandKind::Merge {
            cand_a: il,
            cand_b: ir,
            ea: el_star,
            eb: er_star,
        } = cand.kind
        else {
            return None; // leaf with >1 distinct shifts: impossible
        };
        let (lc, rc) = (self.cand(l, il).clone(), self.cand(r, ir).clone());

        // Decompose per child: common part on the edge, residual recursed.
        let split_side = |delays: &DelayMap| -> (f64, Vec<(GroupId, f64)>) {
            let common = delays.groups().map(shift_of).fold(f64::INFINITY, f64::min);
            let residual: Vec<(GroupId, f64)> = delays
                .groups()
                .filter_map(|g| {
                    let s = shift_of(g) - common;
                    (s.abs() > 1e-12 * scale + 1e-30).then_some((g, s))
                })
                .collect();
            (common, residual)
        };
        let (common_l, res_l) = split_side(&lc.delays);
        let (common_r, res_r) = split_side(&rc.delays);

        let il2 = self.shift_candidate(l, il, &res_l)?;
        let ir2 = self.shift_candidate(r, ir, &res_r)?;
        let (lc2, rc2) = (self.cand(l, il2).clone(), self.cand(r, ir2).clone());
        // Recursions may have drifted by a common amount of their own;
        // re-anchor each edge's common shift against the realized delays.
        // The drift of a child is measured on any one of its groups, net of
        // that group's own requested residual shift.
        let drift = |old: &Candidate, new: &Candidate, res: &[(GroupId, f64)]| -> f64 {
            let g = old.delays.groups().next().expect("non-empty delay map");
            let req = res
                .iter()
                .find(|(tg, _)| *tg == g)
                .map(|(_, s)| *s)
                .unwrap_or(0.0);
            let (o, n) = (
                old.delays.range(g).expect("anchor group"),
                new.delays.range(g).expect("anchor group survives shifting"),
            );
            (n.lo - o.lo) - req
        };
        let dl_star = self.model.wire_delay(el_star, lc.cap);
        let dr_star = self.model.wire_delay(er_star, rc.cap);
        // Desired edge delays before the free common shift x:
        let dl_base = dl_star + common_l - drift(&lc, &lc2, &res_l);
        let dr_base = dr_star + common_r - drift(&rc, &rc2, &res_r);
        // Choose the common shift x minimizing total wire subject to
        // non-negative delays and geometric reachability.
        let d_lr = lc2.region.distance(&rc2.region);
        let (el2, er2) = self.solve_common_shift(dl_base, dr_base, lc2.cap, rc2.cap, d_lr)?;

        let new_cand = self.build_candidate(l, r, il2, ir2, el2, er2);
        Some(self.push_overlay(node, new_cand))
    }

    /// Finds wire lengths realizing edge delays `dl_base + x` and
    /// `dr_base + x` for the common shift `x` that minimizes total wire,
    /// subject to non-negative delays and `el + er >= dist`.
    fn solve_common_shift(
        &self,
        dl_base: f64,
        dr_base: f64,
        cap_l: f64,
        cap_r: f64,
        dist: f64,
    ) -> Option<(f64, f64)> {
        let len_for = |d: f64, cap: f64| -> f64 { self.model.extension_for_delay(d.max(0.0), cap) };
        let total = |x: f64| -> f64 { len_for(dl_base + x, cap_l) + len_for(dr_base + x, cap_r) };
        // Smallest admissible x keeps both delays non-negative.
        let x_min = (-dl_base).max(-dr_base);
        if total(x_min) >= dist {
            return Some((
                len_for(dl_base + x_min, cap_l),
                len_for(dr_base + x_min, cap_r),
            ));
        }
        // Grow x until the children become reachable, then bisect to the
        // minimum-wire point total(x) == dist.
        let scale = (dl_base.abs() + dr_base.abs()).max(1e-15);
        let mut hi = x_min.max(0.0) + scale;
        let mut guard = 0;
        while total(hi) < dist {
            hi = x_min.max(0.0) + (hi - x_min.max(0.0)) * 2.0 + scale;
            guard += 1;
            if guard > 200 {
                return None;
            }
        }
        let mut lo = x_min;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if total(mid) >= dist {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some((len_for(dl_base + hi, cap_l), len_for(dr_base + hi, cap_r)))
    }
}

impl MergeForest {
    /// Fuses the effective classes co-resident in a freshly merged node
    /// (Fig. 6 steps 6-7): the best candidate's realized inter-class offset
    /// becomes the prescribed offset; candidates realizing a different
    /// offset are dropped (they would violate the prescription downstream).
    ///
    /// Runs in the commit phase, after expansion: this is the one place
    /// the merge path mutates class state, so it stays on `&mut self`.
    pub(super) fn fuse_classes(&mut self, cands: &mut Vec<Candidate>) {
        let classes = self.effective_entries(&cands[0].delays);
        debug_assert!(
            classes.len() <= 2,
            "children each carry one class, so a merge sees at most two"
        );
        if classes.len() != 2 {
            return;
        }
        let (keep, absorb) = (classes[0].0, classes[1].0);
        let delta = classes[1].1 - classes[0].1;
        // Retain offset-consistent candidates (the best always is).
        let keep_tol = self.cfg.skew_tol.max(1e-12 * delta.abs());
        cands.retain(|c| {
            let e = self.effective_entries(&c.delays);
            e.len() == 2 && (e[1].1 - e[0].1 - delta).abs() <= keep_tol
        });
        debug_assert!(!cands.is_empty(), "best candidate is always consistent");
        // Prescribe: adjusted delays of the absorbed class align with the
        // kept class from now on, everywhere.
        for g in 0..self.phi.len() {
            if self.class_of(GroupId(g as u32)) == absorb {
                self.phi[g] += delta;
            }
        }
        self.class_parent[absorb as usize] = keep;
    }

    /// Per-class adjusted delay hulls of a delay map:
    /// `(class, adj_lo, adj_hi, min member bound)`, ascending by class.
    fn effective_entries(&self, delays: &DelayMap) -> Vec<(u32, f64, f64, f64)> {
        let mut out = Vec::with_capacity(delays.group_count());
        effective_entries_into(
            &self.class_parent,
            &self.phi,
            &self.bounds,
            delays,
            &mut out,
        );
        out
    }
}
