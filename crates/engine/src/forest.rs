//! The merge forest: bottom-up subtree merging with group-aware skew
//! feasibility, snaking, and offset adjustment.
//!
//! This implements the body of the AST-DME algorithm (Kim 2006, Fig. 6).
//! The four cases distinguished there fall out of the shared-group
//! structure of the two children's [`DelayMap`]s:
//!
//! | paper case | shared groups | behaviour here |
//! |---|---|---|
//! | same group (step 4) | all, windows overlap | classic DME/BST split |
//! | different groups (step 5) | none | SDR: every split `[0, D]` feasible |
//! | share one group (step 6) | some, windows overlap | constrained window |
//! | share several groups (step 7) | some, windows conflict | offset adjustment (wire sneaking, Eqs. 5.1–5.3) |
//!
//! plus wire snaking whenever the feasible δ-window is out of reach at the
//! geometric distance (the classic detour case of exact zero-skew routing).

use astdme_delay::{
    feasible_splits, intersect_delta_windows, min_total_for_feasibility, DelayModel,
    SharedConstraint,
};
use astdme_geom::{merge_locus, Interval, Point, Trr};

use crate::{
    CandKind, Candidate, DelayMap, EngineConfig, GroupId, Instance, RoutedNode, RoutedTree,
};

/// Identifier of a subtree (node) in a [`MergeForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The node's index in creation order (leaves first).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from an index previously obtained via
    /// [`NodeId::index`]. Using indices from a different forest yields
    /// stale ids, which panic on use.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(i)
    }
}

#[derive(Debug, Clone)]
struct Node {
    cands: Vec<Candidate>,
    children: Option<(NodeId, NodeId)>,
    sink: Option<usize>,
    /// Hull of all candidate regions, maintained incrementally: candidates
    /// are only ever *added* to an existing node (offset adjustment), and
    /// hulls are monotone under insertion, so this never needs a rescan.
    hull: Trr,
    /// Largest root-to-sink delay over all candidates, maintained the same
    /// way. Both fields exist so the planner's per-round queries are O(1)
    /// instead of O(candidates).
    max_delay: f64,
}

impl Node {
    fn new(cands: Vec<Candidate>, children: Option<(NodeId, NodeId)>, sink: Option<usize>) -> Self {
        debug_assert!(!cands.is_empty(), "nodes always carry a candidate");
        let mut hull = cands[0].region;
        for c in &cands[1..] {
            hull = hull.hull(&c.region);
        }
        let max_delay = cands.iter().map(cand_max_delay).fold(0.0, f64::max);
        Self {
            cands,
            children,
            sink,
            hull,
            max_delay,
        }
    }

    /// Registers one more candidate, keeping the cached hull/delay exact.
    fn push_candidate(&mut self, cand: Candidate) {
        self.hull = self.hull.hull(&cand.region);
        self.max_delay = self.max_delay.max(cand_max_delay(&cand));
        self.cands.push(cand);
    }
}

fn cand_max_delay(c: &Candidate) -> f64 {
    c.delays.overall_range().map_or(0.0, |r| r.hi)
}

/// Reusable buffers for the hot constraint-assembly path
/// ([`MergeForest::pair_cost_estimate_in`]): per-call `Vec` allocations in
/// the inner loop of `merge` showed up as a constant-factor tax, so the
/// forest carries one scratch set and the parallel path creates one per
/// worker.
#[derive(Debug, Clone, Default)]
struct Scratch {
    ea: Vec<(u32, f64, f64, f64)>,
    eb: Vec<(u32, f64, f64, f64)>,
    cons: Vec<SharedConstraint>,
}

/// Bottom-up merge state for one routing run.
///
/// Leaves are created first (one per sink); [`MergeForest::merge`] combines
/// two subtrees into a new one, enforcing every shared group's skew bound;
/// [`MergeForest::embed`] turns the finished root into a [`RoutedTree`].
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct MergeForest {
    nodes: Vec<Node>,
    model: DelayModel,
    bounds: Vec<f64>,
    cfg: EngineConfig,
    leaves: usize,
    residual: f64,
    // Global group fusion (cfg.fuse_groups): union-find over groups plus
    // the prescribed offset of each original group relative to its class
    // reference (adjusted delay = real delay - phi).
    class_parent: Vec<u32>,
    phi: Vec<f64>,
    scratch: Scratch,
}

impl MergeForest {
    /// Creates an empty forest for a given delay model and per-group skew
    /// bounds (seconds, indexed by group).
    pub fn new(model: DelayModel, bounds: Vec<f64>, cfg: EngineConfig) -> Self {
        let k = bounds.len();
        Self {
            nodes: Vec::new(),
            model,
            bounds,
            cfg,
            leaves: 0,
            residual: 0.0,
            class_parent: (0..k as u32).collect(),
            phi: vec![0.0; k],
            scratch: Scratch::default(),
        }
    }

    /// Creates a forest for `inst` using its RC technology under the Elmore
    /// model, with one leaf per sink.
    pub fn for_instance(inst: &Instance, cfg: EngineConfig) -> Self {
        Self::for_instance_with_model(inst, DelayModel::elmore(*inst.rc()), cfg)
    }

    /// Like [`MergeForest::for_instance`] but with an explicit delay model
    /// (e.g. [`DelayModel::Pathlength`] for the ablation of Ch. III).
    pub fn for_instance_with_model(inst: &Instance, model: DelayModel, cfg: EngineConfig) -> Self {
        let mut f = Self::new(model, inst.groups().bounds().to_vec(), cfg);
        for (i, s) in inst.sinks().iter().enumerate() {
            f.add_leaf(i, s.pos, s.cap, inst.group_of(i));
        }
        f
    }

    /// Adds a leaf subtree for sink `sink_idx` and returns its node.
    pub fn add_leaf(&mut self, sink_idx: usize, pos: Point, cap: f64, group: GroupId) -> NodeId {
        debug_assert!(
            group.index() < self.bounds.len(),
            "group {group} has no declared bound"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::new(
            vec![Candidate {
                region: Trr::from_point(pos),
                delays: DelayMap::leaf(group),
                cap,
                wirelen: 0.0,
                kind: CandKind::Leaf(sink_idx),
            }],
            None,
            Some(sink_idx),
        ));
        self.leaves += 1;
        id
    }

    /// Node ids of all leaves, in insertion order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.sink.is_some())
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// The candidates of a node.
    pub fn candidates(&self, id: NodeId) -> &[Candidate] {
        &self.nodes[id.0].cands
    }

    /// The children of a node, if it is a merge.
    pub fn children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[id.0].children
    }

    /// A representative region for neighbor queries: the hull of the node's
    /// candidate regions (TRRs are closed under hull). O(1): the hull is
    /// maintained as candidates are created, never recomputed — the
    /// incremental planner queries this every round.
    pub fn representative_region(&self, id: NodeId) -> Trr {
        self.nodes[id.0].hull
    }

    /// Minimum distance between the best candidates of two nodes — the
    /// merging cost used for nearest-neighbor selection.
    pub fn merge_distance(&self, a: NodeId, b: NodeId) -> f64 {
        let mut best = f64::INFINITY;
        for ca in &self.nodes[a.0].cands {
            for cb in &self.nodes[b.0].cands {
                best = best.min(ca.region.distance(&cb.region));
            }
        }
        best
    }

    /// Estimated wire cost of merging one candidate pair: the geometric
    /// distance plus any snaking the shared-group δ-windows force, plus a
    /// proxy for offset-conflict resolution cost. This is what makes the
    /// engine prefer offset-compatible partners — the quantity the paper's
    /// "minimum merging-cost" scheme needs on difficult instances.
    ///
    /// Takes an explicit [`Scratch`] because this is the innermost loop of
    /// `merge`: the constraint assembly reuses the caller's buffers
    /// instead of allocating per call.
    fn pair_cost_estimate_in(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        scratch: &mut Scratch,
    ) -> f64 {
        let (ca, cb) = (&self.nodes[a.0].cands[ia], &self.nodes[b.0].cands[ib]);
        let d = ca.region.distance(&cb.region);
        self.shared_constraints_in(a, b, ia, ib, scratch);
        let cons = &scratch.cons;
        match intersect_delta_windows(cons, self.cfg.skew_tol) {
            Some(None) => d,
            Some(Some(w)) => {
                let mut need = d;
                if w.lo() > 0.0 {
                    need = need.max(self.model.extension_for_delay(w.lo(), ca.cap));
                }
                if w.hi() < 0.0 {
                    need = need.max(self.model.extension_for_delay(-w.hi(), cb.cap));
                }
                need
            }
            None => {
                // Conflict: the windows' spread must be paid as relative
                // shifts somewhere inside a child. Approximate with the
                // wire needed to realize the full spread against the
                // smaller load.
                let (mut mid_lo, mut mid_hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for c in cons {
                    let mid = 0.5 * ((c.hi_b - c.lo_a - c.bound) + (c.bound + c.lo_b - c.hi_a));
                    mid_lo = mid_lo.min(mid);
                    mid_hi = mid_hi.max(mid);
                }
                let spread = mid_hi - mid_lo;
                d + self
                    .model
                    .extension_for_delay(spread.max(0.0), ca.cap.min(cb.cap))
            }
        }
    }

    /// Minimum estimated merge cost over all candidate pairs (see
    /// [`MergeForest::merge_distance`] for the purely geometric variant).
    pub fn merge_cost(&self, a: NodeId, b: NodeId) -> f64 {
        let mut scratch = Scratch::default();
        let mut best = f64::INFINITY;
        for ia in 0..self.nodes[a.0].cands.len() {
            for ib in 0..self.nodes[b.0].cands.len() {
                best = best.min(self.pair_cost_estimate_in(a, b, ia, ib, &mut scratch));
            }
        }
        best
    }

    /// The largest root-to-sink delay among a node's candidates (used by
    /// the delay-target merging-order enhancement, Ch. V.F). O(1): cached
    /// at candidate creation like [`MergeForest::representative_region`].
    pub fn max_delay(&self, id: NodeId) -> f64 {
        self.nodes[id.0].max_delay
    }

    /// Worst skew-bound violation accepted so far (seconds); zero on any
    /// instance the engine solved exactly. Non-zero values indicate an
    /// irreconcilable offset conflict that even wire sneaking could not
    /// repair (see module docs) and are surfaced by the audit as well.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Number of nodes (leaves + merges) created so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Merges subtrees `a` and `b` into a new subtree, satisfying every
    /// shared group's skew bound, snaking or adjusting offsets as needed.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either id is stale.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert!(a != b, "cannot merge a node with itself");
        // Rank child-candidate pairs by estimated merge cost (distance plus
        // forced snaking / conflict-resolution cost); expand the best few.
        let mut pairs = self.rank_candidate_pairs(a, b);
        pairs.truncate(self.cfg.pair_limit);

        let mut cands: Vec<Candidate> = Vec::new();
        let mut worst_residual = 0.0f64;
        for &(_, ia, ib) in &pairs {
            let (new_cands, residual) = self.expand_pair(a, b, ia, ib);
            worst_residual = worst_residual.max(residual);
            cands.extend(new_cands);
        }
        if self.cfg.debug {
            if let Some(c) = cands.first() {
                let d = self.nodes[a.0].cands[0]
                    .region
                    .distance(&self.nodes[b.0].cands[0].region);
                if c.merge_wire() > 20.0 * (d + 100.0) {
                    eprintln!(
                        "[bigmerge] {}x{}: wire {:.0} vs dist {:.0}",
                        a.0,
                        b.0,
                        c.merge_wire(),
                        d
                    );
                }
            }
        }
        if cands.is_empty() {
            // All pairs failed even best-effort: should be unreachable, but
            // degrade gracefully with the closest pair at face value.
            let (_, ia, ib) = pairs[0];
            let d = self.nodes[a.0].cands[ia]
                .region
                .distance(&self.nodes[b.0].cands[ib].region);
            let half = 0.5 * d;
            cands.push(self.build_candidate(a, b, ia, ib, half, d - half));
        }
        Self::prune(&mut cands, self.cfg.max_candidates);
        self.residual = self.residual.max(worst_residual);
        if self.cfg.fuse_groups {
            self.fuse_classes(&mut cands);
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::new(cands, Some((a, b)), None));
        id
    }

    /// Estimates the merge cost of every child-candidate pair and returns
    /// them sorted cheapest-first. With the `parallel` feature, large pair
    /// sets fan out over threads (each worker with its own [`Scratch`]);
    /// results are identical to the serial path.
    fn rank_candidate_pairs(&mut self, a: NodeId, b: NodeId) -> Vec<(f64, usize, usize)> {
        let (na, nb) = (self.nodes[a.0].cands.len(), self.nodes[b.0].cands.len());
        let index_pairs: Vec<(usize, usize)> = (0..na)
            .flat_map(|ia| (0..nb).map(move |ib| (ia, ib)))
            .collect();
        let costs = self.pair_costs(a, b, &index_pairs);
        let mut pairs: Vec<(f64, usize, usize)> = index_pairs
            .iter()
            .zip(costs)
            .map(|(&(ia, ib), cost)| (cost, ia, ib))
            .collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("costs are not NaN"));
        pairs
    }

    #[cfg(feature = "parallel")]
    fn pair_costs(&mut self, a: NodeId, b: NodeId, index_pairs: &[(usize, usize)]) -> Vec<f64> {
        // Below the fan-out threshold, thread spawns cost more than the
        // estimates; reuse the shared scratch serially as the default
        // build does. Above it, each worker thread builds one scratch and
        // reuses it across its whole chunk (the shared one cannot cross
        // threads).
        const PAR_THRESHOLD: usize = 64;
        if index_pairs.len() < PAR_THRESHOLD {
            return self.pair_costs_serial(a, b, index_pairs);
        }
        astdme_par::par_map_with(
            index_pairs,
            PAR_THRESHOLD,
            Scratch::default,
            |scratch, &(ia, ib)| self.pair_cost_estimate_in(a, b, ia, ib, scratch),
        )
    }

    #[cfg(not(feature = "parallel"))]
    fn pair_costs(&mut self, a: NodeId, b: NodeId, index_pairs: &[(usize, usize)]) -> Vec<f64> {
        self.pair_costs_serial(a, b, index_pairs)
    }

    fn pair_costs_serial(
        &mut self,
        a: NodeId,
        b: NodeId,
        index_pairs: &[(usize, usize)],
    ) -> Vec<f64> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let costs = index_pairs
            .iter()
            .map(|&(ia, ib)| self.pair_cost_estimate_in(a, b, ia, ib, &mut scratch))
            .collect();
        self.scratch = scratch;
        costs
    }

    /// Fuses the effective classes co-resident in a freshly merged node
    /// (Fig. 6 steps 6-7): the best candidate's realized inter-class offset
    /// becomes the prescribed offset; candidates realizing a different
    /// offset are dropped (they would violate the prescription downstream).
    fn fuse_classes(&mut self, cands: &mut Vec<Candidate>) {
        let classes = self.effective_entries(&cands[0].delays);
        debug_assert!(
            classes.len() <= 2,
            "children each carry one class, so a merge sees at most two"
        );
        if classes.len() != 2 {
            return;
        }
        let (keep, absorb) = (classes[0].0, classes[1].0);
        let delta = classes[1].1 - classes[0].1;
        // Retain offset-consistent candidates (the best always is).
        let keep_tol = self.cfg.skew_tol.max(1e-12 * delta.abs());
        cands.retain(|c| {
            let e = self.effective_entries(&c.delays);
            e.len() == 2 && (e[1].1 - e[0].1 - delta).abs() <= keep_tol
        });
        debug_assert!(!cands.is_empty(), "best candidate is always consistent");
        // Prescribe: adjusted delays of the absorbed class align with the
        // kept class from now on, everywhere.
        for g in 0..self.phi.len() {
            if self.class_of(GroupId(g as u32)) == absorb {
                self.phi[g] += delta;
            }
        }
        self.class_parent[absorb as usize] = keep;
    }

    /// Expands one child-candidate pair into merged candidates. Returns the
    /// candidates plus the skew residual incurred (0 when solved exactly).
    fn expand_pair(&mut self, a: NodeId, b: NodeId, ia: usize, ib: usize) -> (Vec<Candidate>, f64) {
        let cons = self.shared_constraints(a, b, ia, ib);
        let (ca, cb) = (&self.nodes[a.0].cands[ia], &self.nodes[b.0].cands[ib]);
        let d = ca.region.distance(&cb.region);
        let (cap_a, cap_b) = (ca.cap, cb.cap);

        // Case 1-3: a feasible split window exists at distance d.
        let set = feasible_splits(&self.model, cap_a, cap_b, d, &cons, self.cfg.skew_tol);
        if !set.is_empty() {
            return (self.sample_candidates(a, b, ia, ib, d, &set), 0.0);
        }
        // Snaking: the window exists but needs more wire than d.
        if let Some(t) =
            min_total_for_feasibility(&self.model, cap_a, cap_b, d, &cons, self.cfg.skew_tol)
        {
            let t = t + (t * 1e-12).max(1e-9);
            let set = feasible_splits(&self.model, cap_a, cap_b, t, &cons, self.cfg.skew_tol);
            if !set.is_empty() {
                return (self.sample_candidates(a, b, ia, ib, t, &set), 0.0);
            }
        }
        // Case 4: conflicting δ-windows — only re-balancing inside a child
        // can align the groups (the paper's wire sneaking, Fig. 5).
        let debug = self.cfg.debug;
        if debug {
            eprintln!(
                "[conflict] merge {}x{} cands {ia},{ib}: {} shared groups",
                a.0,
                b.0,
                cons.len()
            );
            for c in &cons {
                eprintln!(
                    "  cons: a=[{:.6e},{:.6e}] b=[{:.6e},{:.6e}] bound={:.1e} spread_a={:.2e} spread_b={:.2e}",
                    c.lo_a, c.hi_a, c.lo_b, c.hi_b, c.bound,
                    c.hi_a - c.lo_a, c.hi_b - c.lo_b
                );
            }
        }
        if let Some((ia2, ib2)) = self.adjust_offsets(a, b, ia, ib) {
            let cons2 = self.shared_constraints(a, b, ia2, ib2);
            let (ca2, cb2) = (&self.nodes[a.0].cands[ia2], &self.nodes[b.0].cands[ib2]);
            let d2 = ca2.region.distance(&cb2.region);
            let (cap_a2, cap_b2) = (ca2.cap, cb2.cap);
            let set = feasible_splits(&self.model, cap_a2, cap_b2, d2, &cons2, self.cfg.skew_tol);
            if !set.is_empty() {
                return (self.sample_candidates(a, b, ia2, ib2, d2, &set), 0.0);
            }
            if let Some(t) = min_total_for_feasibility(
                &self.model,
                cap_a2,
                cap_b2,
                d2,
                &cons2,
                self.cfg.skew_tol,
            ) {
                let t = t + (t * 1e-12).max(1e-9);
                let set =
                    feasible_splits(&self.model, cap_a2, cap_b2, t, &cons2, self.cfg.skew_tol);
                if !set.is_empty() {
                    return (self.sample_candidates(a, b, ia2, ib2, t, &set), 0.0);
                }
            }
        }
        // Best effort: minimize the worst window violation.
        if debug {
            eprintln!("[conflict] -> best_effort");
        }
        self.best_effort(a, b, ia, ib, &cons)
    }

    /// The effective (fused) class of a group.
    pub fn class_of(&self, g: GroupId) -> u32 {
        let mut c = g.0;
        while self.class_parent[c as usize] != c {
            c = self.class_parent[c as usize];
        }
        c
    }

    /// The prescribed offset of a group relative to its class reference.
    pub fn class_offset(&self, g: GroupId) -> f64 {
        self.phi[g.index()]
    }

    /// Per-class adjusted delay hulls of a delay map:
    /// `(class, adj_lo, adj_hi, min member bound)`, ascending by class.
    fn effective_entries(&self, delays: &DelayMap) -> Vec<(u32, f64, f64, f64)> {
        let mut out = Vec::with_capacity(delays.group_count());
        self.effective_entries_in(delays, &mut out);
        out
    }

    /// [`MergeForest::effective_entries`] into a reused buffer (cleared
    /// first) — the hot path of pair-cost estimation.
    fn effective_entries_in(&self, delays: &DelayMap, out: &mut Vec<(u32, f64, f64, f64)>) {
        out.clear();
        for (g, r) in delays.iter() {
            let c = self.class_of(g);
            let (lo, hi) = (r.lo - self.phi[g.index()], r.hi - self.phi[g.index()]);
            let b = self.bounds[g.index()];
            match out.iter_mut().find(|(cc, ..)| *cc == c) {
                Some((_, l, h, bb)) => {
                    *l = l.min(lo);
                    *h = h.max(hi);
                    *bb = bb.min(b);
                }
                None => out.push((c, lo, hi, b)),
            }
        }
        out.sort_by_key(|(c, ..)| *c);
    }

    /// Shared-group constraints between two candidates. With group fusion
    /// on, constraints are per effective class over offset-adjusted delays;
    /// otherwise per original group.
    fn shared_constraints(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
    ) -> Vec<SharedConstraint> {
        let mut scratch = Scratch::default();
        self.shared_constraints_in(a, b, ia, ib, &mut scratch);
        scratch.cons
    }

    /// [`MergeForest::shared_constraints`] into `scratch.cons` (cleared
    /// first), reusing `scratch`'s entry buffers.
    fn shared_constraints_in(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        scratch: &mut Scratch,
    ) {
        let (ca, cb) = (&self.nodes[a.0].cands[ia], &self.nodes[b.0].cands[ib]);
        let cons = &mut scratch.cons;
        cons.clear();
        if self.cfg.fuse_groups {
            self.effective_entries_in(&ca.delays, &mut scratch.ea);
            self.effective_entries_in(&cb.delays, &mut scratch.eb);
            let (ea, eb) = (&scratch.ea, &scratch.eb);
            let (mut i, mut j) = (0, 0);
            while i < ea.len() && j < eb.len() {
                match ea[i].0.cmp(&eb[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        cons.push(SharedConstraint {
                            lo_a: ea[i].1,
                            hi_a: ea[i].2,
                            lo_b: eb[j].1,
                            hi_b: eb[j].2,
                            bound: ea[i].3.min(eb[j].3),
                        });
                        i += 1;
                        j += 1;
                    }
                }
            }
            return;
        }
        cons.extend(ca.delays.shared_groups(&cb.delays).into_iter().map(|g| {
            let ra = ca.delays.range(g).expect("shared group present in a");
            let rb = cb.delays.range(g).expect("shared group present in b");
            SharedConstraint {
                lo_a: ra.lo,
                hi_a: ra.hi,
                lo_b: rb.lo,
                hi_b: rb.hi,
                bound: self.bounds[g.index()],
            }
        }));
    }

    /// Builds candidates for sampled splits of a feasible set.
    fn sample_candidates(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        total: f64,
        set: &astdme_delay::IntervalSet,
    ) -> Vec<Candidate> {
        set.sample(self.cfg.split_samples)
            .into_iter()
            .map(|ea| {
                let ea = ea.clamp(0.0, total);
                self.build_candidate(a, b, ia, ib, ea, total - ea)
            })
            .collect()
    }

    /// Constructs the merged candidate for an explicit wire split.
    fn build_candidate(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        ea: f64,
        eb: f64,
    ) -> Candidate {
        let (ca, cb) = (&self.nodes[a.0].cands[ia], &self.nodes[b.0].cands[ib]);
        let da = self.model.wire_delay(ea, ca.cap);
        let db = self.model.wire_delay(eb, cb.cap);
        let region = merge_locus(&ca.region, &cb.region, ea, eb)
            .expect("split must cover the geometric distance");
        Candidate {
            region,
            delays: ca.delays.shifted(da).merge(&cb.delays.shifted(db)),
            cap: ca.cap + cb.cap + self.model.wire_cap(ea + eb),
            wirelen: ca.wirelen + cb.wirelen + ea + eb,
            kind: CandKind::Merge {
                cand_a: ia,
                cand_b: ib,
                ea,
                eb,
            },
        }
    }

    /// Attempts to re-balance one child's last merge so that the conflicting
    /// δ-windows of this merge align (Kim 2006, Ch. V.E instance 2).
    ///
    /// Returns candidate indices to use instead, or `None` if neither side
    /// can be adjusted.
    fn adjust_offsets(
        &mut self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
    ) -> Option<(usize, usize)> {
        // Prefer adjusting the subtree with smaller load (cheaper snake).
        let order = if self.nodes[a.0].cands[ia].cap <= self.nodes[b.0].cands[ib].cap {
            [(a, ia, b, ib, true), (b, ib, a, ia, false)]
        } else {
            [(b, ib, a, ia, false), (a, ia, b, ib, true)]
        };
        for (child, ic, other, io, child_is_a) in order {
            if let Some(new_ic) = self.adjust_child(child, ic, other, io, child_is_a) {
                return Some(if child_is_a {
                    (new_ic, ib)
                } else {
                    (ia, new_ic)
                });
            }
        }
        None
    }

    /// Re-derives `child` (recursively where needed) so that its group
    /// delays align with `other`'s δ-windows: the generalization of the
    /// paper's wire sneaking (Ch. V.E instance 2) to arbitrarily deep
    /// offset conflicts.
    ///
    /// `child_is_a` says which role `child` plays in the parent merge (the
    /// δ-window formulas are asymmetric).
    fn adjust_child(
        &mut self,
        child: NodeId,
        ic: usize,
        other: NodeId,
        io: usize,
        child_is_a: bool,
    ) -> Option<usize> {
        let cc = self.nodes[child.0].cands[ic].clone();
        let oc = self.nodes[other.0].cands[io].clone();
        let shared = cc.delays.shared_groups(&oc.delays);
        if shared.len() < 2 {
            // A single group's window is never self-conflicting.
            return None;
        }
        // δ-windows in the *child-first* orientation (child plays role
        // "a") regardless of its actual role: intersection emptiness is
        // orientation invariant, and in this orientation shifting the
        // group's delays inside `child` by +σ always translates the window
        // by -σ. The final validation below re-checks in true orientation.
        let mut windows: Vec<(GroupId, Interval)> = Vec::with_capacity(shared.len());
        for g in &shared {
            let rc_g = cc.delays.range(*g).expect("shared group in child");
            let ro_g = oc.delays.range(*g).expect("shared group in other");
            let w = SharedConstraint {
                lo_a: rc_g.lo,
                hi_a: rc_g.hi,
                lo_b: ro_g.lo,
                hi_b: ro_g.hi,
                bound: self.bounds[g.index()],
            }
            .delta_window_with_tol(self.cfg.skew_tol)?;
            windows.push((*g, w));
        }
        // Candidate anchors δ̂: aligning on each group's own window (that
        // group shifts nothing, the others move to it) plus the median of
        // window midpoints. The cheapest *realized* adjustment wins —
        // which shifts are free depends on slack deep inside the child, so
        // we measure rather than predict.
        let mut mids: Vec<f64> = windows.iter().map(|(_, w)| w.mid()).collect();
        mids.sort_by(|x, y| x.partial_cmp(y).expect("window mids not NaN"));
        let mut anchors: Vec<f64> = mids.clone();
        anchors.push(mids[mids.len() / 2]);
        anchors.dedup_by(|x, y| (*x - *y).abs() <= 1e-12 * (y.abs() + 1e-30));

        let mut best: Option<(f64, usize)> = None;
        for delta_hat in anchors {
            // Per-group shift: the nearest point of (W_g - δ̂) to zero.
            let targets: Vec<(GroupId, f64)> = windows
                .iter()
                .filter_map(|(g, w)| {
                    let (lo, hi) = (w.lo() - delta_hat, w.hi() - delta_hat);
                    let s = if lo > 0.0 {
                        lo
                    } else if hi < 0.0 {
                        hi
                    } else {
                        0.0
                    };
                    (s != 0.0).then_some((*g, s))
                })
                .collect();
            if targets.is_empty() {
                continue; // windows already intersect; nothing to adjust
            }
            let Some(idx) = self.shift_candidate(child, ic, &targets) else {
                continue;
            };
            // Validate in true orientation (with rounding slack) and cost
            // the result: the new candidate's wire plus the snake the
            // parent merge would still need.
            let cons = if child_is_a {
                self.shared_constraints(child, other, idx, io)
            } else {
                self.shared_constraints(other, child, io, idx)
            };
            if intersect_delta_windows(&cons, self.cfg.skew_tol).is_none() {
                // Leave the unused candidate in place (indices must stay
                // stable once created); it simply never gets referenced.
                continue;
            }
            let new_c = &self.nodes[child.0].cands[idx];
            let d = new_c.region.distance(&oc.region);
            let (cap_c, cap_o) = (new_c.cap, oc.cap);
            let parent_total = if child_is_a {
                min_total_for_feasibility(&self.model, cap_c, cap_o, d, &cons, self.cfg.skew_tol)
            } else {
                min_total_for_feasibility(&self.model, cap_o, cap_c, d, &cons, self.cfg.skew_tol)
            }
            .unwrap_or(d);
            let cost = new_c.wirelen + parent_total;
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, idx));
            }
        }
        best.map(|(_, idx)| idx)
    }

    /// Builds a new candidate of `node` in which each listed group's delay
    /// range is shifted by the given amount *relative to* the node's other
    /// groups (an arbitrary common absolute shift on top is permitted —
    /// the parent merge absorbs it in its own wire balance).
    ///
    /// Recursion: at each merge, the shift decomposes into a common part
    /// per child (absorbed by that child's merge wire, snaking if needed)
    /// plus residual relative shifts inside each child. Groups present
    /// under both children receive consistent shifts on both sides, so
    /// their alignment (and any bounded spread) is preserved exactly.
    ///
    /// Returns the index of the new candidate on `node`, or `None` when a
    /// shift is infeasible (e.g. it would require negative wire).
    fn shift_candidate(
        &mut self,
        node: NodeId,
        ic: usize,
        targets: &[(GroupId, f64)],
    ) -> Option<usize> {
        let cand = self.nodes[node.0].cands[ic].clone();
        let shift_of = |g: GroupId| -> f64 {
            targets
                .iter()
                .find(|(tg, _)| *tg == g)
                .map(|(_, s)| *s)
                .unwrap_or(0.0)
        };
        // Relative no-op (all groups shifted equally)?
        let shifts: Vec<f64> = cand.delays.groups().map(shift_of).collect();
        let s_min = shifts.iter().cloned().fold(f64::INFINITY, f64::min);
        let s_max = shifts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let scale = s_min.abs().max(s_max.abs());
        if s_max - s_min <= 1e-12 * scale + 1e-30 {
            return Some(ic);
        }
        let (l, r) = self.nodes[node.0].children?;
        let CandKind::Merge {
            cand_a: il,
            cand_b: ir,
            ea: el_star,
            eb: er_star,
        } = cand.kind
        else {
            return None; // leaf with >1 distinct shifts: impossible
        };
        let (lc, rc) = (
            self.nodes[l.0].cands[il].clone(),
            self.nodes[r.0].cands[ir].clone(),
        );

        // Decompose per child: common part on the edge, residual recursed.
        let split_side = |delays: &DelayMap| -> (f64, Vec<(GroupId, f64)>) {
            let common = delays.groups().map(shift_of).fold(f64::INFINITY, f64::min);
            let residual: Vec<(GroupId, f64)> = delays
                .groups()
                .filter_map(|g| {
                    let s = shift_of(g) - common;
                    (s.abs() > 1e-12 * scale + 1e-30).then_some((g, s))
                })
                .collect();
            (common, residual)
        };
        let (common_l, res_l) = split_side(&lc.delays);
        let (common_r, res_r) = split_side(&rc.delays);

        let il2 = self.shift_candidate(l, il, &res_l)?;
        let ir2 = self.shift_candidate(r, ir, &res_r)?;
        let (lc2, rc2) = (
            self.nodes[l.0].cands[il2].clone(),
            self.nodes[r.0].cands[ir2].clone(),
        );
        // Recursions may have drifted by a common amount of their own;
        // re-anchor each edge's common shift against the realized delays.
        // The drift of a child is measured on any one of its groups, net of
        // that group's own requested residual shift.
        let drift = |old: &Candidate, new: &Candidate, res: &[(GroupId, f64)]| -> f64 {
            let g = old.delays.groups().next().expect("non-empty delay map");
            let req = res
                .iter()
                .find(|(tg, _)| *tg == g)
                .map(|(_, s)| *s)
                .unwrap_or(0.0);
            let (o, n) = (
                old.delays.range(g).expect("anchor group"),
                new.delays.range(g).expect("anchor group survives shifting"),
            );
            (n.lo - o.lo) - req
        };
        let dl_star = self.model.wire_delay(el_star, lc.cap);
        let dr_star = self.model.wire_delay(er_star, rc.cap);
        // Desired edge delays before the free common shift x:
        let dl_base = dl_star + common_l - drift(&lc, &lc2, &res_l);
        let dr_base = dr_star + common_r - drift(&rc, &rc2, &res_r);
        // Choose the common shift x minimizing total wire subject to
        // non-negative delays and geometric reachability.
        let d_lr = lc2.region.distance(&rc2.region);
        let (el2, er2) = self.solve_common_shift(dl_base, dr_base, lc2.cap, rc2.cap, d_lr)?;

        let new_cand = self.build_candidate(l, r, il2, ir2, el2, er2);
        let idx = self.nodes[node.0].cands.len();
        self.nodes[node.0].push_candidate(new_cand);
        Some(idx)
    }

    /// Finds wire lengths realizing edge delays `dl_base + x` and
    /// `dr_base + x` for the common shift `x` that minimizes total wire,
    /// subject to non-negative delays and `el + er >= dist`.
    fn solve_common_shift(
        &self,
        dl_base: f64,
        dr_base: f64,
        cap_l: f64,
        cap_r: f64,
        dist: f64,
    ) -> Option<(f64, f64)> {
        let len_for = |d: f64, cap: f64| -> f64 { self.model.extension_for_delay(d.max(0.0), cap) };
        let total = |x: f64| -> f64 { len_for(dl_base + x, cap_l) + len_for(dr_base + x, cap_r) };
        // Smallest admissible x keeps both delays non-negative.
        let x_min = (-dl_base).max(-dr_base);
        if total(x_min) >= dist {
            return Some((
                len_for(dl_base + x_min, cap_l),
                len_for(dr_base + x_min, cap_r),
            ));
        }
        // Grow x until the children become reachable, then bisect to the
        // minimum-wire point total(x) == dist.
        let scale = (dl_base.abs() + dr_base.abs()).max(1e-15);
        let mut hi = x_min.max(0.0) + scale;
        let mut guard = 0;
        while total(hi) < dist {
            hi = x_min.max(0.0) + (hi - x_min.max(0.0)) * 2.0 + scale;
            guard += 1;
            if guard > 200 {
                return None;
            }
        }
        let mut lo = x_min;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if total(mid) >= dist {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some((len_for(dl_base + hi, cap_l), len_for(dr_base + hi, cap_r)))
    }

    /// Fallback when offsets cannot be aligned: merge at the δ minimizing
    /// the worst window violation and record the residual.
    fn best_effort(
        &self,
        a: NodeId,
        b: NodeId,
        ia: usize,
        ib: usize,
        cons: &[SharedConstraint],
    ) -> (Vec<Candidate>, f64) {
        let (ca, cb) = (&self.nodes[a.0].cands[ia], &self.nodes[b.0].cands[ib]);
        let d = ca.region.distance(&cb.region);
        // Minimax point over the windows: midpoint of [max lo, min hi].
        let mut lo_max = f64::NEG_INFINITY;
        let mut hi_min = f64::INFINITY;
        for c in cons {
            // Use the raw ends even if the window itself is inverted/empty.
            lo_max = lo_max.max(c.hi_b - c.lo_a - c.bound);
            hi_min = hi_min.min(c.bound + c.lo_b - c.hi_a);
        }
        let (delta_hat, residual) = if lo_max.is_finite() && hi_min.is_finite() {
            (0.5 * (lo_max + hi_min), (0.5 * (lo_max - hi_min)).max(0.0))
        } else {
            (0.0, 0.0)
        };
        // Realize δ̂ with minimal wire: extend one side if out of range.
        let (cap_a, cap_b) = (ca.cap, cb.cap);
        let mut total = d;
        let delta_max = self.model.wire_delay(d, cap_a);
        let delta_min = -self.model.wire_delay(d, cap_b);
        if delta_hat > delta_max {
            total = self
                .model
                .extension_for_delay(delta_hat.max(0.0), cap_a)
                .max(d);
        } else if delta_hat < delta_min {
            total = self
                .model
                .extension_for_delay((-delta_hat).max(0.0), cap_b)
                .max(d);
        }
        let diff = self
            .model
            .delay_quad(cap_a)
            .sub(&self.model.delay_quad(cap_b).reflect(total))
            .add_const(-delta_hat);
        let ea = diff
            .monotone_root(Interval::new(0.0, total))
            .unwrap_or(0.5 * total)
            .clamp(0.0, total);
        (
            vec![self.build_candidate(a, b, ia, ib, ea, total - ea)],
            residual,
        )
    }

    /// Keeps the `k` most promising candidates: cheapest wirelength first,
    /// larger regions (more downstream freedom) on ties.
    fn prune(cands: &mut Vec<Candidate>, k: usize) {
        cands.sort_by(|x, y| {
            let wl = x.wirelen.partial_cmp(&y.wirelen).expect("wirelen not NaN");
            wl.then(
                y.region
                    .diameter()
                    .partial_cmp(&x.region.diameter())
                    .expect("diameter not NaN"),
            )
        });
        // Drop near-duplicates (same wirelen, same region within tolerance).
        cands.dedup_by(|x, y| {
            (x.wirelen - y.wirelen).abs() <= 1e-9 * (1.0 + y.wirelen)
                && x.region.hull(&y.region).half_perimeter() <= y.region.half_perimeter() + 1e-9
        });
        cands.truncate(k.max(1));
    }

    /// Top-down embedding: turns the finished subtree `root` into a routed
    /// tree connected to `source`.
    ///
    /// Picks the root candidate minimizing total wirelength including the
    /// source connection, then walks the provenance, placing each child at
    /// the nearest point of its recorded region (snaking detours make up
    /// any electrical/geometric difference).
    ///
    /// # Panics
    ///
    /// Panics if `root` is stale.
    pub fn embed(&self, root: NodeId, source: Point) -> RoutedTree {
        // Choose the root candidate.
        let (best_idx, _) = self.nodes[root.0]
            .cands
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.wirelen + c.region.distance_to_point(source)))
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("costs not NaN"))
            .expect("nodes always keep at least one candidate");

        let mut nodes: Vec<RoutedNode> = Vec::new();
        // Stack of (forest node, candidate index, parent routed index,
        // electrical wire to parent, parent point).
        let root_cand = &self.nodes[root.0].cands[best_idx];
        let root_pos = root_cand.region.nearest_point(source);
        let mut stack = vec![(
            root,
            best_idx,
            None::<usize>,
            source.dist(root_pos),
            root_pos,
        )];
        while let Some((nid, cidx, parent, wire, pos)) = stack.pop() {
            let me = nodes.len();
            let cand = &self.nodes[nid.0].cands[cidx];
            nodes.push(RoutedNode {
                pos,
                parent,
                wire,
                sink: self.nodes[nid.0].sink,
            });
            if let CandKind::Merge {
                cand_a,
                cand_b,
                ea,
                eb,
            } = cand.kind
            {
                let (a, b) = self.nodes[nid.0]
                    .children
                    .expect("merge candidates only on merge nodes");
                let pa = self.nodes[a.0].cands[cand_a].region.nearest_point(pos);
                let pb = self.nodes[b.0].cands[cand_b].region.nearest_point(pos);
                debug_assert!(
                    pos.dist(pa) <= ea + 1e-6 * (1.0 + ea),
                    "child a unreachable: {} > {}",
                    pos.dist(pa),
                    ea
                );
                debug_assert!(
                    pos.dist(pb) <= eb + 1e-6 * (1.0 + eb),
                    "child b unreachable: {} > {}",
                    pos.dist(pb),
                    eb
                );
                stack.push((a, cand_a, Some(me), ea, pa));
                stack.push((b, cand_b, Some(me), eb, pb));
            }
        }
        RoutedTree::new(source, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astdme_delay::RcParams;

    fn forest_with(bounds: Vec<f64>) -> MergeForest {
        MergeForest::new(
            DelayModel::elmore(RcParams::default()),
            bounds,
            EngineConfig::default(),
        )
    }

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn leaf_candidates_are_points_at_zero_delay() {
        let mut f = forest_with(vec![0.0]);
        let id = f.add_leaf(0, pt(3.0, 4.0), 1e-14, GroupId(0));
        let c = &f.candidates(id)[0];
        assert!(c.region.is_point(1e-12));
        assert_eq!(c.cap, 1e-14);
        assert_eq!(c.wirelen, 0.0);
        assert_eq!(c.delays.range(GroupId(0)).unwrap().hi, 0.0);
    }

    #[test]
    fn same_group_zero_skew_merge_is_classic_dme() {
        let mut f = forest_with(vec![0.0]);
        let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
        let b = f.add_leaf(1, pt(1000.0, 0.0), 1e-14, GroupId(0));
        let m = f.merge(a, b);
        for c in f.candidates(m) {
            // Zero-skew with equal loads: split in half, region is an arc.
            let CandKind::Merge { ea, eb, .. } = c.kind else {
                panic!("expected merge provenance")
            };
            assert!((ea - 500.0).abs() < 1e-6);
            assert!((eb - 500.0).abs() < 1e-6);
            assert!(c.region.is_arc(1e-9));
            assert!((c.wirelen - 1000.0).abs() < 1e-9);
            // Both sinks at identical delay.
            let r = c.delays.range(GroupId(0)).unwrap();
            assert!(r.spread() < 1e-18);
        }
    }

    #[test]
    fn different_groups_merge_spans_the_sdr() {
        // Fusion retains only the offset-consistent candidate; the SDR
        // sweep is visible in the general (unfused) mode.
        let mut f = MergeForest::new(
            DelayModel::elmore(RcParams::default()),
            vec![0.0, 0.0],
            EngineConfig {
                fuse_groups: false,
                ..EngineConfig::default()
            },
        );
        let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
        let b = f.add_leaf(1, pt(800.0, 600.0), 1e-14, GroupId(1));
        let m = f.merge(a, b);
        let cands = f.candidates(m);
        // Multiple sampled splits, all spending exactly the distance.
        assert!(cands.len() > 1);
        for c in cands {
            assert!((c.wirelen - 1400.0).abs() < 1e-6);
            assert_eq!(c.delays.group_count(), 2);
        }
        // The extreme samples touch the child positions.
        let spans: Vec<f64> = cands
            .iter()
            .map(|c| match c.kind {
                CandKind::Merge { ea, .. } => ea,
                _ => unreachable!(),
            })
            .collect();
        let min = spans.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = spans.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 1e-6);
        assert!((max - 1400.0).abs() < 1e-6);
    }

    #[test]
    fn bounded_skew_merge_allows_off_balance_splits() {
        let mut f = MergeForest::new(
            DelayModel::elmore(RcParams::default()),
            vec![1e-11],
            EngineConfig::default(),
        );
        let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
        let b = f.add_leaf(1, pt(2000.0, 0.0), 1e-14, GroupId(0));
        let m = f.merge(a, b);
        let mut spread_seen = 0.0f64;
        for c in f.candidates(m) {
            let r = c.delays.range(GroupId(0)).unwrap();
            assert!(r.spread() <= 1e-11 + 1e-18);
            spread_seen = spread_seen.max(r.spread());
        }
        assert!(spread_seen > 0.0, "bounded merges should use the slack");
    }

    #[test]
    fn unbalanced_zero_skew_merge_snakes() {
        let mut f = forest_with(vec![0.0]);
        // A heavy, far subtree vs a nearby light sink: build the heavy one
        // first out of two distant sinks.
        let a1 = f.add_leaf(0, pt(0.0, 0.0), 5e-14, GroupId(0));
        let a2 = f.add_leaf(1, pt(4000.0, 0.0), 5e-14, GroupId(0));
        let a = f.merge(a1, a2);
        let b = f.add_leaf(2, pt(2050.0, 10.0), 1e-15, GroupId(0));
        let m = f.merge(a, b);
        // b is tiny and close to a's merging arc: zero skew demands more
        // wire to b than the distance.
        let c = &f.candidates(m)[0];
        let CandKind::Merge { ea, eb, .. } = c.kind else {
            panic!("expected merge")
        };
        let d = f
            .candidates(a)
            .iter()
            .map(|ca| ca.region.distance(&f.candidates(b)[0].region))
            .fold(f64::INFINITY, f64::min);
        assert!(ea + eb > d + 1.0, "expected a snaking detour");
        let r = c.delays.range(GroupId(0)).unwrap();
        assert!(r.spread() < 1e-18);
    }

    #[test]
    fn embed_realizes_bookkept_wirelength_and_delays() {
        let mut f = forest_with(vec![0.0]);
        let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
        let b = f.add_leaf(1, pt(600.0, 400.0), 2e-14, GroupId(0));
        let m = f.merge(a, b);
        let best_wirelen = f.candidates(m)[0].wirelen;
        let tree = f.embed(m, pt(300.0, 1000.0));
        // Total wire = subtree wire + source connection.
        let subtree_wire: f64 = tree
            .nodes()
            .iter()
            .filter(|n| n.parent.is_some())
            .map(|n| n.wire)
            .sum();
        assert!((subtree_wire - best_wirelen).abs() < 1e-6);
        assert_eq!(tree.sink_nodes().count(), 2);
    }

    #[test]
    fn merge_distance_and_representative_region() {
        let mut f = forest_with(vec![0.0, 0.0]);
        let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
        let b = f.add_leaf(1, pt(100.0, 0.0), 1e-14, GroupId(1));
        assert_eq!(f.merge_distance(a, b), 100.0);
        let m = f.merge(a, b);
        let rep = f.representative_region(m);
        for c in f.candidates(m) {
            assert!(rep.contains_trr(&c.region, 1e-9));
        }
    }

    #[test]
    fn residual_zero_on_clean_instances() {
        let mut f = forest_with(vec![0.0, 0.0]);
        let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
        let b = f.add_leaf(1, pt(500.0, 0.0), 1e-14, GroupId(1));
        let c = f.add_leaf(2, pt(250.0, 400.0), 1e-14, GroupId(0));
        let ab = f.merge(a, b);
        let _ = f.merge(ab, c);
        assert_eq!(f.residual(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot merge a node with itself")]
    fn merging_self_panics() {
        let mut f = forest_with(vec![0.0]);
        let a = f.add_leaf(0, pt(0.0, 0.0), 1e-14, GroupId(0));
        let _ = f.merge(a, a);
    }
}
