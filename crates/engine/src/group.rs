//! Sink groups: the associative-skew constraint structure.

use core::fmt;
use std::error::Error;

/// Identifier of a sink group (`G_1 … G_k` in the paper), dense from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The group's index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Error building or validating a routing instance.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A sink's group index is `>= group_count`.
    GroupOutOfRange {
        /// Index of the offending sink.
        sink: usize,
        /// The out-of-range group index.
        group: usize,
        /// Number of declared groups.
        group_count: usize,
    },
    /// A declared group contains no sinks.
    EmptyGroup(usize),
    /// The instance has no sinks.
    NoSinks,
    /// The number of assignments differs from the number of sinks.
    AssignmentLengthMismatch {
        /// Number of sinks.
        sinks: usize,
        /// Number of group assignments provided.
        assignments: usize,
    },
    /// A sink has a non-finite coordinate or non-positive capacitance.
    BadSink(usize),
    /// A skew bound is negative or NaN.
    BadBound(usize),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GroupOutOfRange {
                sink,
                group,
                group_count,
            } => write!(
                f,
                "sink {sink} assigned to group {group}, but only {group_count} groups declared"
            ),
            Self::EmptyGroup(g) => write!(f, "group {g} contains no sinks"),
            Self::NoSinks => write!(f, "instance has no sinks"),
            Self::AssignmentLengthMismatch { sinks, assignments } => write!(
                f,
                "{assignments} group assignments provided for {sinks} sinks"
            ),
            Self::BadSink(i) => write!(f, "sink {i} has a non-finite position or bad capacitance"),
            Self::BadBound(g) => write!(f, "group {g} has a negative or NaN skew bound"),
        }
    }
}

impl Error for InstanceError {}

/// A partition of the sinks into `k` groups, with a per-group intra-group
/// skew bound (zero by default — the paper's formulation in Ch. II).
///
/// Skew constraints apply only *within* a group; sinks in different groups
/// are unconstrained relative to each other.
///
/// ```
/// use astdme_engine::{GroupId, Groups};
///
/// let g = Groups::from_assignments(vec![0, 1, 0, 1], 2)?;
/// assert_eq!(g.group_count(), 2);
/// assert_eq!(g.group_of(2), GroupId(0));
/// assert_eq!(g.members(GroupId(1)), &[1, 3]);
/// assert_eq!(g.bound(GroupId(0)), 0.0);
/// # Ok::<(), astdme_engine::InstanceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Groups {
    assignment: Vec<GroupId>,
    members: Vec<Vec<usize>>,
    bounds: Vec<f64>,
}

impl Groups {
    /// Builds a partition from a per-sink group index vector.
    ///
    /// # Errors
    ///
    /// Fails if any index is `>= group_count` or a group ends up empty.
    pub fn from_assignments(
        assignment: Vec<usize>,
        group_count: usize,
    ) -> Result<Self, InstanceError> {
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); group_count];
        for (sink, &g) in assignment.iter().enumerate() {
            if g >= group_count {
                return Err(InstanceError::GroupOutOfRange {
                    sink,
                    group: g,
                    group_count,
                });
            }
            members[g].push(sink);
        }
        if let Some(g) = members.iter().position(Vec::is_empty) {
            return Err(InstanceError::EmptyGroup(g));
        }
        Ok(Self {
            assignment: assignment.into_iter().map(|g| GroupId(g as u32)).collect(),
            members,
            bounds: vec![0.0; group_count],
        })
    }

    /// A single group containing `n` sinks — the conventional zero-skew /
    /// bounded-skew setting (`greedy-DME`, `EXT-BST`).
    pub fn single(n: usize) -> Result<Self, InstanceError> {
        if n == 0 {
            return Err(InstanceError::NoSinks);
        }
        Self::from_assignments(vec![0; n], 1)
    }

    /// Sets the same intra-group skew bound for every group (seconds;
    /// `0.0` = zero skew). Returns `self` for chaining.
    ///
    /// # Errors
    ///
    /// Fails if the bound is negative or NaN.
    pub fn with_uniform_bound(mut self, bound: f64) -> Result<Self, InstanceError> {
        if bound.is_nan() || bound < 0.0 {
            return Err(InstanceError::BadBound(0));
        }
        for b in &mut self.bounds {
            *b = bound;
        }
        Ok(self)
    }

    /// Sets per-group intra-group skew bounds.
    ///
    /// # Errors
    ///
    /// Fails if the length differs from the group count or any bound is
    /// negative/NaN.
    pub fn with_bounds(mut self, bounds: Vec<f64>) -> Result<Self, InstanceError> {
        if bounds.len() != self.group_count() {
            return Err(InstanceError::AssignmentLengthMismatch {
                sinks: self.group_count(),
                assignments: bounds.len(),
            });
        }
        if let Some(g) = bounds.iter().position(|b| b.is_nan() || *b < 0.0) {
            return Err(InstanceError::BadBound(g));
        }
        self.bounds = bounds;
        Ok(self)
    }

    /// Number of groups `k`.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.members.len()
    }

    /// Number of sinks.
    #[inline]
    pub fn sink_count(&self) -> usize {
        self.assignment.len()
    }

    /// Group of sink `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn group_of(&self, i: usize) -> GroupId {
        self.assignment[i]
    }

    /// Sinks belonging to group `g`, ascending.
    #[inline]
    pub fn members(&self, g: GroupId) -> &[usize] {
        &self.members[g.index()]
    }

    /// Intra-group skew bound of `g` in seconds.
    #[inline]
    pub fn bound(&self, g: GroupId) -> f64 {
        self.bounds[g.index()]
    }

    /// All per-group bounds, indexed by group.
    #[inline]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-sink assignment as raw indices.
    pub fn assignment(&self) -> Vec<usize> {
        self.assignment.iter().map(|g| g.index()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignments_builds_members() {
        let g = Groups::from_assignments(vec![1, 0, 1, 1], 2).unwrap();
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.sink_count(), 4);
        assert_eq!(g.members(GroupId(0)), &[1]);
        assert_eq!(g.members(GroupId(1)), &[0, 2, 3]);
        assert_eq!(g.group_of(3), GroupId(1));
    }

    #[test]
    fn rejects_out_of_range_group() {
        let err = Groups::from_assignments(vec![0, 2], 2).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::GroupOutOfRange {
                sink: 1,
                group: 2,
                ..
            }
        ));
    }

    #[test]
    fn rejects_empty_group() {
        let err = Groups::from_assignments(vec![0, 0], 2).unwrap_err();
        assert_eq!(err, InstanceError::EmptyGroup(1));
    }

    #[test]
    fn single_group_helper() {
        let g = Groups::single(5).unwrap();
        assert_eq!(g.group_count(), 1);
        assert_eq!(g.members(GroupId(0)).len(), 5);
        assert!(Groups::single(0).is_err());
    }

    #[test]
    fn bounds_default_zero_and_are_settable() {
        let g = Groups::from_assignments(vec![0, 1], 2).unwrap();
        assert_eq!(g.bound(GroupId(0)), 0.0);
        let g = g.with_uniform_bound(1e-11).unwrap();
        assert_eq!(g.bound(GroupId(1)), 1e-11);
        let g = g.with_bounds(vec![0.0, 5e-12]).unwrap();
        assert_eq!(g.bound(GroupId(0)), 0.0);
        assert_eq!(g.bound(GroupId(1)), 5e-12);
    }

    #[test]
    fn bad_bounds_rejected() {
        let g = Groups::from_assignments(vec![0], 1).unwrap();
        assert!(g.clone().with_uniform_bound(-1.0).is_err());
        assert!(g.clone().with_uniform_bound(f64::NAN).is_err());
        assert!(g.clone().with_bounds(vec![0.0, 0.0]).is_err());
        assert!(g.with_bounds(vec![-0.5]).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = InstanceError::GroupOutOfRange {
            sink: 3,
            group: 9,
            group_count: 4,
        };
        assert!(e.to_string().contains("sink 3"));
        assert!(e.to_string().contains("group 9"));
    }
}
