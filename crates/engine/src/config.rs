//! Engine tuning knobs.

use std::sync::OnceLock;

/// Cached result of the `ASTDME_DEBUG` environment lookup: the hot merge
/// path must not call `env::var_os` per merge, so the environment is read
/// once per process and latched into every [`EngineConfig`] at
/// construction.
fn debug_from_env() -> bool {
    static DEBUG: OnceLock<bool> = OnceLock::new();
    *DEBUG.get_or_init(|| std::env::var_os("ASTDME_DEBUG").is_some())
}

/// Configuration of the merge engine.
///
/// The defaults reproduce the paper's setup; the knobs exist for the
/// ablation benches and for callers trading runtime against wirelength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// How many wire splits to sample when a merge leaves a continuum of
    /// feasible splits (different-group SDR merges and bounded-skew
    /// windows). Zero-skew same-group merges always produce exactly one.
    pub split_samples: usize,
    /// Maximum number of candidates kept per subtree root after pruning.
    pub max_candidates: usize,
    /// How many child-candidate pairs (ranked by distance) to expand per
    /// merge.
    pub pair_limit: usize,
    /// Absolute skew tolerance in seconds for feasibility checks.
    pub skew_tol: f64,
    /// Fuse sink groups globally on first contact (the paper's Fig. 6
    /// steps 6–7: "merge all sink groups involved"), fixing their relative
    /// offsets at the fusing merge. This guarantees every later merge
    /// shares at most one effective group, so offset conflicts — and the
    /// wire sneaking they force — never arise. Disable to exercise the
    /// general per-subtree offset-adjustment machinery instead (more
    /// faithful to reading instance 2 literally, usually more wire).
    pub fuse_groups: bool,
    /// Emit diagnostics for anomalous merges (oversized snakes, offset
    /// conflicts) to stderr. Defaults to whether `ASTDME_DEBUG` was set in
    /// the environment when the first config was built; the lookup happens
    /// once per process, never in the merge loop.
    pub debug: bool,
}

impl EngineConfig {
    /// A budget-friendly configuration for very large instances: fewer
    /// candidates and samples.
    pub fn fast() -> Self {
        Self {
            split_samples: 3,
            max_candidates: 4,
            pair_limit: 2,
            skew_tol: 1e-18,
            fuse_groups: true,
            debug: debug_from_env(),
        }
    }

    /// Stable `u64` encoding of the routing-relevant knobs for
    /// content-addressed cache fingerprints. `debug` is deliberately
    /// excluded: it only gates stderr diagnostics and never changes a
    /// routed bit, so configs differing in `debug` alone must share a
    /// fingerprint.
    #[inline]
    pub fn fingerprint_words(&self) -> [u64; 5] {
        [
            self.split_samples as u64,
            self.max_candidates as u64,
            self.pair_limit as u64,
            self.skew_tol.to_bits(),
            self.fuse_groups as u64,
        ]
    }

    /// A thorough configuration: more positional diversity, slower.
    pub fn thorough() -> Self {
        Self {
            split_samples: 9,
            max_candidates: 12,
            pair_limit: 4,
            skew_tol: 1e-18,
            fuse_groups: true,
            debug: debug_from_env(),
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            split_samples: 5,
            max_candidates: 8,
            pair_limit: 3,
            skew_tol: 1e-18,
            fuse_groups: true,
            debug: debug_from_env(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_effort() {
        let f = EngineConfig::fast();
        let d = EngineConfig::default();
        let t = EngineConfig::thorough();
        assert!(f.split_samples <= d.split_samples);
        assert!(d.split_samples <= t.split_samples);
        assert!(f.max_candidates <= d.max_candidates);
        assert!(d.max_candidates <= t.max_candidates);
    }

    #[test]
    fn fingerprint_words_ignore_debug_but_track_knobs() {
        let base = EngineConfig::default();
        let loud = EngineConfig {
            debug: true,
            ..base
        };
        let quiet = EngineConfig {
            debug: false,
            ..base
        };
        assert_eq!(
            loud.fingerprint_words(),
            quiet.fingerprint_words(),
            "debug is diagnostics-only"
        );
        assert_ne!(
            base.fingerprint_words(),
            EngineConfig::fast().fingerprint_words()
        );
        let loose = EngineConfig {
            skew_tol: 1e-15,
            ..base
        };
        assert_ne!(base.fingerprint_words(), loose.fingerprint_words());
        let unfused = EngineConfig {
            fuse_groups: false,
            ..base
        };
        assert_ne!(base.fingerprint_words(), unfused.fingerprint_words());
    }

    #[test]
    fn debug_flag_is_a_plain_field() {
        let quiet = EngineConfig {
            debug: false,
            ..EngineConfig::default()
        };
        let loud = EngineConfig {
            debug: true,
            ..quiet
        };
        assert!(!quiet.debug);
        assert!(loud.debug);
    }
}
