//! Subtree-root candidates: exact iso-delay embeddings with provenance.

use astdme_geom::Trr;

use crate::DelayMap;

/// How a candidate came to be — the provenance used by top-down embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CandKind {
    /// A leaf: the subtree is the single sink with this index.
    Leaf(usize),
    /// A merge of two child nodes' candidates.
    Merge {
        /// Index of the chosen candidate within the first child node.
        cand_a: usize,
        /// Index of the chosen candidate within the second child node.
        cand_b: usize,
        /// Electrical wire length from the merge point to child `a`'s root.
        ea: f64,
        /// Electrical wire length from the merge point to child `b`'s root.
        eb: f64,
    },
}

/// One feasible embedding of a subtree root.
///
/// Everything here is exact for any root position inside `region`:
/// the [`Trr`] is an iso-delay locus, so `delays`, `cap` and `wirelen` do
/// not depend on where in the region the root lands during top-down
/// embedding. A subtree keeps a small set of candidates (different wire
/// splits of its last merge); the parent merge chooses among them.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Feasible root positions (all equivalent for delay purposes).
    pub region: Trr,
    /// Exact per-group delay intervals from the root.
    pub delays: DelayMap,
    /// Total load capacitance of the subtree (sinks + wire).
    pub cap: f64,
    /// Total wirelength accumulated below (and including) this root's
    /// merge, in µm of routed wire (snaking included).
    pub wirelen: f64,
    /// Provenance for top-down embedding.
    pub kind: CandKind,
}

impl Candidate {
    /// Total wire this merge spent, per the provenance (0 for leaves).
    pub fn merge_wire(&self) -> f64 {
        match self.kind {
            CandKind::Leaf(_) => 0.0,
            CandKind::Merge { ea, eb, .. } => ea + eb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayMap, GroupId};
    use astdme_geom::Point;

    #[test]
    fn merge_wire_reads_provenance() {
        let leaf = Candidate {
            region: Trr::from_point(Point::new(0.0, 0.0)),
            delays: DelayMap::leaf(GroupId(0)),
            cap: 1e-14,
            wirelen: 0.0,
            kind: CandKind::Leaf(7),
        };
        assert_eq!(leaf.merge_wire(), 0.0);
        let merged = Candidate {
            kind: CandKind::Merge {
                cand_a: 0,
                cand_b: 1,
                ea: 3.0,
                eb: 4.5,
            },
            ..leaf
        };
        assert_eq!(merged.merge_wire(), 7.5);
    }
}
