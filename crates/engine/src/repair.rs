//! Post-embedding skew repair: leaf-edge snaking until every group meets
//! its bound.
//!
//! The bottom-up engine resolves almost all skew constraints during
//! merging; the exception is a *deep* offset conflict — two subtrees that
//! each contain the same two groups with incompatible frozen offsets,
//! where the single-level wire sneaking of Kim 2006 Ch. V.E (and of this
//! engine's offset adjustment) has no remaining degree of freedom. Rather
//! than hand back a constraint-violating tree, the routers run this repair
//! pass: iteratively extend (snake) the leaf edges of too-fast sinks until
//! every group's delay spread is within its bound. Extending a leaf edge
//! only ever *adds* delay to that one sink (plus a small common upstream
//! shift through its added capacitance), so the iteration converges
//! geometrically; all added wire is real and counted in the wirelength —
//! the comparison against baselines stays honest.

use astdme_delay::DelayModel;

use crate::{audit, Instance, RoutedTree};

/// Result of [`repair_group_skew`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The repaired tree (identical to the input when no repair needed).
    pub tree: RoutedTree,
    /// Iterations of the equalization loop actually used.
    pub iterations: usize,
    /// Worst bound violation before repair (seconds).
    pub violation_before: f64,
    /// Worst bound violation after repair.
    pub violation_after: f64,
    /// Wirelength added by snaking (µm).
    pub wire_added: f64,
}

/// Snakes leaf edges until every group's delay spread is within its bound
/// (plus `tol`), or `max_iters` is exhausted.
///
/// `tol` is an absolute delay tolerance; a relative floor of `1e-12 ×` the
/// largest sink delay is applied automatically so the pass behaves across
/// delay models with different units.
pub fn repair_group_skew(
    tree: &RoutedTree,
    inst: &Instance,
    model: &DelayModel,
    tol: f64,
    max_iters: usize,
) -> RepairOutcome {
    let mut current = tree.clone();
    let wire_before = current.total_wirelength();
    let mut violation_before = None;
    let mut iterations = 0;
    let mut violation_after = 0.0;

    for it in 0..max_iters.max(1) {
        let report = audit(&current, inst, model);
        let max_delay = report
            .sink_delays()
            .iter()
            .map(|&(_, d)| d.abs())
            .fold(0.0f64, f64::max);
        let tol_eff = tol.max(1e-12 * max_delay);

        // Per-group delay extremes.
        let k = inst.groups().group_count();
        let mut hi = vec![f64::NEG_INFINITY; k];
        for &(s, d) in report.sink_delays() {
            let g = inst.group_of(s).index();
            hi[g] = hi[g].max(d);
        }
        // Worst violation this round.
        let mut worst = 0.0f64;
        for (g, spread) in report.group_spreads().iter().enumerate() {
            worst = worst.max(spread - inst.groups().bound(astdme_groupid(g)));
        }
        if violation_before.is_none() {
            violation_before = Some(worst.max(0.0));
        }
        violation_after = worst.max(0.0);
        if worst <= tol_eff {
            break;
        }
        iterations = it + 1;

        // Extend the leaf edge of every sink below its group's floor.
        //
        // The delay a leaf extension Δw adds to its own sink is
        //   [r·(c·w + C_sink) + R_upstream·c] · Δw + O(Δw²):
        // the edge-local term plus the extension's capacitance seen
        // through the entire upstream path resistance (which usually
        // dominates). A Newton step with this exact derivative converges
        // without overshoot; pure inversion of the edge-local delay
        // diverges because it under-sizes the true effect several-fold.
        let (r_unit, c_unit) = match model.rc() {
            Some(p) => (p.r_per_um(), p.c_per_um()),
            // Pathlength model: delay is length, derivative is exactly 1.
            None => (0.0, 0.0),
        };
        let mut nodes = current.nodes().to_vec();
        // Path resistance from the source to each node's far end.
        let mut r_path = vec![0.0f64; nodes.len()];
        {
            let children = current.children();
            let mut stack = vec![0usize];
            while let Some(i) = stack.pop() {
                let upstream = match nodes[i].parent {
                    Some(p) => r_path[p],
                    None => 0.0,
                };
                r_path[i] = upstream + r_unit * nodes[i].wire;
                stack.extend(children[i].iter().copied());
            }
        }
        let node_of_sink: Vec<(usize, usize)> = current.sink_nodes().collect();
        for &(node, sink) in &node_of_sink {
            let g = inst.group_of(sink);
            let floor = hi[g.index()] - inst.groups().bound(g);
            let d = report.sink_delay(sink).expect("audited sink");
            let needed = floor - d;
            if needed > tol_eff * 0.25 {
                let cap = inst.sinks()[sink].cap;
                let w = nodes[node].wire;
                let derivative = match model {
                    DelayModel::Pathlength => 1.0,
                    DelayModel::Elmore(_) => r_unit * (c_unit * w + cap) + r_path[node] * c_unit,
                };
                nodes[node].wire = w + needed / derivative;
            }
        }
        current = RoutedTree::new(current.source(), nodes);
    }

    RepairOutcome {
        wire_added: current.total_wirelength() - wire_before,
        tree: current,
        iterations,
        violation_before: violation_before.unwrap_or(0.0),
        violation_after,
    }
}

fn astdme_groupid(g: usize) -> crate::GroupId {
    crate::GroupId(g as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Groups, RoutedNode, Sink};
    use astdme_delay::RcParams;
    use astdme_geom::Point;

    /// A deliberately unbalanced 2-sink tree.
    fn unbalanced() -> (RoutedTree, Instance) {
        let tree = RoutedTree::new(
            Point::new(0.0, 0.0),
            vec![
                RoutedNode {
                    pos: Point::new(100.0, 0.0),
                    parent: None,
                    wire: 100.0,
                    sink: None,
                },
                RoutedNode {
                    pos: Point::new(300.0, 0.0),
                    parent: Some(0),
                    wire: 200.0,
                    sink: Some(0),
                },
                RoutedNode {
                    pos: Point::new(150.0, 0.0),
                    parent: Some(0),
                    wire: 50.0,
                    sink: Some(1),
                },
            ],
        );
        let inst = Instance::new(
            vec![
                Sink::new(Point::new(300.0, 0.0), 1e-14),
                Sink::new(Point::new(150.0, 0.0), 1e-14),
            ],
            Groups::single(2).unwrap(),
            RcParams::default(),
            Point::new(0.0, 0.0),
        )
        .unwrap();
        (tree, inst)
    }

    #[test]
    fn repair_equalizes_a_skewed_tree() {
        let (tree, inst) = unbalanced();
        let model = DelayModel::elmore(*inst.rc());
        let before = audit(&tree, &inst, &model);
        assert!(before.max_intra_group_skew() > 1e-15);

        let out = repair_group_skew(&tree, &inst, &model, 1e-18, 60);
        assert!(out.violation_before > 1e-15);
        assert!(
            out.violation_after < 1e-15,
            "violation after repair: {}",
            out.violation_after
        );
        assert!(out.wire_added > 0.0);
        assert!(out.iterations >= 1);

        let after = audit(&out.tree, &inst, &model);
        assert!(after.max_intra_group_skew() < 1e-15);
        // Only the fast sink's leaf edge grew.
        assert_eq!(out.tree.nodes()[1].wire, tree.nodes()[1].wire);
        assert!(out.tree.nodes()[2].wire > tree.nodes()[2].wire);
    }

    #[test]
    fn repair_is_a_noop_on_balanced_trees() {
        let (tree, inst) = unbalanced();
        let model = DelayModel::elmore(*inst.rc());
        let out = repair_group_skew(&tree, &inst, &model, 1e-18, 60);
        let again = repair_group_skew(&out.tree, &inst, &model, 1e-18, 60);
        assert_eq!(again.iterations, 0);
        assert!(again.wire_added.abs() < 1e-9);
        assert_eq!(again.tree, out.tree);
    }

    #[test]
    fn repair_respects_nonzero_bounds() {
        let (tree, inst) = unbalanced();
        let model = DelayModel::elmore(*inst.rc());
        let skew = audit(&tree, &inst, &model).max_intra_group_skew();
        // Bound larger than the skew: nothing to do.
        let loose = inst
            .with_groups(
                Groups::single(2)
                    .unwrap()
                    .with_uniform_bound(skew * 2.0)
                    .unwrap(),
            )
            .unwrap();
        let out = repair_group_skew(&tree, &loose, &model, 1e-18, 60);
        assert_eq!(out.iterations, 0);
        // Bound at half the skew: repair down to it, not to zero.
        let tight = inst
            .with_groups(
                Groups::single(2)
                    .unwrap()
                    .with_uniform_bound(skew * 0.5)
                    .unwrap(),
            )
            .unwrap();
        let out = repair_group_skew(&tree, &tight, &model, 1e-18, 60);
        let after = audit(&out.tree, &tight, &model);
        assert!(after.max_intra_group_skew() <= skew * 0.5 + 1e-15);
        assert!(
            after.max_intra_group_skew() > skew * 0.25,
            "should not over-repair past the bound"
        );
    }

    #[test]
    fn repair_works_under_pathlength_model() {
        let (tree, inst) = unbalanced();
        let model = DelayModel::pathlength();
        let out = repair_group_skew(&tree, &inst, &model, 1e-9, 20);
        let after = audit(&out.tree, &inst, &model);
        // Pathlength model: linear, converges in one iteration.
        assert!(after.max_intra_group_skew() < 1e-6);
        assert!(out.iterations <= 2);
    }

    #[test]
    fn repair_multi_group_only_touches_violating_groups() {
        let (tree, inst) = unbalanced();
        let two = inst
            .with_groups(Groups::from_assignments(vec![0, 1], 2).unwrap())
            .unwrap();
        // Each group has one sink: spreads are zero, nothing to repair.
        let model = DelayModel::elmore(*two.rc());
        let out = repair_group_skew(&tree, &two, &model, 1e-18, 60);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.tree, tree);
    }
}
