//! Independent verification of a routed tree.
//!
//! The audit re-derives every electrical quantity *from the routed tree
//! alone* — downstream capacitances bottom-up, then source-to-sink Elmore
//! delays top-down — and reports wirelength and skews. It shares no state
//! with the merge engine's bookkeeping, so agreement between the two is a
//! strong end-to-end correctness check (used heavily by the test suite),
//! and it doubles as the measurement harness for the experiment tables.

use astdme_delay::DelayModel;

use crate::{GroupId, Instance, RoutedTree};

/// Measured electrical properties of a routed clock tree.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    wirelength: f64,
    snaking: f64,
    sink_delays: Vec<(usize, f64)>,
    group_spreads: Vec<f64>,
    global_skew: f64,
}

impl AuditReport {
    /// Total routed wirelength including the source connection.
    #[inline]
    pub fn wirelength(&self) -> f64 {
        self.wirelength
    }

    /// Total snaking detour length.
    #[inline]
    pub fn snaking(&self) -> f64 {
        self.snaking
    }

    /// `(sink index, source-to-sink delay)` for every sink, ascending by
    /// sink index.
    #[inline]
    pub fn sink_delays(&self) -> &[(usize, f64)] {
        &self.sink_delays
    }

    /// Delay spread (max − min) within each group, indexed by group.
    #[inline]
    pub fn group_spreads(&self) -> &[f64] {
        &self.group_spreads
    }

    /// The worst intra-group skew across all groups — the constraint the
    /// AST problem must satisfy.
    pub fn max_intra_group_skew(&self) -> f64 {
        self.group_spreads.iter().copied().fold(0.0, f64::max)
    }

    /// Global skew: max − min delay over *all* sinks regardless of group
    /// (the "Maximum Skew" column of the paper's tables; for AST routing
    /// this includes the unconstrained inter-group offsets).
    #[inline]
    pub fn global_skew(&self) -> f64 {
        self.global_skew
    }

    /// Delay of a specific sink.
    pub fn sink_delay(&self, sink: usize) -> Option<f64> {
        self.sink_delays
            .binary_search_by_key(&sink, |(s, _)| *s)
            .ok()
            .map(|i| self.sink_delays[i].1)
    }
}

/// Audits `tree` against `inst` under `model`.
///
/// # Panics
///
/// Panics if the tree's sink indices do not cover the instance's sinks
/// exactly once (which would indicate a routing bug, not bad input).
pub fn audit(tree: &RoutedTree, inst: &Instance, model: &DelayModel) -> AuditReport {
    let n = tree.nodes().len();
    let children = tree.children();

    // Bottom-up: subtree capacitance at each node (sink load + child wire
    // and subtree caps). Iterative post-order over the explicit tree.
    let order = post_order(&children);
    let mut cap = vec![0.0f64; n];
    let mut seen = vec![false; inst.sink_count()];
    for &i in &order {
        let node = &tree.nodes()[i];
        if let Some(s) = node.sink {
            assert!(!seen[s], "sink {s} appears twice in the routed tree");
            seen[s] = true;
            cap[i] += inst.sinks()[s].cap;
        }
        for &c in &children[i] {
            cap[i] += cap[c] + model.wire_cap(tree.nodes()[c].wire);
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "routed tree does not reach every sink"
    );

    // Top-down: Elmore delay from the source. The source connection wire
    // drives the root's entire subtree.
    let mut delay = vec![0.0f64; n];
    for &i in order.iter().rev() {
        let node = &tree.nodes()[i];
        let upstream = match node.parent {
            Some(p) => delay[p],
            None => 0.0,
        };
        delay[i] = upstream + model.wire_delay(node.wire, cap[i]);
    }

    let mut sink_delays: Vec<(usize, f64)> = tree
        .sink_nodes()
        .map(|(node, sink)| (sink, delay[node]))
        .collect();
    sink_delays.sort_by_key(|(s, _)| *s);

    let k = inst.groups().group_count();
    let mut lo = vec![f64::INFINITY; k];
    let mut hi = vec![f64::NEG_INFINITY; k];
    for &(s, d) in &sink_delays {
        let g = inst.group_of(s).index();
        lo[g] = lo[g].min(d);
        hi[g] = hi[g].max(d);
    }
    let group_spreads: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| h - l).collect();
    let all_lo = sink_delays
        .iter()
        .map(|&(_, d)| d)
        .fold(f64::INFINITY, f64::min);
    let all_hi = sink_delays
        .iter()
        .map(|&(_, d)| d)
        .fold(f64::NEG_INFINITY, f64::max);

    AuditReport {
        wirelength: tree.total_wirelength(),
        snaking: tree.total_snaking(),
        sink_delays,
        group_spreads,
        global_skew: all_hi - all_lo,
    }
}

/// Children-before-parent ordering of the tree nodes.
fn post_order(children: &[Vec<usize>]) -> Vec<usize> {
    let mut order = Vec::with_capacity(children.len());
    let mut stack = vec![(0usize, false)];
    while let Some((i, expanded)) = stack.pop() {
        if expanded {
            order.push(i);
        } else {
            stack.push((i, true));
            for &c in &children[i] {
                stack.push((c, false));
            }
        }
    }
    order
}

/// Per-group delay extremes `(group, min delay, max delay)` — the
/// inter-group offsets `S_{i,j}` of the paper's Ch. II fall out as
/// differences between entries.
pub fn group_ranges(report: &AuditReport, inst: &Instance) -> Vec<(GroupId, f64, f64)> {
    let k = inst.groups().group_count();
    let mut lo = vec![f64::INFINITY; k];
    let mut hi = vec![f64::NEG_INFINITY; k];
    for &(s, d) in report.sink_delays() {
        let g = inst.group_of(s).index();
        lo[g] = lo[g].min(d);
        hi[g] = hi[g].max(d);
    }
    (0..k).map(|g| (GroupId(g as u32), lo[g], hi[g])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Groups, RoutedNode, Sink};
    use astdme_delay::RcParams;
    use astdme_geom::Point;

    /// Hand-built 2-sink tree with a known Elmore solution.
    fn fixture() -> (RoutedTree, Instance) {
        // source at (0,0) -> root at (100,0) -> sinks at (200,0) and
        // (100,100), each 100 um from the root.
        let tree = RoutedTree::new(
            Point::new(0.0, 0.0),
            vec![
                RoutedNode {
                    pos: Point::new(100.0, 0.0),
                    parent: None,
                    wire: 100.0,
                    sink: None,
                },
                RoutedNode {
                    pos: Point::new(200.0, 0.0),
                    parent: Some(0),
                    wire: 100.0,
                    sink: Some(0),
                },
                RoutedNode {
                    pos: Point::new(100.0, 100.0),
                    parent: Some(0),
                    wire: 100.0,
                    sink: Some(1),
                },
            ],
        );
        let inst = Instance::new(
            vec![
                Sink::new(Point::new(200.0, 0.0), 1e-14),
                Sink::new(Point::new(100.0, 100.0), 1e-14),
            ],
            Groups::single(2).unwrap(),
            RcParams::default(),
            Point::new(0.0, 0.0),
        )
        .unwrap();
        (tree, inst)
    }

    #[test]
    fn audit_matches_hand_computed_elmore() {
        let (tree, inst) = fixture();
        let model = DelayModel::elmore(*inst.rc());
        let report = audit(&tree, &inst, &model);

        let (r, c) = (0.003, 2e-17);
        // Leaf edges: each 100 um driving one sink cap.
        let d_leaf = r * 100.0 * (c * 100.0 / 2.0 + 1e-14);
        // Subtree cap at root: 2 sinks + 2 x 100 um of wire.
        let cap_root = 2e-14 + 2.0 * c * 100.0;
        let d_root = r * 100.0 * (c * 100.0 / 2.0 + cap_root);
        let expected = d_root + d_leaf;
        for &(_, d) in report.sink_delays() {
            assert!((d - expected).abs() < 1e-22, "{d} vs {expected}");
        }
        assert!(report.max_intra_group_skew() < 1e-22);
        assert_eq!(report.wirelength(), 300.0);
        assert_eq!(report.snaking(), 0.0);
    }

    #[test]
    fn audit_detects_imbalance() {
        let (mut tree, inst) = fixture();
        // Lengthen one leaf edge: delays diverge.
        let mut nodes = tree.nodes().to_vec();
        nodes[1].wire = 150.0;
        tree = RoutedTree::new(tree.source(), nodes);
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        assert!(report.max_intra_group_skew() > 1e-15);
        assert_eq!(report.global_skew(), report.max_intra_group_skew());
        // The extra 50 um is counted as snaking (positions unchanged).
        assert_eq!(report.snaking(), 50.0);
    }

    #[test]
    fn audit_separates_groups() {
        let (tree, inst) = fixture();
        let inst2 = inst
            .with_groups(Groups::from_assignments(vec![0, 1], 2).unwrap())
            .unwrap();
        let report = audit(&tree, &inst2, &DelayModel::elmore(*inst2.rc()));
        // Balanced tree: zero everywhere, but now two per-group spreads.
        assert_eq!(report.group_spreads().len(), 2);
        assert!(report.max_intra_group_skew() < 1e-22);
        let ranges = group_ranges(&report, &inst2);
        assert_eq!(ranges.len(), 2);
    }

    #[test]
    fn sink_delay_lookup() {
        let (tree, inst) = fixture();
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        assert!(report.sink_delay(0).is_some());
        assert!(report.sink_delay(5).is_none());
    }

    #[test]
    #[should_panic(expected = "does not reach every sink")]
    fn audit_rejects_missing_sinks() {
        let (tree, inst) = fixture();
        let bigger = Instance::new(
            vec![
                Sink::new(Point::new(200.0, 0.0), 1e-14),
                Sink::new(Point::new(100.0, 100.0), 1e-14),
                Sink::new(Point::new(0.0, 500.0), 1e-14),
            ],
            Groups::single(3).unwrap(),
            *inst.rc(),
            inst.source(),
        )
        .unwrap();
        let _ = audit(&tree, &bigger, &DelayModel::elmore(*inst.rc()));
    }
}
