//! Clock routing instances: sinks, groups, technology, source.

use astdme_delay::RcParams;
use astdme_geom::{Point, Rect};

use crate::{GroupId, Groups, InstanceError};

/// A clock sink (flip-flop clock pin): a position and a load capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sink {
    /// Placement of the sink in the Manhattan plane (µm).
    pub pos: Point,
    /// Input capacitance of the sink (F).
    pub cap: f64,
}

impl Sink {
    /// Creates a sink at `pos` with load capacitance `cap` (farads).
    #[inline]
    pub fn new(pos: Point, cap: f64) -> Self {
        Self { pos, cap }
    }
}

/// A complete associative-skew clock routing instance (the input of the
/// AST problem, Ch. II of the paper): sink placements and loads, the group
/// partition with intra-group skew bounds, interconnect technology, and the
/// clock source location.
///
/// ```
/// use astdme_delay::RcParams;
/// use astdme_engine::{Groups, Instance, Sink};
/// use astdme_geom::Point;
///
/// let sinks = vec![
///     Sink::new(Point::new(0.0, 0.0), 2e-14),
///     Sink::new(Point::new(500.0, 100.0), 1e-14),
/// ];
/// let inst = Instance::new(
///     sinks,
///     Groups::from_assignments(vec![0, 1], 2)?,
///     RcParams::default(),
///     Point::new(250.0, 50.0),
/// )?;
/// assert_eq!(inst.sink_count(), 2);
/// # Ok::<(), astdme_engine::InstanceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    sinks: Vec<Sink>,
    groups: Groups,
    rc: RcParams,
    source: Point,
}

impl Instance {
    /// Builds and validates an instance.
    ///
    /// # Errors
    ///
    /// Fails when there are no sinks, the group assignment does not cover
    /// the sinks, or a sink has a non-finite position / non-positive
    /// capacitance.
    pub fn new(
        sinks: Vec<Sink>,
        groups: Groups,
        rc: RcParams,
        source: Point,
    ) -> Result<Self, InstanceError> {
        if sinks.is_empty() {
            return Err(InstanceError::NoSinks);
        }
        if groups.sink_count() != sinks.len() {
            return Err(InstanceError::AssignmentLengthMismatch {
                sinks: sinks.len(),
                assignments: groups.sink_count(),
            });
        }
        for (i, s) in sinks.iter().enumerate() {
            let finite = s.pos.x.is_finite() && s.pos.y.is_finite();
            if !finite || !s.cap.is_finite() || s.cap <= 0.0 {
                return Err(InstanceError::BadSink(i));
            }
        }
        if !source.x.is_finite() || !source.y.is_finite() {
            return Err(InstanceError::BadSink(sinks.len()));
        }
        Ok(Self {
            sinks,
            groups,
            rc,
            source,
        })
    }

    /// The sinks.
    #[inline]
    pub fn sinks(&self) -> &[Sink] {
        &self.sinks
    }

    /// Number of sinks.
    #[inline]
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// The group partition and bounds.
    #[inline]
    pub fn groups(&self) -> &Groups {
        &self.groups
    }

    /// The group of sink `i`.
    #[inline]
    pub fn group_of(&self, i: usize) -> GroupId {
        self.groups.group_of(i)
    }

    /// Interconnect RC technology.
    #[inline]
    pub fn rc(&self) -> &RcParams {
        &self.rc
    }

    /// Clock source location `s0`.
    #[inline]
    pub fn source(&self) -> Point {
        self.source
    }

    /// Bounding box of all sink positions.
    pub fn bounding_box(&self) -> Rect {
        Rect::bounding(self.sinks.iter().map(|s| s.pos)).expect("validated non-empty")
    }

    /// Returns a copy of the instance with every sink position and the
    /// source translated by `(dx, dy)`. Groups, bounds, loads, and RC
    /// technology are unchanged.
    ///
    /// This is the normalization primitive of the content-addressed
    /// routing cache: translating by the negated bounding-box minimum
    /// corner maps the instance into its canonical frame (that corner's
    /// own coordinates become exactly `+0.0`).
    ///
    /// # Errors
    ///
    /// Fails if a translated coordinate overflows to a non-finite value.
    pub fn translated(&self, dx: f64, dy: f64) -> Result<Self, InstanceError> {
        let sinks = self
            .sinks
            .iter()
            .map(|s| Sink::new(s.pos.translated(dx, dy), s.cap))
            .collect();
        Self::new(
            sinks,
            self.groups.clone(),
            self.rc,
            self.source.translated(dx, dy),
        )
    }

    /// Returns a copy of the instance with the group partition replaced
    /// (e.g. to run the single-group baselines on the same placement).
    ///
    /// # Errors
    ///
    /// Fails if the new partition does not cover the sinks.
    pub fn with_groups(&self, groups: Groups) -> Result<Self, InstanceError> {
        Self::new(self.sinks.clone(), groups, self.rc, self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sinks2() -> Vec<Sink> {
        vec![
            Sink::new(Point::new(0.0, 0.0), 1e-14),
            Sink::new(Point::new(10.0, 5.0), 1e-14),
        ]
    }

    #[test]
    fn valid_instance_builds() {
        let inst = Instance::new(
            sinks2(),
            Groups::single(2).unwrap(),
            RcParams::default(),
            Point::new(5.0, 5.0),
        )
        .unwrap();
        assert_eq!(inst.sink_count(), 2);
        assert_eq!(inst.bounding_box().width(), 10.0);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        let err = Instance::new(
            Vec::new(),
            Groups::single(1).unwrap(),
            RcParams::default(),
            Point::default(),
        )
        .unwrap_err();
        assert_eq!(err, InstanceError::NoSinks);

        let err = Instance::new(
            sinks2(),
            Groups::single(3).unwrap(),
            RcParams::default(),
            Point::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            InstanceError::AssignmentLengthMismatch { .. }
        ));
    }

    #[test]
    fn rejects_bad_sinks() {
        let mut s = sinks2();
        s[1].cap = 0.0;
        let err = Instance::new(
            s,
            Groups::single(2).unwrap(),
            RcParams::default(),
            Point::default(),
        )
        .unwrap_err();
        assert_eq!(err, InstanceError::BadSink(1));

        let mut s = sinks2();
        s[0].pos = Point::new(f64::NAN, 0.0);
        assert!(Instance::new(
            s,
            Groups::single(2).unwrap(),
            RcParams::default(),
            Point::default()
        )
        .is_err());
    }

    #[test]
    fn translated_shifts_everything_and_validates() {
        let inst = Instance::new(
            sinks2(),
            Groups::single(2).unwrap(),
            RcParams::default(),
            Point::new(5.0, 5.0),
        )
        .unwrap();
        let moved = inst.translated(100.0, -50.0).unwrap();
        assert_eq!(moved.sinks()[1].pos, Point::new(110.0, -45.0));
        assert_eq!(moved.sinks()[1].cap, inst.sinks()[1].cap);
        assert_eq!(moved.source(), Point::new(105.0, -45.0));
        assert_eq!(moved.groups(), inst.groups());
        // Normalizing by the bounding-box min corner lands exactly at +0.0.
        let bb = moved.bounding_box();
        let norm = moved.translated(-bb.x0(), -bb.y0()).unwrap();
        assert_eq!(norm.bounding_box().x0().to_bits(), 0.0f64.to_bits());
        assert_eq!(norm.bounding_box().y0().to_bits(), 0.0f64.to_bits());
        // A translation producing non-finite coordinates is rejected.
        assert!(inst.translated(f64::INFINITY, 0.0).is_err());
    }

    #[test]
    fn with_groups_swaps_partition() {
        let inst = Instance::new(
            sinks2(),
            Groups::single(2).unwrap(),
            RcParams::default(),
            Point::default(),
        )
        .unwrap();
        let re = inst
            .with_groups(Groups::from_assignments(vec![0, 1], 2).unwrap())
            .unwrap();
        assert_eq!(re.groups().group_count(), 2);
        assert!(inst.with_groups(Groups::single(5).unwrap()).is_err());
    }
}
