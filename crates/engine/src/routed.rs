//! The final routed clock tree.

use astdme_geom::Point;

/// One node of a routed clock tree: an embedding point plus the electrical
/// wire length to its parent.
///
/// `wire` is the *routed* length (µm), which may exceed the Manhattan
/// distance between `pos` and the parent's position when the edge snakes;
/// the snaking detour is real wire and counts toward wirelength, delay and
/// capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutedNode {
    /// Embedding location.
    pub pos: Point,
    /// Index of the parent node, or `None` for the tree root (which
    /// connects straight to the clock source).
    pub parent: Option<usize>,
    /// Electrical wire length to the parent (to the source for the root).
    pub wire: f64,
    /// The sink this node drives, if it is a leaf.
    pub sink: Option<usize>,
}

/// A routed clock tree: the output of top-down embedding.
///
/// Node 0 is always the tree root; every other node's `parent` points to an
/// earlier... (strictly: to some valid index). The clock source is a
/// separate point feeding the root through the root's `wire`.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedTree {
    source: Point,
    nodes: Vec<RoutedNode>,
}

impl RoutedTree {
    /// Assembles a tree from nodes produced by embedding.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, node 0 has a parent, or any parent index
    /// is out of range / self-referential.
    pub fn new(source: Point, nodes: Vec<RoutedNode>) -> Self {
        assert!(!nodes.is_empty(), "a routed tree needs at least one node");
        assert!(nodes[0].parent.is_none(), "node 0 must be the root");
        for (i, n) in nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(p < nodes.len() && p != i, "node {i} has invalid parent {p}");
            } else {
                assert!(i == 0, "only node 0 may lack a parent");
            }
        }
        Self { source, nodes }
    }

    /// The clock source position `s0`.
    #[inline]
    pub fn source(&self) -> Point {
        self.source
    }

    /// All nodes; index 0 is the root.
    #[inline]
    pub fn nodes(&self) -> &[RoutedNode] {
        &self.nodes
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> &RoutedNode {
        &self.nodes[0]
    }

    /// Total routed wirelength, including the source connection and all
    /// snaking detours.
    pub fn total_wirelength(&self) -> f64 {
        self.nodes.iter().map(|n| n.wire).sum()
    }

    /// Iterates `(node index, sink index)` over all sink leaves.
    pub fn sink_nodes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.sink.map(|s| (i, s)))
    }

    /// Children adjacency: `children[i]` lists the node indices whose
    /// parent is `i`.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                ch[p].push(i);
            }
        }
        ch
    }

    /// Sum of snaking detour lengths: routed wire beyond the Manhattan
    /// distance of each edge (diagnostic for the ablation benches).
    pub fn total_snaking(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| {
                let parent_pos = match n.parent {
                    Some(p) => self.nodes[p].pos,
                    None => self.source,
                };
                (n.wire - n.pos.dist(parent_pos)).max(0.0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tree() -> RoutedTree {
        RoutedTree::new(
            Point::new(0.0, 0.0),
            vec![
                RoutedNode {
                    pos: Point::new(1.0, 0.0),
                    parent: None,
                    wire: 1.0,
                    sink: None,
                },
                RoutedNode {
                    pos: Point::new(3.0, 0.0),
                    parent: Some(0),
                    wire: 2.0,
                    sink: Some(0),
                },
                RoutedNode {
                    pos: Point::new(1.0, 2.0),
                    parent: Some(0),
                    wire: 5.0, // snaked: Manhattan distance is 2
                    sink: Some(1),
                },
            ],
        )
    }

    #[test]
    fn wirelength_sums_all_edges() {
        assert_eq!(tiny_tree().total_wirelength(), 8.0);
    }

    #[test]
    fn snaking_counts_detours_only() {
        assert_eq!(tiny_tree().total_snaking(), 3.0);
    }

    #[test]
    fn children_adjacency() {
        let ch = tiny_tree().children();
        assert_eq!(ch[0], vec![1, 2]);
        assert!(ch[1].is_empty());
    }

    #[test]
    fn sink_nodes_enumerates_leaves() {
        let sinks: Vec<_> = tiny_tree().sink_nodes().collect();
        assert_eq!(sinks, vec![(1, 0), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "invalid parent")]
    fn bad_parent_rejected() {
        let _ = RoutedTree::new(
            Point::new(0.0, 0.0),
            vec![
                RoutedNode {
                    pos: Point::new(0.0, 0.0),
                    parent: None,
                    wire: 0.0,
                    sink: None,
                },
                RoutedNode {
                    pos: Point::new(1.0, 0.0),
                    parent: Some(9),
                    wire: 1.0,
                    sink: Some(0),
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_tree_rejected() {
        let _ = RoutedTree::new(Point::new(0.0, 0.0), Vec::new());
    }
}
