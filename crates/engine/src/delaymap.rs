//! Per-group delay bookkeeping for subtree roots.

use core::fmt;

use crate::GroupId;

/// The interval of root-to-sink delays for one group within a subtree.
///
/// A subtree satisfying a group's skew bound has `hi - lo <= bound`; once
/// two sinks share a subtree their delay difference is frozen (any upstream
/// wire delays both equally), which is why bounds are enforced at merge
/// time and never re-checked above.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayRange {
    /// Fastest sink of the group in this subtree (seconds from the root).
    pub lo: f64,
    /// Slowest sink of the group in this subtree.
    pub hi: f64,
}

impl DelayRange {
    /// A degenerate range (single delay).
    #[inline]
    pub fn point(t: f64) -> Self {
        Self { lo: t, hi: t }
    }

    /// `hi - lo`: the group's delay spread in this subtree.
    #[inline]
    pub fn spread(&self) -> f64 {
        self.hi - self.lo
    }

    /// Both ends shifted by a common wire delay `d`.
    #[inline]
    pub fn shift(&self, d: f64) -> Self {
        Self {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Smallest range covering both inputs (merging two subtrees' sinks of
    /// the same group).
    #[inline]
    pub fn hull(&self, other: &Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for DelayRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3e}, {:.3e}]", self.lo, self.hi)
    }
}

/// Sorted map from [`GroupId`] to [`DelayRange`]: for every group with at
/// least one sink in the subtree, the exact interval of root-to-sink
/// delays.
///
/// This is the state that makes associative-skew merging compositional:
/// the four merge cases of the paper's Fig. 6 reduce to which groups two
/// maps share.
///
/// ```
/// use astdme_engine::{DelayMap, DelayRange, GroupId};
///
/// let a = DelayMap::leaf(GroupId(0));
/// let b = DelayMap::leaf(GroupId(1));
/// let m = a.shifted(1e-12).merge(&b.shifted(2e-12));
/// assert_eq!(m.groups().count(), 2);
/// assert_eq!(m.range(GroupId(0)).unwrap().lo, 1e-12);
/// assert_eq!(m.range(GroupId(1)).unwrap().hi, 2e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DelayMap {
    // Sorted by GroupId; typically 1-4 entries, so a Vec beats any map.
    entries: Vec<(GroupId, DelayRange)>,
}

impl DelayMap {
    /// The map of a leaf subtree: one group at delay zero.
    pub fn leaf(g: GroupId) -> Self {
        Self {
            entries: vec![(g, DelayRange::point(0.0))],
        }
    }

    /// Builds from entries, sorting by group.
    ///
    /// # Panics
    ///
    /// Panics if a group appears twice.
    pub fn from_entries(mut entries: Vec<(GroupId, DelayRange)>) -> Self {
        entries.sort_by_key(|(g, _)| *g);
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate group {} in delay map", w[0].0);
        }
        Self { entries }
    }

    /// The delay range for group `g`, if present.
    pub fn range(&self, g: GroupId) -> Option<DelayRange> {
        self.entries
            .binary_search_by_key(&g, |(gg, _)| *gg)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Iterates `(group, range)` pairs in ascending group order.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, DelayRange)> + '_ {
        self.entries.iter().copied()
    }

    /// Iterates the groups present.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.entries.iter().map(|(g, _)| *g)
    }

    /// Number of groups present.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.entries.len()
    }

    /// All ranges shifted by a common wire delay `d` (the effect of the
    /// wire from a new merge point down to this subtree's root).
    pub fn shifted(&self, d: f64) -> Self {
        Self {
            entries: self.entries.iter().map(|(g, r)| (*g, r.shift(d))).collect(),
        }
    }

    /// Groups present in both maps, ascending — the "shared groups" that
    /// constrain a merge (empty ⇒ the paper's different-groups case).
    pub fn shared_groups(&self, other: &Self) -> Vec<GroupId> {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.entries[i].0);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Merges two maps (ranges hulled for shared groups). Callers are
    /// responsible for shifting each side by its wire delay first.
    pub fn merge(&self, other: &Self) -> Self {
        let (mut i, mut j) = (0, 0);
        let mut entries = Vec::with_capacity(self.entries.len() + other.entries.len());
        while i < self.entries.len() || j < other.entries.len() {
            if j >= other.entries.len() {
                entries.push(self.entries[i]);
                i += 1;
            } else if i >= self.entries.len() {
                entries.push(other.entries[j]);
                j += 1;
            } else {
                match self.entries[i].0.cmp(&other.entries[j].0) {
                    std::cmp::Ordering::Less => {
                        entries.push(self.entries[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        entries.push(other.entries[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        entries.push((
                            self.entries[i].0,
                            self.entries[i].1.hull(&other.entries[j].1),
                        ));
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        Self { entries }
    }

    /// The largest spread across all groups (for invariant checks).
    pub fn max_spread(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, r)| r.spread())
            .fold(0.0, f64::max)
    }

    /// Extremes over all groups: `(min lo, max hi)`, or `None` if empty.
    pub fn overall_range(&self) -> Option<DelayRange> {
        let lo = self
            .entries
            .iter()
            .map(|(_, r)| r.lo)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .entries
            .iter()
            .map(|(_, r)| r.hi)
            .fold(f64::NEG_INFINITY, f64::max);
        if self.entries.is_empty() {
            None
        } else {
            Some(DelayRange { lo, hi })
        }
    }
}

impl fmt::Display for DelayMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (g, r)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{g}: {r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn leaf_is_zero_point() {
        let m = DelayMap::leaf(g(3));
        assert_eq!(m.group_count(), 1);
        let r = m.range(g(3)).unwrap();
        assert_eq!((r.lo, r.hi), (0.0, 0.0));
        assert!(m.range(g(0)).is_none());
    }

    #[test]
    fn shift_moves_all_ranges() {
        let m = DelayMap::from_entries(vec![
            (g(0), DelayRange { lo: 1.0, hi: 2.0 }),
            (g(1), DelayRange::point(5.0)),
        ])
        .shifted(10.0);
        assert_eq!(m.range(g(0)).unwrap().lo, 11.0);
        assert_eq!(m.range(g(1)).unwrap().hi, 15.0);
        // Spread is invariant under shift.
        assert_eq!(m.range(g(0)).unwrap().spread(), 1.0);
    }

    #[test]
    fn shared_groups_intersection() {
        let a = DelayMap::from_entries(vec![
            (g(0), DelayRange::point(0.0)),
            (g(2), DelayRange::point(0.0)),
            (g(5), DelayRange::point(0.0)),
        ]);
        let b = DelayMap::from_entries(vec![
            (g(2), DelayRange::point(0.0)),
            (g(3), DelayRange::point(0.0)),
            (g(5), DelayRange::point(0.0)),
        ]);
        assert_eq!(a.shared_groups(&b), vec![g(2), g(5)]);
        assert_eq!(
            DelayMap::leaf(g(0)).shared_groups(&DelayMap::leaf(g(1))),
            vec![]
        );
    }

    #[test]
    fn merge_hulls_shared_ranges() {
        let a = DelayMap::from_entries(vec![(g(0), DelayRange { lo: 1.0, hi: 2.0 })]);
        let b = DelayMap::from_entries(vec![
            (g(0), DelayRange { lo: 0.5, hi: 1.5 }),
            (g(1), DelayRange::point(7.0)),
        ]);
        let m = a.merge(&b);
        assert_eq!(m.group_count(), 2);
        let r0 = m.range(g(0)).unwrap();
        assert_eq!((r0.lo, r0.hi), (0.5, 2.0));
        assert_eq!(m.range(g(1)).unwrap().lo, 7.0);
    }

    #[test]
    fn merge_is_commutative() {
        let a = DelayMap::from_entries(vec![
            (g(0), DelayRange { lo: 0.0, hi: 1.0 }),
            (g(2), DelayRange::point(3.0)),
        ]);
        let b = DelayMap::from_entries(vec![
            (g(1), DelayRange::point(4.0)),
            (g(2), DelayRange { lo: 2.0, hi: 5.0 }),
        ]);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn max_spread_and_overall_range() {
        let m = DelayMap::from_entries(vec![
            (g(0), DelayRange { lo: 1.0, hi: 4.0 }),
            (g(1), DelayRange { lo: 0.0, hi: 2.0 }),
        ]);
        assert_eq!(m.max_spread(), 3.0);
        let o = m.overall_range().unwrap();
        assert_eq!((o.lo, o.hi), (0.0, 4.0));
        assert!(DelayMap::default().overall_range().is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate group")]
    fn duplicate_groups_rejected() {
        let _ = DelayMap::from_entries(vec![
            (g(0), DelayRange::point(0.0)),
            (g(0), DelayRange::point(1.0)),
        ]);
    }
}
