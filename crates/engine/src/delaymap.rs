//! Per-group delay bookkeeping for subtree roots.

use core::fmt;

use crate::GroupId;

/// The interval of root-to-sink delays for one group within a subtree.
///
/// A subtree satisfying a group's skew bound has `hi - lo <= bound`; once
/// two sinks share a subtree their delay difference is frozen (any upstream
/// wire delays both equally), which is why bounds are enforced at merge
/// time and never re-checked above.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayRange {
    /// Fastest sink of the group in this subtree (seconds from the root).
    pub lo: f64,
    /// Slowest sink of the group in this subtree.
    pub hi: f64,
}

impl DelayRange {
    /// A degenerate range (single delay).
    #[inline]
    pub fn point(t: f64) -> Self {
        Self { lo: t, hi: t }
    }

    /// `hi - lo`: the group's delay spread in this subtree.
    #[inline]
    pub fn spread(&self) -> f64 {
        self.hi - self.lo
    }

    /// Both ends shifted by a common wire delay `d`.
    #[inline]
    pub fn shift(&self, d: f64) -> Self {
        Self {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Smallest range covering both inputs (merging two subtrees' sinks of
    /// the same group).
    #[inline]
    pub fn hull(&self, other: &Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for DelayRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3e}, {:.3e}]", self.lo, self.hi)
    }
}

/// One `(group, range)` entry of a [`DelayMap`].
type Entry = (GroupId, DelayRange);

/// Inline capacity of a [`DelayMap`]: maps at or below this many groups
/// live entirely on the stack. Instances carry a handful of groups (the
/// paper's tables use 2–6), and a subtree's map can only ever hold groups
/// that actually reach it, so spills are rare even on unusual workloads.
const INLINE_GROUPS: usize = 4;

/// Small-map storage: inline array for the common case, heap spill beyond
/// [`INLINE_GROUPS`]. Keeping candidates' delay maps off the heap removes
/// one allocation per candidate from the merge hot path.
#[derive(Clone)]
enum Store {
    Inline(u8, [Entry; INLINE_GROUPS]),
    Heap(Vec<Entry>),
}

impl Store {
    const EMPTY_ENTRY: Entry = (GroupId(0), DelayRange { lo: 0.0, hi: 0.0 });

    fn as_slice(&self) -> &[Entry] {
        match self {
            Store::Inline(n, buf) => &buf[..*n as usize],
            Store::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [Entry] {
        match self {
            Store::Inline(n, buf) => &mut buf[..*n as usize],
            Store::Heap(v) => v,
        }
    }

    /// Appends an entry, spilling to the heap at capacity. Callers keep
    /// ascending group order themselves.
    fn push(&mut self, e: Entry) {
        match self {
            Store::Inline(n, buf) => {
                if (*n as usize) < INLINE_GROUPS {
                    buf[*n as usize] = e;
                    *n += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_GROUPS * 2);
                    v.extend_from_slice(buf);
                    v.push(e);
                    *self = Store::Heap(v);
                }
            }
            Store::Heap(v) => v.push(e),
        }
    }

    fn from_vec(v: Vec<Entry>) -> Self {
        if v.len() <= INLINE_GROUPS {
            let mut buf = [Self::EMPTY_ENTRY; INLINE_GROUPS];
            buf[..v.len()].copy_from_slice(&v);
            Store::Inline(v.len() as u8, buf)
        } else {
            Store::Heap(v)
        }
    }
}

impl Default for Store {
    fn default() -> Self {
        Store::Inline(0, [Self::EMPTY_ENTRY; INLINE_GROUPS])
    }
}

/// Sorted map from [`GroupId`] to [`DelayRange`]: for every group with at
/// least one sink in the subtree, the exact interval of root-to-sink
/// delays.
///
/// This is the state that makes associative-skew merging compositional:
/// the four merge cases of the paper's Fig. 6 reduce to which groups two
/// maps share.
///
/// Maps of up to `INLINE_GROUPS` groups are stored inline (no heap
/// allocation); larger maps spill to a `Vec` transparently. Since every
/// merge candidate carries a map, this keeps candidate construction — the
/// engine's innermost loop — allocation-free for realistic group counts.
///
/// ```
/// use astdme_engine::{DelayMap, DelayRange, GroupId};
///
/// let a = DelayMap::leaf(GroupId(0));
/// let b = DelayMap::leaf(GroupId(1));
/// let m = a.shifted(1e-12).merge(&b.shifted(2e-12));
/// assert_eq!(m.groups().count(), 2);
/// assert_eq!(m.range(GroupId(0)).unwrap().lo, 1e-12);
/// assert_eq!(m.range(GroupId(1)).unwrap().hi, 2e-12);
/// ```
#[derive(Clone, Default)]
pub struct DelayMap {
    // Sorted by GroupId; typically 1-4 entries, so a flat store beats any
    // tree or hash map.
    entries: Store,
}

impl DelayMap {
    /// The map of a leaf subtree: one group at delay zero.
    pub fn leaf(g: GroupId) -> Self {
        let mut entries = Store::default();
        entries.push((g, DelayRange::point(0.0)));
        Self { entries }
    }

    /// Builds from entries, sorting by group.
    ///
    /// # Panics
    ///
    /// Panics if a group appears twice.
    pub fn from_entries(mut entries: Vec<Entry>) -> Self {
        entries.sort_by_key(|(g, _)| *g);
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate group {} in delay map", w[0].0);
        }
        Self {
            entries: Store::from_vec(entries),
        }
    }

    /// The entries as a sorted slice.
    #[inline]
    fn as_slice(&self) -> &[Entry] {
        self.entries.as_slice()
    }

    /// The delay range for group `g`, if present.
    pub fn range(&self, g: GroupId) -> Option<DelayRange> {
        let s = self.as_slice();
        s.binary_search_by_key(&g, |(gg, _)| *gg)
            .ok()
            .map(|i| s[i].1)
    }

    /// Iterates `(group, range)` pairs in ascending group order.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, DelayRange)> + '_ {
        self.as_slice().iter().copied()
    }

    /// Iterates the groups present.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.as_slice().iter().map(|(g, _)| *g)
    }

    /// Number of groups present.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.as_slice().len()
    }

    /// All ranges shifted by a common wire delay `d` (the effect of the
    /// wire from a new merge point down to this subtree's root).
    pub fn shifted(&self, d: f64) -> Self {
        let mut out = self.clone();
        for (_, r) in out.entries.as_mut_slice() {
            *r = r.shift(d);
        }
        out
    }

    /// Groups present in both maps, ascending — the "shared groups" that
    /// constrain a merge (empty ⇒ the paper's different-groups case).
    pub fn shared_groups(&self, other: &Self) -> Vec<GroupId> {
        self.shared_ranges(other).map(|(g, _, _)| g).collect()
    }

    /// Iterates `(group, range in self, range in other)` over the groups
    /// present in both maps, ascending — the allocation-free form of
    /// [`DelayMap::shared_groups`] the constraint-assembly hot path uses.
    pub fn shared_ranges<'a>(
        &'a self,
        other: &'a Self,
    ) -> impl Iterator<Item = (GroupId, DelayRange, DelayRange)> + 'a {
        let (a, b) = (self.as_slice(), other.as_slice());
        let (mut i, mut j) = (0, 0);
        std::iter::from_fn(move || {
            while i < a.len() && j < b.len() {
                match a[i].0.cmp(&b[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let out = (a[i].0, a[i].1, b[j].1);
                        i += 1;
                        j += 1;
                        return Some(out);
                    }
                }
            }
            None
        })
    }

    /// Merges two maps (ranges hulled for shared groups). Callers are
    /// responsible for shifting each side by its wire delay first.
    pub fn merge(&self, other: &Self) -> Self {
        let (a, b) = (self.as_slice(), other.as_slice());
        let (mut i, mut j) = (0, 0);
        let mut entries = Store::default();
        while i < a.len() || j < b.len() {
            if j >= b.len() {
                entries.push(a[i]);
                i += 1;
            } else if i >= a.len() {
                entries.push(b[j]);
                j += 1;
            } else {
                match a[i].0.cmp(&b[j].0) {
                    std::cmp::Ordering::Less => {
                        entries.push(a[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        entries.push(b[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        entries.push((a[i].0, a[i].1.hull(&b[j].1)));
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        Self { entries }
    }

    /// The largest spread across all groups (for invariant checks).
    pub fn max_spread(&self) -> f64 {
        self.as_slice()
            .iter()
            .map(|(_, r)| r.spread())
            .fold(0.0, f64::max)
    }

    /// Extremes over all groups: `(min lo, max hi)`, or `None` if empty.
    pub fn overall_range(&self) -> Option<DelayRange> {
        let s = self.as_slice();
        let lo = s.iter().map(|(_, r)| r.lo).fold(f64::INFINITY, f64::min);
        let hi = s
            .iter()
            .map(|(_, r)| r.hi)
            .fold(f64::NEG_INFINITY, f64::max);
        if s.is_empty() {
            None
        } else {
            Some(DelayRange { lo, hi })
        }
    }
}

impl PartialEq for DelayMap {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for DelayMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DelayMap")
            .field("entries", &self.as_slice())
            .finish()
    }
}

impl fmt::Display for DelayMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (g, r)) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{g}: {r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn leaf_is_zero_point() {
        let m = DelayMap::leaf(g(3));
        assert_eq!(m.group_count(), 1);
        let r = m.range(g(3)).unwrap();
        assert_eq!((r.lo, r.hi), (0.0, 0.0));
        assert!(m.range(g(0)).is_none());
    }

    #[test]
    fn shift_moves_all_ranges() {
        let m = DelayMap::from_entries(vec![
            (g(0), DelayRange { lo: 1.0, hi: 2.0 }),
            (g(1), DelayRange::point(5.0)),
        ])
        .shifted(10.0);
        assert_eq!(m.range(g(0)).unwrap().lo, 11.0);
        assert_eq!(m.range(g(1)).unwrap().hi, 15.0);
        // Spread is invariant under shift.
        assert_eq!(m.range(g(0)).unwrap().spread(), 1.0);
    }

    #[test]
    fn shared_groups_intersection() {
        let a = DelayMap::from_entries(vec![
            (g(0), DelayRange::point(0.0)),
            (g(2), DelayRange::point(0.0)),
            (g(5), DelayRange::point(0.0)),
        ]);
        let b = DelayMap::from_entries(vec![
            (g(2), DelayRange::point(0.0)),
            (g(3), DelayRange::point(0.0)),
            (g(5), DelayRange::point(0.0)),
        ]);
        assert_eq!(a.shared_groups(&b), vec![g(2), g(5)]);
        assert_eq!(
            DelayMap::leaf(g(0)).shared_groups(&DelayMap::leaf(g(1))),
            vec![]
        );
    }

    #[test]
    fn merge_hulls_shared_ranges() {
        let a = DelayMap::from_entries(vec![(g(0), DelayRange { lo: 1.0, hi: 2.0 })]);
        let b = DelayMap::from_entries(vec![
            (g(0), DelayRange { lo: 0.5, hi: 1.5 }),
            (g(1), DelayRange::point(7.0)),
        ]);
        let m = a.merge(&b);
        assert_eq!(m.group_count(), 2);
        let r0 = m.range(g(0)).unwrap();
        assert_eq!((r0.lo, r0.hi), (0.5, 2.0));
        assert_eq!(m.range(g(1)).unwrap().lo, 7.0);
    }

    #[test]
    fn merge_is_commutative() {
        let a = DelayMap::from_entries(vec![
            (g(0), DelayRange { lo: 0.0, hi: 1.0 }),
            (g(2), DelayRange::point(3.0)),
        ]);
        let b = DelayMap::from_entries(vec![
            (g(1), DelayRange::point(4.0)),
            (g(2), DelayRange { lo: 2.0, hi: 5.0 }),
        ]);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn max_spread_and_overall_range() {
        let m = DelayMap::from_entries(vec![
            (g(0), DelayRange { lo: 1.0, hi: 4.0 }),
            (g(1), DelayRange { lo: 0.0, hi: 2.0 }),
        ]);
        assert_eq!(m.max_spread(), 3.0);
        let o = m.overall_range().unwrap();
        assert_eq!((o.lo, o.hi), (0.0, 4.0));
        assert!(DelayMap::default().overall_range().is_none());
    }

    #[test]
    fn maps_larger_than_inline_capacity_spill_transparently() {
        // 6 groups: exceeds INLINE_GROUPS both via from_entries and via
        // merge-driven growth; behavior must be identical to the inline
        // case.
        let big = DelayMap::from_entries(
            (0..6)
                .map(|i| (g(i), DelayRange::point(i as f64)))
                .collect(),
        );
        assert_eq!(big.group_count(), 6);
        for i in 0..6 {
            assert_eq!(big.range(g(i)).unwrap().lo, i as f64);
        }
        // Merge two disjoint 3-group maps: pushes past the inline capacity
        // one entry at a time.
        let lo = DelayMap::from_entries((0..3).map(|i| (g(i), DelayRange::point(0.0))).collect());
        let hi = DelayMap::from_entries((3..7).map(|i| (g(i), DelayRange::point(1.0))).collect());
        let m = lo.merge(&hi);
        assert_eq!(m.group_count(), 7);
        assert_eq!(m.shifted(2.0).range(g(6)).unwrap().hi, 3.0);
        assert_eq!(m, hi.merge(&lo));
    }

    #[test]
    #[should_panic(expected = "duplicate group")]
    fn duplicate_groups_rejected() {
        let _ = DelayMap::from_entries(vec![
            (g(0), DelayRange::point(0.0)),
            (g(0), DelayRange::point(1.0)),
        ]);
    }
}
