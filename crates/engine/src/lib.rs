//! Deferred-merge embedding engine with associative-skew support.
//!
//! This crate is the machinery underneath every router in the workspace
//! (`astdme-core`): a bottom-up **merge forest** over candidate regions, the
//! four merge cases of Kim 2006 Fig. 6, offset adjustment via wire sneaking
//! (Ch. V.E), **top-down embedding** into a routed tree, and an independent
//! **audit** that re-derives every delay from the final tree.
//!
//! # Model
//!
//! A subtree root is represented by a small set of [`Candidate`]s. Each
//! candidate pins down, exactly:
//!
//! * a [`Trr`](astdme_geom::Trr) region of feasible root positions, on which
//!   all delays are position-independent by construction (iso-delay loci);
//! * a [`DelayMap`]: for every sink group present in the subtree, the
//!   interval of root-to-sink delays;
//! * the subtree's load capacitance and accumulated wirelength;
//! * provenance: which child candidates and wire split produced it.
//!
//! Merging two candidates reduces to the δ-window feasibility problem of
//! [`astdme_delay`]; the merge case distinction of the paper (same group /
//! different groups / partially shared groups) falls out of which groups
//! the two delay maps share. Sampling happens only across the *split
//! continuum* (the number of candidates kept), never in the delay
//! bookkeeping.
//!
//! # Layout
//!
//! The merge procedure lives in the `merge/` module tree: `merge::node`
//! (ids and per-node candidate storage), `merge::context` (the `MergeCtx`
//! expansion view and candidate overlay), `merge::pairing` (constraint
//! assembly and pair-cost ranking), `merge::cases` (the Fig. 6 case
//! analysis), `merge::offset` (class fusing and wire sneaking), and
//! `merge::embed` (top-down embedding); `merge` itself holds
//! [`MergeForest`] and the rank → expand → commit orchestration.
//!
//! The central discipline: `MergeForest::merge` never hands `&mut self`
//! to the case analysis. Expansion runs against a `MergeCtx` of shared
//! borrows plus a private overlay for derived candidates, which is what
//! lets the `parallel` feature fan candidate-pair expansion out across
//! threads with bit-identical results (the overlays are committed
//! deterministically in ranked-pair order afterwards). See the `merge`
//! module docs for the full map and the commit protocol.
//!
//! # Example
//!
//! ```
//! use astdme_delay::{DelayModel, RcParams};
//! use astdme_engine::{audit, EngineConfig, Groups, Instance, MergeForest, Sink};
//! use astdme_geom::Point;
//!
//! let sinks = vec![
//!     Sink::new(Point::new(0.0, 0.0), 1e-14),
//!     Sink::new(Point::new(200.0, 0.0), 1e-14),
//! ];
//! let groups = Groups::from_assignments(vec![0, 0], 1)?;
//! let inst = Instance::new(sinks, groups, RcParams::default(), Point::new(100.0, 300.0))?;
//!
//! let mut forest = MergeForest::for_instance(&inst, EngineConfig::default());
//! let (a, b) = (forest.leaves()[0], forest.leaves()[1]);
//! let root = forest.merge(a, b);
//! let tree = forest.embed(root, inst.source());
//! let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
//! assert!(report.max_intra_group_skew() < 1e-18);
//! # Ok::<(), astdme_engine::InstanceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod candidate;
mod config;
mod delaymap;
mod group;
mod instance;
mod merge;
mod repair;
mod routed;

pub use audit::{audit, group_ranges, AuditReport};
pub use candidate::{CandKind, Candidate};
pub use config::EngineConfig;
pub use delaymap::{DelayMap, DelayRange};
pub use group::{GroupId, Groups, InstanceError};
pub use instance::{Instance, Sink};
pub use merge::{MergeForest, MergeLog, MergeRecording, NodeId, NO_NODE};
pub use repair::{repair_group_skew, RepairOutcome};
pub use routed::{RoutedNode, RoutedTree};
