//! Property-based tests for the merge engine: the candidate invariants of
//! DESIGN.md §3 on randomized merge sequences, verified against the
//! independent audit.

use astdme_delay::{DelayModel, RcParams};
use astdme_engine::{audit, CandKind, EngineConfig, Groups, Instance, MergeForest, Sink};
use astdme_geom::Point;
use proptest::prelude::*;

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (3usize..14, 1usize..4, any::<u64>()).prop_map(|(n, k, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 16) as f64 / (u64::MAX >> 16) as f64
        };
        let sinks: Vec<Sink> = (0..n)
            .map(|_| {
                Sink::new(
                    Point::new(next() * 10_000.0, next() * 10_000.0),
                    1e-15 + next() * 5e-14,
                )
            })
            .collect();
        let assignment: Vec<usize> = (0..n)
            .map(|i| {
                if i < k {
                    i
                } else {
                    (next() * k as f64) as usize % k
                }
            })
            .collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, k).expect("valid"),
            RcParams::default(),
            Point::new(5_000.0, 5_000.0),
        )
        .expect("valid")
    })
}

/// Serializes tests that flip the process-global `astdme_par` thread
/// override, so concurrent test threads cannot interleave their sweeps.
#[cfg(feature = "parallel")]
mod par_override {
    pub static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}

/// Merge all leaves left-to-right (a deliberately bad order — the engine
/// must stay correct under any order).
fn fold_all(forest: &mut MergeForest) -> astdme_engine::NodeId {
    let leaves = forest.leaves();
    let mut acc = leaves[0];
    for &l in &leaves[1..] {
        acc = forest.merge(acc, l);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn candidate_capacitance_is_sinks_plus_wire(inst in instance_strategy()) {
        let mut forest = MergeForest::for_instance(&inst, EngineConfig::default());
        let root = fold_all(&mut forest);
        let sink_cap: f64 = inst.sinks().iter().map(|s| s.cap).sum();
        let c_unit = inst.rc().c_per_um();
        for cand in forest.candidates(root) {
            let expected = sink_cap + c_unit * cand.wirelen;
            prop_assert!(
                (cand.cap - expected).abs() <= 1e-9 * expected,
                "cap {} vs sinks+wire {}", cand.cap, expected
            );
        }
    }

    #[test]
    fn bookkeeping_agrees_with_audit_after_embedding(inst in instance_strategy()) {
        let mut forest = MergeForest::for_instance(&inst, EngineConfig::default());
        let root = fold_all(&mut forest);
        let tree = forest.embed(root, inst.source());
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));

        // The chosen root candidate's wirelength matches the embedded tree
        // (minus the source hookup, which the forest does not know).
        let best = forest
            .candidates(root)
            .iter()
            .map(|c| c.wirelen)
            .fold(f64::INFINITY, f64::min);
        let subtree_wire: f64 = tree
            .nodes()
            .iter()
            .filter(|n| n.parent.is_some())
            .map(|n| n.wire)
            .sum();
        prop_assert!(
            subtree_wire >= best - 1e-6,
            "embedded wire {} below any candidate {}", subtree_wire, best
        );

        // Per-group spreads frozen in the bookkeeping equal the audited
        // spreads (upstream wire shifts all delays equally).
        if forest.residual() == 0.0 {
            prop_assert!(
                report.max_intra_group_skew() <= forest.node_count() as f64 * 1e-18 + 1e-18,
                "audited skew {} exceeds accumulated tolerance", report.max_intra_group_skew()
            );
        }
    }

    #[test]
    fn merged_regions_are_reachable_from_children(inst in instance_strategy()) {
        let mut forest = MergeForest::for_instance(&inst, EngineConfig::default());
        let root = fold_all(&mut forest);
        // Walk all nodes; every merge candidate's region must lie within
        // its recorded wire lengths of the children's regions.
        for idx in 0..forest.node_count() {
            let id = astdme_engine::NodeId::from_index(idx);
            let Some((a, b)) = forest.children(id) else { continue };
            for cand in forest.candidates(id) {
                let CandKind::Merge { cand_a, cand_b, ea, eb } = cand.kind else {
                    continue;
                };
                let ra = forest.candidates(a)[cand_a].region;
                let rb = forest.candidates(b)[cand_b].region;
                prop_assert!(ra.distance(&cand.region) <= ea + 1e-6 * (1.0 + ea));
                prop_assert!(rb.distance(&cand.region) <= eb + 1e-6 * (1.0 + eb));
            }
        }
        let _ = root;
    }

    #[test]
    fn embed_covers_every_sink_exactly_once(inst in instance_strategy()) {
        let mut forest = MergeForest::for_instance(&inst, EngineConfig::default());
        let root = fold_all(&mut forest);
        let tree = forest.embed(root, inst.source());
        let mut seen = vec![false; inst.sink_count()];
        for (_, s) in tree.sink_nodes() {
            prop_assert!(!seen[s], "sink {s} routed twice");
            seen[s] = true;
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    #[test]
    #[cfg(feature = "parallel")]
    fn merges_are_bit_identical_across_thread_counts(inst in instance_strategy()) {
        // The parallel feature fans candidate-pair expansion (and cost
        // estimation) out via astdme_par; the commit protocol must keep
        // every candidate — including overlay candidates derived by offset
        // adjustment — bit-identical to the serial path, for any thread
        // count. Exercise both the fused and the general (conflict-heavy)
        // mode.
        let _guard = par_override::LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for fuse in [true, false] {
            let cfg = EngineConfig { fuse_groups: fuse, ..EngineConfig::default() };
            astdme_par::set_thread_override(std::num::NonZeroUsize::new(1));
            let mut reference = MergeForest::for_instance(&inst, cfg);
            let root_ref = fold_all(&mut reference);
            let tree_ref = reference.embed(root_ref, inst.source());
            for threads in [2usize, 3, 8] {
                astdme_par::set_thread_override(std::num::NonZeroUsize::new(threads));
                let mut forest = MergeForest::for_instance(&inst, cfg);
                let root = fold_all(&mut forest);
                prop_assert_eq!(forest.node_count(), reference.node_count());
                for idx in 0..forest.node_count() {
                    let id = astdme_engine::NodeId::from_index(idx);
                    let (xs, ys) = (forest.candidates(id), reference.candidates(id));
                    prop_assert_eq!(
                        xs.len(), ys.len(),
                        "candidate count diverged at node {} ({} threads)", idx, threads
                    );
                    for (x, y) in xs.iter().zip(ys) {
                        prop_assert_eq!(x, y, "candidate diverged at node {}", idx);
                        prop_assert_eq!(x.wirelen.to_bits(), y.wirelen.to_bits());
                        prop_assert_eq!(x.cap.to_bits(), y.cap.to_bits());
                    }
                }
                let tree = forest.embed(root, inst.source());
                for (a, b) in tree.nodes().iter().zip(tree_ref.nodes()) {
                    prop_assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
                    prop_assert_eq!(a.pos.y.to_bits(), b.pos.y.to_bits());
                    prop_assert_eq!(a.wire.to_bits(), b.wire.to_bits());
                    prop_assert_eq!(a.parent, b.parent);
                    prop_assert_eq!(a.sink, b.sink);
                }
            }
            astdme_par::set_thread_override(None);
        }
    }

    #[test]
    fn unfused_mode_also_meets_bounds(inst in instance_strategy()) {
        let cfg = EngineConfig { fuse_groups: false, ..EngineConfig::default() };
        let mut forest = MergeForest::for_instance(&inst, cfg);
        let root = fold_all(&mut forest);
        let tree = forest.embed(root, inst.source());
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        // The general machinery may fall back to best-effort on deep
        // conflicts; the residual it reports must bound the audited skew.
        prop_assert!(
            report.max_intra_group_skew() <= 2.0 * forest.residual() + 1e-15,
            "audited {} vs residual {}", report.max_intra_group_skew(), forest.residual()
        );
    }
}
