//! The workspace's one JSON writer and reader.
//!
//! The build environment vendors no serde, and every JSON document in the
//! workspace is small and flat (instance files, bench records), so a tiny
//! escaping writer plus a recursive-descent reader keep the whole tree
//! dependency-free. This crate is a leaf — it depends on nothing — so both
//! `astdme_instances` and `astdme_bench` (which depends on
//! `astdme_instances`) can share it.
//!
//! # Number policy
//!
//! JSON has no literal for infinity, but an overflowing exponent is valid
//! number syntax and `f64::from_str` saturates it back to ±inf, so
//! [`number`] emits `1e999` / `-1e999` for infinite values and they survive
//! a round-trip through [`parse`]. NaN has no such trick; it renders as
//! `null` (and therefore does **not** round-trip as a number — readers see
//! [`Value::Null`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Escapes a string for embedding in a JSON document (with quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number.
///
/// Infinite values are written as the overflowing-but-valid literals
/// `1e999` / `-1e999`, which [`parse`] (and any IEEE-754 JSON reader)
/// saturates back to ±inf — so they round-trip. NaN is unrepresentable as
/// a JSON number and renders as `null`.
pub fn number(x: f64) -> String {
    if x == f64::INFINITY {
        "1e999".to_string()
    } else if x == f64::NEG_INFINITY {
        "-1e999".to_string()
    } else if x.is_nan() {
        "null".to_string()
    } else {
        format!("{x}")
    }
}

/// One `"key": value` field; `value` must already be valid JSON.
pub fn field(key: &str, value: impl AsRef<str>) -> String {
    format!("{}: {}", quote(key), value.as_ref())
}

/// A pretty-printed JSON object from pre-rendered fields, indented by
/// `indent` spaces.
pub fn object(fields: &[String], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let body = fields
        .iter()
        .map(|f| format!("{inner}{f}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{pad}{{\n{body}\n{pad}}}")
}

/// A pretty-printed JSON array from pre-rendered items.
pub fn array(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let pad = " ".repeat(indent);
    format!("[\n{}\n{pad}]", items.join(",\n"))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a [`Value::Num`].
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Arr`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The fields in document order, if this is a [`Value::Obj`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a field of a [`Value::Obj`] by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with a
/// byte offset where applicable.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

/// Maximum container nesting [`parse`] accepts. The reader is recursive,
/// so without a cap a pathological document (`[[[[...`) overflows the
/// stack and aborts the process instead of returning `Err`. Every real
/// document in the workspace nests a handful of levels.
const MAX_DEPTH: usize = 128;

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        out.push((key, value(b, pos, depth + 1)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = hex4(b, pos)?;
                        let c = match code {
                            // High surrogate: must pair with a low one.
                            0xD800..=0xDBFF => {
                                if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                                    return Err("unpaired high surrogate".to_string());
                                }
                                *pos += 2;
                                let low = hex4(b, pos)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("unpaired high surrogate".to_string());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).expect("valid surrogate pair")
                            }
                            0xDC00..=0xDFFF => return Err("unpaired low surrogate".to_string()),
                            _ => char::from_u32(code).expect("non-surrogate BMP code point"),
                        };
                        out.push(c);
                    }
                    _ => return Err(format!("bad escape \\{}", esc as char)),
                }
            }
            _ => {
                // Re-decode UTF-8 starting at the byte we consumed.
                let start = *pos - 1;
                let len = utf8_len(c);
                let chunk = b
                    .get(start..start + len)
                    .ok_or("truncated UTF-8 sequence")?;
                let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".to_string())
}

/// Reads four hex digits of a `\u` escape (the `\u` already consumed).
fn hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let hex = b
        .get(*pos..*pos + 4)
        .ok_or("truncated \\u escape")
        .and_then(|h| std::str::from_utf8(h).map_err(|_| "non-ascii \\u escape"))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
    *pos += 4;
    Ok(code)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("invalid value at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(number(0.05), "0.05");
        assert_eq!(number(3.0), "3");
    }

    #[test]
    fn non_finite_numbers_follow_the_policy() {
        assert_eq!(number(f64::INFINITY), "1e999");
        assert_eq!(number(f64::NEG_INFINITY), "-1e999");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn objects_and_arrays_nest() {
        let o = object(&[field("a", number(1.0)), field("b", quote("x"))], 2);
        let a = array(&[o], 0);
        assert!(a.contains("\"a\": 1"));
        assert!(a.starts_with("[\n"));
        assert!(a.ends_with("\n]"));
    }

    #[test]
    fn value_accessors_and_get() {
        let v = parse(r#"{"a": 1, "b": [true, null], "c": "s"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_number(), Some(1.0));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("b").unwrap().as_array().unwrap()[0].as_bool(),
            Some(true)
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("s"));
        assert!(v.get("missing").is_none());
    }
}
