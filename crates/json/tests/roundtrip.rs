//! Golden round-trip tests for the workspace's single JSON writer/reader.
//!
//! Both former writers (`astdme_bench::json` and the hand-rolled
//! `astdme_instances::serialize` string building) now funnel through this
//! crate, so the behaviors pinned here — escaping, control characters,
//! surrogate pairs, the `1e999` infinity policy — are the contract for
//! every JSON document the workspace produces.

use astdme_json::{array, field, number, object, parse, quote, Value};

/// Writer -> reader round-trip for a string payload.
fn roundtrip_str(s: &str) -> String {
    let doc = parse(&quote(s)).expect("quoted string parses");
    doc.as_str().expect("string value").to_string()
}

/// Writer -> reader round-trip for a numeric payload.
fn roundtrip_num(x: f64) -> Value {
    parse(&number(x)).expect("number renders valid JSON")
}

#[test]
fn string_escapes_roundtrip() {
    for s in [
        "plain",
        "quote \" backslash \\ slash /",
        "newline\n tab\t return\r",
        "unicode: héllo wörld — ∞ ≠ µ",
        "emoji beyond the BMP: \u{1F600}\u{1F680}",
        "",
    ] {
        assert_eq!(roundtrip_str(s), s, "{s:?} must round-trip");
    }
}

#[test]
fn control_characters_roundtrip_via_u_escapes() {
    // Every C0 control character must be escaped on write and decoded on
    // read; raw control bytes are never emitted.
    for code in 0u32..0x20 {
        let c = char::from_u32(code).unwrap();
        let s = format!("a{c}b");
        let quoted = quote(&s);
        assert!(
            quoted.bytes().all(|b| (0x20..0x7f).contains(&b)),
            "quote({code:#x}) must emit printable ASCII only: {quoted:?}"
        );
        // \n, \t, \r use short escapes; everything else \u00XX. Either way
        // the reader restores the exact character.
        assert_eq!(roundtrip_str(&s), s, "control {code:#04x} must round-trip");
    }
}

#[test]
fn surrogate_pair_escapes_decode_and_lone_surrogates_fail() {
    // Escaped \uXXXX\uXXXX pairs exercise the surrogate-combining branch
    // of the reader; the raw literals exercise the plain UTF-8 branch.
    let v = parse(r#""\ud83d\ude00""#).unwrap();
    assert_eq!(v.as_str().unwrap(), "\u{1F600}");
    let v = parse(r#""\ud83e\udd80 and \ud83d\ude80""#).unwrap();
    assert_eq!(v.as_str().unwrap(), "\u{1F980} and \u{1F680}");
    let v = parse("\"\u{1F680} raw and \u{1F980} mixed\"").unwrap();
    assert_eq!(v.as_str().unwrap(), "\u{1F680} raw and \u{1F980} mixed");
    for lone in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ud83dA""#, r#""\ude00""#] {
        assert!(
            parse(lone).unwrap_err().contains("surrogate"),
            "{lone} must be rejected"
        );
    }
}

#[test]
fn infinities_roundtrip_as_overflowing_literals() {
    assert_eq!(number(f64::INFINITY), "1e999");
    assert_eq!(number(f64::NEG_INFINITY), "-1e999");
    assert_eq!(
        roundtrip_num(f64::INFINITY).as_number(),
        Some(f64::INFINITY)
    );
    assert_eq!(
        roundtrip_num(f64::NEG_INFINITY).as_number(),
        Some(f64::NEG_INFINITY)
    );
    // NaN is unrepresentable: it becomes null, visibly, not a panic and
    // not an invalid token.
    assert_eq!(number(f64::NAN), "null");
    assert_eq!(roundtrip_num(f64::NAN), Value::Null);
}

#[test]
fn finite_numbers_roundtrip_exactly() {
    for x in [
        0.0,
        -0.0,
        1.0,
        -2.5e3,
        0.05,
        f64::MIN,
        f64::MAX,
        f64::MIN_POSITIVE,
        5e-324,
        1.0 / 3.0,
        2086311.4142856593,
    ] {
        let back = roundtrip_num(x).as_number().expect("stays a number");
        assert_eq!(
            back.to_bits(),
            x.to_bits(),
            "{x:e} must round-trip bit-exactly"
        );
    }
}

#[test]
fn nested_arrays_and_objects_roundtrip() {
    let inner = object(
        &[
            field("name", quote("r1 \"quoted\"")),
            field("bound", number(f64::INFINITY)),
            field("xs", array(&[number(1.0), number(-2.5)], 6)),
        ],
        4,
    );
    let doc = object(
        &[
            field("format", quote("golden-v1")),
            field("rows", array(&[inner.clone(), inner], 2)),
            field("empty", array(&[], 0)),
        ],
        0,
    );
    let v = parse(&doc).expect("nested document parses");
    let rows = v.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert_eq!(row.get("name").unwrap().as_str(), Some("r1 \"quoted\""));
        assert_eq!(row.get("bound").unwrap().as_number(), Some(f64::INFINITY));
        let xs = row.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[0].as_number(), Some(1.0));
        assert_eq!(xs[1].as_number(), Some(-2.5));
    }
    assert_eq!(v.get("empty").unwrap().as_array().unwrap().len(), 0);
}

#[test]
fn reader_caps_nesting_depth_instead_of_overflowing() {
    // A recursive reader without a depth cap aborts the whole process with
    // a stack overflow on `[[[[...` — from_json reads instance files, so
    // hostile input must produce Err, not a crash.
    let deep = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
    assert!(parse(&deep(100)).is_ok(), "reasonable nesting parses");
    let err = parse(&deep(100_000)).unwrap_err();
    assert!(err.contains("nesting"), "got: {err}");
    let objs = format!("{}1{}", "{\"k\": ".repeat(100_000), "}".repeat(100_000));
    assert!(parse(&objs).unwrap_err().contains("nesting"));
}

#[test]
fn reader_rejects_malformed_documents() {
    for bad in [
        "{",
        "[1,",
        "{\"a\" 1}",
        "\"open",
        "{} extra",
        "nul",
        "[1 2]",
        "{\"a\": }",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} should fail");
    }
}

#[test]
fn reader_handles_escapes_and_mixed_nesting() {
    let v = parse(r#"{"a": [1, -2.5e3, "x\n\"y\""], "b": {"c": true}}"#).unwrap();
    let obj = v.as_object().unwrap();
    assert_eq!(obj[0].0, "a");
    let arr = obj[0].1.as_array().unwrap();
    assert_eq!(arr[1].as_number().unwrap(), -2500.0);
    assert_eq!(arr[2].as_str().unwrap(), "x\n\"y\"");
    assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
}
