//! JSON (de)serialization of routing instances.
//!
//! A small stable format so experiments can be pinned to files and shared:
//! positions/loads/technology/source plus the group assignment and bounds.
//!
//! The (de)serializer is hand-rolled: the build environment vendors no
//! serde, and the format is a single flat document, so a ~100-line
//! recursive-descent JSON reader keeps the crate dependency-free.

use astdme_core::{Groups, Instance, InstanceError, Point, RcParams, Sink};

/// Formats a float as a JSON number. JSON has no literal for infinity, but
/// an overflowing exponent is valid number syntax and `f64::from_str`
/// saturates it back to ±inf, so infinite values (e.g. unbounded skew
/// bounds) survive a round-trip. NaN stays unrepresentable.
fn fnum(x: f64) -> String {
    if x == f64::INFINITY {
        "1e999".to_string()
    } else if x == f64::NEG_INFINITY {
        "-1e999".to_string()
    } else {
        format!("{x}")
    }
}

/// Serializes an instance to pretty JSON.
pub fn to_json(inst: &Instance) -> String {
    let mut s = String::with_capacity(64 * inst.sink_count() + 256);
    s.push_str("{\n");
    s.push_str("  \"format\": \"astdme-instance-v1\",\n");
    s.push_str(&format!(
        "  \"r_per_um\": {},\n",
        fnum(inst.rc().r_per_um())
    ));
    s.push_str(&format!(
        "  \"c_per_um\": {},\n",
        fnum(inst.rc().c_per_um())
    ));
    s.push_str(&format!(
        "  \"source\": [{}, {}],\n",
        fnum(inst.source().x),
        fnum(inst.source().y)
    ));
    s.push_str("  \"sinks\": [\n");
    let n = inst.sink_count();
    for (i, sink) in inst.sinks().iter().enumerate() {
        s.push_str(&format!(
            "    {{\"x\": {}, \"y\": {}, \"cap\": {}, \"group\": {}}}{}\n",
            fnum(sink.pos.x),
            fnum(sink.pos.y),
            fnum(sink.cap),
            inst.group_of(i).index(),
            if i + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"group_count\": {},\n",
        inst.groups().group_count()
    ));
    s.push_str("  \"bounds\": [");
    for (i, b) in inst.groups().bounds().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&fnum(*b));
    }
    s.push_str("]\n}\n");
    s
}

/// Parses an instance from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns a string description for malformed JSON or an
/// [`InstanceError`]-derived message for semantically invalid content.
pub fn from_json(s: &str) -> Result<Instance, String> {
    let doc = json::parse(s)?;
    let obj = doc.as_object().ok_or("top level must be an object")?;
    let format = get(obj, "format")?
        .as_str()
        .ok_or("\"format\" must be a string")?;
    if format != "astdme-instance-v1" {
        return Err(format!("unknown instance format {format:?}"));
    }
    let r_per_um = num(obj, "r_per_um")?;
    let c_per_um = num(obj, "c_per_um")?;
    let source = get(obj, "source")?
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or("\"source\" must be a [x, y] pair")?;
    let (sx, sy) = (
        source[0].as_number().ok_or("source x must be a number")?,
        source[1].as_number().ok_or("source y must be a number")?,
    );
    let raw_sinks = get(obj, "sinks")?
        .as_array()
        .ok_or("\"sinks\" must be an array")?;
    let mut sinks = Vec::with_capacity(raw_sinks.len());
    let mut assignment = Vec::with_capacity(raw_sinks.len());
    for rec in raw_sinks {
        let rec = rec.as_object().ok_or("each sink must be an object")?;
        sinks.push(Sink::new(
            Point::new(num(rec, "x")?, num(rec, "y")?),
            num(rec, "cap")?,
        ));
        let g = num(rec, "group")?;
        if g < 0.0 || g.fract() != 0.0 {
            return Err(format!(
                "sink group must be a non-negative integer, got {g}"
            ));
        }
        assignment.push(g as usize);
    }
    let group_count = num(obj, "group_count")?;
    // Upper bound before the cast: `from_assignments` allocates one Vec per
    // group, so an absurd count must fail here, not abort on allocation.
    if group_count < 1.0 || group_count.fract() != 0.0 || group_count > sinks.len() as f64 {
        return Err(format!(
            "group_count must be a positive integer no larger than the sink \
             count ({}), got {group_count}",
            sinks.len()
        ));
    }
    let bounds: Vec<f64> = get(obj, "bounds")?
        .as_array()
        .ok_or("\"bounds\" must be an array")?
        .iter()
        .map(|v| v.as_number().ok_or("bounds entries must be numbers"))
        .collect::<Result<_, _>>()?;
    let groups = Groups::from_assignments(assignment, group_count as usize)
        .and_then(|g| g.with_bounds(bounds))
        .map_err(err_str)?;
    Instance::new(
        sinks,
        groups,
        RcParams::new(r_per_um, c_per_um),
        Point::new(sx, sy),
    )
    .map_err(err_str)
}

fn get<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn num(obj: &[(String, json::Value)], key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_number()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn err_str(e: InstanceError) -> String {
    e.to_string()
}

/// A minimal JSON reader: parses well-formed documents into a value tree.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number, as `f64`.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(s: &str) -> Result<Value, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            out.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = hex4(b, pos)?;
                            let c = match code {
                                // High surrogate: must pair with a low one.
                                0xD800..=0xDBFF => {
                                    if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u')
                                    {
                                        return Err("unpaired high surrogate".to_string());
                                    }
                                    *pos += 2;
                                    let low = hex4(b, pos)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err("unpaired high surrogate".to_string());
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined).expect("valid surrogate pair")
                                }
                                0xDC00..=0xDFFF => return Err("unpaired low surrogate".to_string()),
                                _ => char::from_u32(code).expect("non-surrogate BMP code point"),
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = *pos - 1;
                    let len = utf8_len(c);
                    let chunk = b
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos = start + len;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    /// Reads four hex digits of a `\u` escape (the `\u` already consumed).
    fn hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
        let hex = b
            .get(*pos..*pos + 4)
            .ok_or("truncated \\u escape")
            .and_then(|h| std::str::from_utf8(h).map_err(|_| "non-ascii \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
        *pos += 4;
        Ok(code)
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        if start == *pos {
            return Err(format!("invalid value at byte {start}"));
        }
        std::str::from_utf8(&b[start..*pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition, r_benchmark, RBench};

    #[test]
    fn roundtrip_preserves_instance() {
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::intermingled(&p, 4, 2).unwrap();
        let json = to_json(&inst);
        let back = from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn rejects_unknown_format_and_garbage() {
        assert!(from_json("not json").is_err());
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::single(&p).unwrap();
        let bad = to_json(&inst).replace("astdme-instance-v1", "v999");
        assert!(from_json(&bad)
            .unwrap_err()
            .contains("unknown instance format"));
    }

    #[test]
    fn rejects_semantically_invalid() {
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::single(&p).unwrap();
        // Corrupt a group index beyond group_count.
        let bad = to_json(&inst).replacen("\"group\": 0", "\"group\": 99", 1);
        assert!(from_json(&bad).is_err());
    }

    #[test]
    fn rejects_absurd_group_count_before_allocating() {
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::single(&p).unwrap();
        // Must fail validation, not abort inside from_assignments' per-group
        // allocation (1e30 saturates to usize::MAX via `as usize`).
        for count in ["1e9", "1e30"] {
            let bad = to_json(&inst).replacen(
                "\"group_count\": 1",
                &format!("\"group_count\": {count}"),
                1,
            );
            assert!(from_json(&bad)
                .unwrap_err()
                .contains("no larger than the sink count"));
        }
    }

    #[test]
    fn roundtrip_preserves_infinite_bounds() {
        // An unbounded skew group is constructible, so it must survive a
        // round-trip (emitted as the overflowing-but-valid literal 1e999).
        let sinks = vec![
            Sink::new(Point::new(0.0, 0.0), 1e-14),
            Sink::new(Point::new(100.0, 0.0), 1e-14),
        ];
        let groups = Groups::from_assignments(vec![0, 0], 1)
            .unwrap()
            .with_uniform_bound(f64::INFINITY)
            .unwrap();
        let inst =
            Instance::new(sinks, groups, RcParams::default(), Point::new(0.0, 50.0)).unwrap();
        let json = to_json(&inst);
        assert!(
            json.contains("1e999"),
            "inf must serialize as a JSON number"
        );
        assert_eq!(from_json(&json).unwrap(), inst);
    }

    #[test]
    fn string_escapes_decode_surrogate_pairs_and_reject_lone_surrogates() {
        let v = json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
        for lone in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ude00""#] {
            assert!(json::parse(lone).unwrap_err().contains("surrogate"));
        }
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = json::parse(r#"{"a": [1, -2.5e3, "x\n\"y\""], "b": {"c": true}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[1].as_number().unwrap(), -2500.0);
        assert_eq!(arr[2].as_str().unwrap(), "x\n\"y\"");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "\"open", "{} extra", "nul"] {
            assert!(json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
