//! JSON (de)serialization of routing instances.
//!
//! A small stable format so experiments can be pinned to files and shared:
//! positions/loads/technology/source plus the group assignment and bounds.

use astdme_core::{Groups, Instance, InstanceError, Point, RcParams, Sink};
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct InstanceFile {
    format: String,
    r_per_um: f64,
    c_per_um: f64,
    source: [f64; 2],
    sinks: Vec<SinkRec>,
    group_count: usize,
    bounds: Vec<f64>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SinkRec {
    x: f64,
    y: f64,
    cap: f64,
    group: usize,
}

/// Serializes an instance to pretty JSON.
pub fn to_json(inst: &Instance) -> String {
    let file = InstanceFile {
        format: "astdme-instance-v1".to_string(),
        r_per_um: inst.rc().r_per_um(),
        c_per_um: inst.rc().c_per_um(),
        source: [inst.source().x, inst.source().y],
        sinks: inst
            .sinks()
            .iter()
            .enumerate()
            .map(|(i, s)| SinkRec {
                x: s.pos.x,
                y: s.pos.y,
                cap: s.cap,
                group: inst.group_of(i).index(),
            })
            .collect(),
        group_count: inst.groups().group_count(),
        bounds: inst.groups().bounds().to_vec(),
    };
    serde_json::to_string_pretty(&file).expect("instance file serializes")
}

/// Parses an instance from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns a string description for malformed JSON or an
/// [`InstanceError`]-derived message for semantically invalid content.
pub fn from_json(s: &str) -> Result<Instance, String> {
    let file: InstanceFile = serde_json::from_str(s).map_err(|e| e.to_string())?;
    if file.format != "astdme-instance-v1" {
        return Err(format!("unknown instance format {:?}", file.format));
    }
    let sinks: Vec<Sink> = file
        .sinks
        .iter()
        .map(|r| Sink::new(Point::new(r.x, r.y), r.cap))
        .collect();
    let assignment: Vec<usize> = file.sinks.iter().map(|r| r.group).collect();
    let groups = Groups::from_assignments(assignment, file.group_count)
        .and_then(|g| g.with_bounds(file.bounds))
        .map_err(err_str)?;
    Instance::new(
        sinks,
        groups,
        RcParams::new(file.r_per_um, file.c_per_um),
        Point::new(file.source[0], file.source[1]),
    )
    .map_err(err_str)
}

fn err_str(e: InstanceError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition, r_benchmark, RBench};

    #[test]
    fn roundtrip_preserves_instance() {
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::intermingled(&p, 4, 2).unwrap();
        let json = to_json(&inst);
        let back = from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn rejects_unknown_format_and_garbage() {
        assert!(from_json("not json").is_err());
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::single(&p).unwrap();
        let bad = to_json(&inst).replace("astdme-instance-v1", "v999");
        assert!(from_json(&bad).unwrap_err().contains("unknown instance format"));
    }

    #[test]
    fn rejects_semantically_invalid() {
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::single(&p).unwrap();
        // Corrupt a group index beyond group_count.
        let bad = to_json(&inst).replacen("\"group\": 0", "\"group\": 99", 1);
        assert!(from_json(&bad).is_err());
    }
}
