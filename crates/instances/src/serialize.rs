//! JSON (de)serialization of routing instances.
//!
//! A small stable format so experiments can be pinned to files and shared:
//! positions/loads/technology/source plus the group assignment and bounds.
//!
//! The JSON primitives (escaping writer, recursive-descent reader, and the
//! `1e999` policy for infinite values) live in [`astdme_json`], the
//! workspace's single JSON crate; this module only knows the instance
//! format itself.

use astdme_core::{Groups, Instance, InstanceError, Point, RcParams, Sink};
use astdme_json::{number, Value};

/// Serializes an instance to pretty JSON.
///
/// Infinite values (e.g. unbounded skew bounds) are written as the
/// overflowing-but-valid literal `1e999` and survive a round-trip; see
/// [`astdme_json::number`].
pub fn to_json(inst: &Instance) -> String {
    let mut s = String::with_capacity(64 * inst.sink_count() + 256);
    s.push_str("{\n");
    s.push_str("  \"format\": \"astdme-instance-v1\",\n");
    s.push_str(&format!(
        "  \"r_per_um\": {},\n",
        number(inst.rc().r_per_um())
    ));
    s.push_str(&format!(
        "  \"c_per_um\": {},\n",
        number(inst.rc().c_per_um())
    ));
    s.push_str(&format!(
        "  \"source\": [{}, {}],\n",
        number(inst.source().x),
        number(inst.source().y)
    ));
    s.push_str("  \"sinks\": [\n");
    let n = inst.sink_count();
    for (i, sink) in inst.sinks().iter().enumerate() {
        s.push_str(&format!(
            "    {{\"x\": {}, \"y\": {}, \"cap\": {}, \"group\": {}}}{}\n",
            number(sink.pos.x),
            number(sink.pos.y),
            number(sink.cap),
            inst.group_of(i).index(),
            if i + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"group_count\": {},\n",
        inst.groups().group_count()
    ));
    s.push_str("  \"bounds\": [");
    for (i, b) in inst.groups().bounds().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&number(*b));
    }
    s.push_str("]\n}\n");
    s
}

/// Parses an instance from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns a string description for malformed JSON or an
/// [`InstanceError`]-derived message for semantically invalid content.
pub fn from_json(s: &str) -> Result<Instance, String> {
    let doc = astdme_json::parse(s)?;
    let obj = doc.as_object().ok_or("top level must be an object")?;
    let format = get(obj, "format")?
        .as_str()
        .ok_or("\"format\" must be a string")?;
    if format != "astdme-instance-v1" {
        return Err(format!("unknown instance format {format:?}"));
    }
    let r_per_um = num(obj, "r_per_um")?;
    let c_per_um = num(obj, "c_per_um")?;
    let source = get(obj, "source")?
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or("\"source\" must be a [x, y] pair")?;
    let (sx, sy) = (
        source[0].as_number().ok_or("source x must be a number")?,
        source[1].as_number().ok_or("source y must be a number")?,
    );
    let raw_sinks = get(obj, "sinks")?
        .as_array()
        .ok_or("\"sinks\" must be an array")?;
    let mut sinks = Vec::with_capacity(raw_sinks.len());
    let mut assignment = Vec::with_capacity(raw_sinks.len());
    for rec in raw_sinks {
        let rec = rec.as_object().ok_or("each sink must be an object")?;
        sinks.push(Sink::new(
            Point::new(num(rec, "x")?, num(rec, "y")?),
            num(rec, "cap")?,
        ));
        let g = num(rec, "group")?;
        if g < 0.0 || g.fract() != 0.0 {
            return Err(format!(
                "sink group must be a non-negative integer, got {g}"
            ));
        }
        assignment.push(g as usize);
    }
    let group_count = num(obj, "group_count")?;
    // Upper bound before the cast: `from_assignments` allocates one Vec per
    // group, so an absurd count must fail here, not abort on allocation.
    if group_count < 1.0 || group_count.fract() != 0.0 || group_count > sinks.len() as f64 {
        return Err(format!(
            "group_count must be a positive integer no larger than the sink \
             count ({}), got {group_count}",
            sinks.len()
        ));
    }
    let bounds: Vec<f64> = get(obj, "bounds")?
        .as_array()
        .ok_or("\"bounds\" must be an array")?
        .iter()
        .map(|v| v.as_number().ok_or("bounds entries must be numbers"))
        .collect::<Result<_, _>>()?;
    let groups = Groups::from_assignments(assignment, group_count as usize)
        .and_then(|g| g.with_bounds(bounds))
        .map_err(err_str)?;
    Instance::new(
        sinks,
        groups,
        RcParams::new(r_per_um, c_per_um),
        Point::new(sx, sy),
    )
    .map_err(err_str)
}

fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn num(obj: &[(String, Value)], key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_number()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn err_str(e: InstanceError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition, r_benchmark, RBench};

    #[test]
    fn roundtrip_preserves_instance() {
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::intermingled(&p, 4, 2).unwrap();
        let json = to_json(&inst);
        let back = from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn rejects_unknown_format_and_garbage() {
        assert!(from_json("not json").is_err());
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::single(&p).unwrap();
        let bad = to_json(&inst).replace("astdme-instance-v1", "v999");
        assert!(from_json(&bad)
            .unwrap_err()
            .contains("unknown instance format"));
    }

    #[test]
    fn rejects_semantically_invalid() {
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::single(&p).unwrap();
        // Corrupt a group index beyond group_count.
        let bad = to_json(&inst).replacen("\"group\": 0", "\"group\": 99", 1);
        assert!(from_json(&bad).is_err());
    }

    #[test]
    fn rejects_absurd_group_count_before_allocating() {
        let p = r_benchmark(RBench::R1, 11);
        let inst = partition::single(&p).unwrap();
        // Must fail validation, not abort inside from_assignments' per-group
        // allocation (1e30 saturates to usize::MAX via `as usize`).
        for count in ["1e9", "1e30"] {
            let bad = to_json(&inst).replacen(
                "\"group_count\": 1",
                &format!("\"group_count\": {count}"),
                1,
            );
            assert!(from_json(&bad)
                .unwrap_err()
                .contains("no larger than the sink count"));
        }
    }

    #[test]
    fn roundtrip_preserves_infinite_bounds() {
        // An unbounded skew group is constructible, so it must survive a
        // round-trip (emitted as the overflowing-but-valid literal 1e999).
        let sinks = vec![
            Sink::new(Point::new(0.0, 0.0), 1e-14),
            Sink::new(Point::new(100.0, 0.0), 1e-14),
        ];
        let groups = Groups::from_assignments(vec![0, 0], 1)
            .unwrap()
            .with_uniform_bound(f64::INFINITY)
            .unwrap();
        let inst =
            Instance::new(sinks, groups, RcParams::default(), Point::new(0.0, 50.0)).unwrap();
        let json = to_json(&inst);
        assert!(
            json.contains("1e999"),
            "inf must serialize as a JSON number"
        );
        assert_eq!(from_json(&json).unwrap(), inst);
    }
}
