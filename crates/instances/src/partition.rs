//! Group partitioners: the two experimental regimes of the paper.

use astdme_core::{Groups, Instance, InstanceError, Rect};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::Placement;

/// Clustered groups (Table I): the die is divided into `k` rectangle boxes
/// (as square a grid as divides `k`), and sinks in the same box form a
/// group.
///
/// With clustered groups there is little opportunity to merge across
/// groups, so associative skew saves only a few percent — the paper's
/// first experiment.
///
/// # Errors
///
/// Fails if some box ends up empty (possible for extreme `k`; the paper
/// uses `k <= 10` on hundreds of sinks, where this cannot happen in
/// practice).
pub fn clustered(p: &Placement, k: usize, _seed: u64) -> Result<Instance, InstanceError> {
    let (cols, rows) = grid_shape(k);
    let die = Rect::bounding(p.sinks.iter().map(|s| s.pos)).ok_or(InstanceError::NoSinks)?;
    let assignment: Vec<usize> = p
        .sinks
        .iter()
        .map(|s| die.grid_cell(cols, rows, s.pos))
        .collect();
    Instance::new(
        p.sinks.clone(),
        Groups::from_assignments(assignment, cols * rows)?,
        p.rc,
        p.source,
    )
}

/// Intermingled groups (Table II): each sink is assigned to one of `k`
/// groups uniformly at random (balanced shuffle), so the groups overlap
/// everywhere — the paper's "difficult instances".
pub fn intermingled(p: &Placement, k: usize, seed: u64) -> Result<Instance, InstanceError> {
    let n = p.sinks.len();
    // Balanced: round-robin labels, then shuffle positions.
    let mut labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x1_27E3_4177);
    labels.shuffle(&mut rng);
    Instance::new(
        p.sinks.clone(),
        Groups::from_assignments(labels, k)?,
        p.rc,
        p.source,
    )
}

/// One group containing every sink: the conventional-baseline partition
/// (EXT-BST / greedy-DME rows in the tables).
pub fn single(p: &Placement) -> Result<Instance, InstanceError> {
    Instance::new(
        p.sinks.clone(),
        Groups::single(p.sinks.len())?,
        p.rc,
        p.source,
    )
}

/// The most square `cols × rows` factorization with `cols * rows == k`.
fn grid_shape(k: usize) -> (usize, usize) {
    assert!(k > 0, "need at least one group");
    let mut best = (k, 1);
    for rows in 1..=k {
        if k.is_multiple_of(rows) {
            let cols = k / rows;
            if (cols as i64 - rows as i64).abs() < (best.0 as i64 - best.1 as i64).abs() {
                best = (cols, rows);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{r_benchmark, RBench};

    #[test]
    fn grid_shape_prefers_square() {
        assert_eq!(grid_shape(4), (2, 2));
        assert_eq!(grid_shape(6), (3, 2));
        assert_eq!(grid_shape(8), (4, 2));
        assert_eq!(grid_shape(10), (5, 2));
        assert_eq!(grid_shape(7), (7, 1));
        assert_eq!(grid_shape(1), (1, 1));
    }

    #[test]
    fn clustered_groups_are_spatially_separated() {
        let p = r_benchmark(RBench::R1, 3);
        let inst = clustered(&p, 4, 0).unwrap();
        assert_eq!(inst.groups().group_count(), 4);
        // Bounding boxes of distinct groups overlap at most at shared grid
        // edges: check disjoint interiors via centers.
        let die = Rect::bounding(p.sinks.iter().map(|s| s.pos)).unwrap();
        for (i, s) in inst.sinks().iter().enumerate() {
            let g = inst.group_of(i).index();
            assert_eq!(die.grid_cell(2, 2, s.pos), g);
        }
    }

    #[test]
    fn intermingled_groups_are_balanced_and_deterministic() {
        let p = r_benchmark(RBench::R1, 3);
        let a = intermingled(&p, 6, 9).unwrap();
        let b = intermingled(&p, 6, 9).unwrap();
        assert_eq!(a, b);
        let c = intermingled(&p, 6, 10).unwrap();
        assert_ne!(a.groups().assignment(), c.groups().assignment());
        // Balance: group sizes differ by at most one.
        let sizes: Vec<usize> = (0..6)
            .map(|g| a.groups().members(astdme_core::GroupId(g as u32)).len())
            .collect();
        let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn intermingled_groups_really_intermingle() {
        // Each group's bounding box should cover most of the die.
        let p = r_benchmark(RBench::R2, 5);
        let inst = intermingled(&p, 4, 1).unwrap();
        let die = Rect::bounding(p.sinks.iter().map(|s| s.pos)).unwrap();
        for g in 0..4 {
            let members = inst.groups().members(astdme_core::GroupId(g));
            let bb = Rect::bounding(members.iter().map(|&i| inst.sinks()[i].pos)).unwrap();
            assert!(bb.width() > 0.8 * die.width(), "group {g} too clustered");
            assert!(bb.height() > 0.8 * die.height());
        }
    }

    #[test]
    fn single_partition_has_one_group() {
        let p = r_benchmark(RBench::R1, 3);
        let inst = single(&p).unwrap();
        assert_eq!(inst.groups().group_count(), 1);
        assert_eq!(inst.sink_count(), 267);
    }
}
