//! Benchmark instance synthesis for associative-skew clock routing.
//!
//! The paper evaluates on the classic `r1`–`r5` clock benchmarks (267 to
//! 3101 sinks; Tsay 1991 / Cong et al. 1998), which are not redistributable
//! here. This crate synthesizes **seeded, deterministic equivalents**: the
//! same sink counts, uniform placement over a 100 000 µm die (which puts
//! zero-skew wirelengths and source-to-sink delays in the same regime as
//! the originals), and era-realistic sink loads. See `DESIGN.md` §2 for the
//! substitution argument.
//!
//! Two group partitioners reproduce the paper's two experiments:
//!
//! * [`partition::clustered`] — the die is divided into as many rectangle
//!   boxes as groups; sinks in a box form a group (Table I);
//! * [`partition::intermingled`] — sinks are assigned to groups uniformly
//!   at random, so every group spreads across the whole die (Table II).
//!
//! # Example
//!
//! ```
//! use astdme_instances::{r_benchmark, partition, RBench};
//!
//! let placement = r_benchmark(RBench::R1, 42);
//! let inst = partition::intermingled(&placement, 4, 7)?;
//! assert_eq!(inst.sink_count(), 267);
//! assert_eq!(inst.groups().group_count(), 4);
//! # Ok::<(), astdme_core::InstanceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
mod rbench;
mod serialize;

pub use rbench::{r_benchmark, synthetic_instance, Placement, RBench};
pub use serialize::{from_json, to_json};
