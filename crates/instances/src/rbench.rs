//! Synthetic `r1`–`r5` placements.

use astdme_core::{Point, RcParams, Sink};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Die side used for all synthetic benchmarks, µm. At 0.003 Ω/µm and
/// 0.02 fF/µm this puts root-to-sink Elmore delays in the hundreds of
/// picoseconds, the regime of the original `r1`–`r5`.
pub const DIE_SIDE: f64 = 100_000.0;

/// The five benchmark sizes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RBench {
    /// 267 sinks.
    R1,
    /// 598 sinks.
    R2,
    /// 862 sinks.
    R3,
    /// 1903 sinks.
    R4,
    /// 3101 sinks.
    R5,
}

impl RBench {
    /// All five, in order.
    pub const ALL: [RBench; 5] = [RBench::R1, RBench::R2, RBench::R3, RBench::R4, RBench::R5];

    /// Number of sinks, matching the original benchmark.
    pub fn sink_count(self) -> usize {
        match self {
            RBench::R1 => 267,
            RBench::R2 => 598,
            RBench::R3 => 862,
            RBench::R4 => 1903,
            RBench::R5 => 3101,
        }
    }

    /// The conventional name (`"r1"` … `"r5"`).
    pub fn name(self) -> &'static str {
        match self {
            RBench::R1 => "r1",
            RBench::R2 => "r2",
            RBench::R3 => "r3",
            RBench::R4 => "r4",
            RBench::R5 => "r5",
        }
    }
}

/// A sink placement with technology — an instance minus its group
/// partition. Partitioners (see [`crate::partition`]) turn one placement
/// into many instances, so the comparison across group counts uses
/// identical geometry, as in the paper's tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Sink positions and loads.
    pub sinks: Vec<Sink>,
    /// Interconnect technology.
    pub rc: RcParams,
    /// Clock source location (die center).
    pub source: Point,
    /// Human-readable name for tables.
    pub name: String,
}

/// Generates the synthetic equivalent of one `r` benchmark: `sink_count`
/// sinks placed uniformly at random on the die, loads uniform in
/// 5–55 fF, source at the die center. Deterministic in `seed` (and
/// portable: ChaCha12).
pub fn r_benchmark(bench: RBench, seed: u64) -> Placement {
    synthetic_instance(bench.sink_count(), seed, bench.name())
}

/// Generates an arbitrary-size synthetic placement (see [`r_benchmark`]).
pub fn synthetic_instance(n: usize, seed: u64, name: &str) -> Placement {
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0xA5_7D3E_5EED);
    let sinks = (0..n)
        .map(|_| {
            let x = rng.random_range(0.0..DIE_SIDE);
            let y = rng.random_range(0.0..DIE_SIDE);
            let cap = rng.random_range(5.0e-15..55.0e-15);
            Sink::new(Point::new(x, y), cap)
        })
        .collect();
    Placement {
        sinks,
        rc: RcParams::default(),
        source: Point::new(0.5 * DIE_SIDE, 0.5 * DIE_SIDE),
        name: name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_counts_match_the_paper() {
        assert_eq!(RBench::R1.sink_count(), 267);
        assert_eq!(RBench::R2.sink_count(), 598);
        assert_eq!(RBench::R3.sink_count(), 862);
        assert_eq!(RBench::R4.sink_count(), 1903);
        assert_eq!(RBench::R5.sink_count(), 3101);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = r_benchmark(RBench::R1, 7);
        let b = r_benchmark(RBench::R1, 7);
        assert_eq!(a, b);
        let c = r_benchmark(RBench::R1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sinks_are_on_die_with_valid_loads() {
        let p = r_benchmark(RBench::R2, 1);
        assert_eq!(p.sinks.len(), 598);
        for s in &p.sinks {
            assert!(s.pos.x >= 0.0 && s.pos.x <= DIE_SIDE);
            assert!(s.pos.y >= 0.0 && s.pos.y <= DIE_SIDE);
            assert!(s.cap >= 5.0e-15 && s.cap <= 55.0e-15);
        }
        assert_eq!(p.source, Point::new(50_000.0, 50_000.0));
    }

    #[test]
    fn names_and_all() {
        assert_eq!(RBench::ALL.len(), 5);
        assert_eq!(RBench::R3.name(), "r3");
        assert_eq!(r_benchmark(RBench::R4, 0).name, "r4");
    }
}
