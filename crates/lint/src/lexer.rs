//! A hand-rolled Rust lexer: just enough tokenization for the lint rules.
//!
//! The lexer produces identifier / literal / punctuation tokens with line
//! numbers, skipping whitespace, strings, and comments — so a rule that
//! looks for the `unsafe` keyword or an `Instant` path segment never fires
//! on a doc comment or a string literal that merely *mentions* them. Line
//! comments are additionally scanned for `astdme-lint:` pragmas (see
//! [`Pragma`]); block comments are not (pragmas anchor to a specific line,
//! and a block comment has no single one).
//!
//! Handled beyond the obvious: nested block comments, raw strings
//! (`r"…"`, `r#"…"#`, any guard depth, plus `b`/`br` prefixes), character
//! literals vs. lifetimes (`'a'` vs. `'a`), escapes inside string and
//! character literals, numeric literals with `_` separators, exponents
//! and `f32`/`f64` suffixes (classified [`TokKind::Float`] vs.
//! [`TokKind::Int`] — the float-eq rule keys on this), and max-munch
//! multi-character punctuation (`==`, `!=`, `::`, `..=`, `<<=`, …).

/// Token classification; the text itself lives in [`Tok::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish them).
    Ident,
    /// A lifetime such as `'a` (without the quote in `text`).
    Lifetime,
    /// Integer literal (including hex/octal/binary forms).
    Int,
    /// Floating-point literal (`1.0`, `1.`, `2e-9`, `0.5f64`, `1f32`).
    Float,
    /// String literal of any flavor (contents skipped).
    Str,
    /// Character or byte literal.
    Char,
    /// Punctuation, possibly multi-character (`==`, `::`, `->`, …).
    Punct,
}

/// One token: kind, verbatim text, and the 1-indexed line it starts on.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    /// Classification.
    pub kind: TokKind,
    /// The token text, borrowed from the source.
    pub text: &'a str,
    /// 1-indexed source line of the token's first character.
    pub line: usize,
}

/// A `// astdme-lint: allow(<rule>): <reason>` pragma found in a line
/// comment. An empty `reason` is itself a lint violation — justifications
/// are the whole point of the pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule id inside `allow(…)`.
    pub rule: String,
    /// The trimmed justification after the closing `):`; may be empty.
    pub reason: String,
    /// 1-indexed line the pragma comment starts on.
    pub line: usize,
    /// Whether the comment matched the `allow(<rule>)` shape at all; a
    /// malformed pragma (e.g. missing parentheses) reports as a violation
    /// rather than being silently ignored.
    pub well_formed: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All tokens in source order.
    pub tokens: Vec<Tok<'a>>,
    /// All `astdme-lint:` pragmas, in source order.
    pub pragmas: Vec<Pragma>,
    /// Total number of source lines (for the file-length rule).
    pub lines: usize,
}

/// Lexes `src` into tokens and pragmas. Unterminated strings or comments
/// end the token stream at the offending point rather than erroring — a
/// lint must degrade gracefully on files the compiler would reject.
pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let mut out = Lexed {
        lines: src.lines().count(),
        ..Lexed::default()
    };
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                // `///` and `//!` are doc comments: prose, not pragmas —
                // docs may *mention* the pragma marker without enacting it.
                let doc = matches!(b.get(i + 2), Some(&b'/') | Some(&b'!'));
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if !doc {
                    scan_pragma(&src[start..i], line, &mut out.pragmas);
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i, &mut line);
                out.push(TokKind::Str, &src[start..i], line);
            }
            b'r' | b'b' if raw_guard(b, i).is_some() => {
                let (hashes, open) = raw_guard(b, i).expect("guard checked");
                let start = i;
                i = open + 1;
                // Scan for `"` followed by `hashes` `#`s.
                'raw: while i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'"' {
                        let mut k = 0;
                        while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                out.push(TokKind::Str, &src[start..i], line);
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                let start = i;
                i = skip_string(b, i + 1, &mut line);
                out.push(TokKind::Str, &src[start..i], line);
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                let start = i;
                i = skip_char(b, i + 1);
                out.push(TokKind::Char, &src[start..i], line);
            }
            b'\'' => {
                // Lifetime or character literal. `'` + identifier + `'` is
                // a char (`'a'`); `'` + identifier without a closing quote
                // is a lifetime (`'a`, `'static`); anything else (escape,
                // punctuation char) is a char literal.
                let start = i;
                let mut j = i + 1;
                if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') {
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if b.get(j) == Some(&b'\'') {
                        i = j + 1;
                        out.push(TokKind::Char, &src[start..i], line);
                    } else {
                        i = j;
                        out.push(TokKind::Lifetime, &src[start + 1..i], line);
                    }
                } else {
                    i = skip_char(b, i);
                    out.push(TokKind::Char, &src[start..i], line);
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(TokKind::Ident, &src[start..i], line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i = skip_number(b, i);
                let text = &src[start..i];
                let kind = if is_float(text) {
                    TokKind::Float
                } else {
                    TokKind::Int
                };
                out.push(kind, text, line);
            }
            _ => {
                let len = punct_len(&src[i..]);
                out.push(TokKind::Punct, &src[i..i + len], line);
                i += len;
            }
        }
    }
    out
}

impl<'a> Lexed<'a> {
    fn push(&mut self, kind: TokKind, text: &'a str, line: usize) {
        // Multi-line tokens (raw strings) report their *start* line; the
        // lexer's `line` counter has already advanced past their interior
        // newlines, so recover the start by subtracting them.
        let start_line = line - text.bytes().filter(|&c| c == b'\n').count();
        self.tokens.push(Tok {
            kind,
            text,
            line: start_line,
        });
    }
}

/// Skips a `"…"` literal starting at the opening quote; returns the index
/// just past the closing quote. Handles `\"` and `\\` escapes and counts
/// interior newlines into `line`.
fn skip_string(b: &[u8], open: usize, line: &mut usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'…'` literal starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_char(b: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// If position `i` starts a raw-string guard (`r"`, `r#…#"`, `br"`, …),
/// returns `(hash_count, index_of_opening_quote)`.
fn raw_guard(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&b'"')).then_some((hashes, j))
}

/// Skips a numeric literal starting at a digit; returns the end index.
fn skip_number(b: &[u8], start: usize) -> usize {
    let mut i = start;
    if b[i] == b'0' && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b')) {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return i;
    }
    let digits = |b: &[u8], mut i: usize| {
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
        i
    };
    i = digits(b, i);
    // Fractional part: `.` followed by a digit, or a trailing `.` that is
    // neither a range (`..`) nor a method call / field access (`1.max(2)`).
    if b.get(i) == Some(&b'.') {
        match b.get(i + 1) {
            Some(c) if c.is_ascii_digit() => i = digits(b, i + 1),
            Some(c) if *c == b'.' || c.is_ascii_alphabetic() || *c == b'_' => {}
            _ => i += 1,
        }
    }
    // Exponent.
    if matches!(b.get(i), Some(b'e' | b'E')) {
        let mut j = i + 1;
        if matches!(b.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        if b.get(j).is_some_and(|c| c.is_ascii_digit()) {
            i = digits(b, j);
        }
    }
    // Type suffix (`f64`, `u32`, …).
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

/// Whether a lexed numeric literal is floating-point.
fn is_float(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains('.')
        || (text.contains(['e', 'E']) && !text.contains(['u', 'i']))
}

/// Length of the punctuation token starting `s` (max munch, 1–3 bytes).
fn punct_len(s: &str) -> usize {
    const THREE: &[&str] = &["<<=", ">>=", "..=", "..."];
    const TWO: &[&str] = &[
        "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=",
        "^=", "&=", "|=", "<<", ">>",
    ];
    if THREE.iter().any(|p| s.starts_with(p)) {
        3
    } else if TWO.iter().any(|p| s.starts_with(p)) {
        2
    } else {
        s.chars().next().map_or(1, char::len_utf8)
    }
}

/// Scans one line comment for an `astdme-lint:` pragma.
fn scan_pragma(comment: &str, line: usize, out: &mut Vec<Pragma>) {
    const MARK: &str = "astdme-lint:";
    let Some(pos) = comment.find(MARK) else {
        return;
    };
    let rest = comment[pos + MARK.len()..].trim_start();
    let well_formed = rest.starts_with("allow(");
    let (rule, reason) = if well_formed {
        let body = &rest["allow(".len()..];
        match body.find(')') {
            Some(close) => {
                let rule = body[..close].trim().to_string();
                let after = body[close + 1..].trim_start();
                let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
                (rule, reason)
            }
            None => (String::new(), String::new()),
        }
    } else {
        (String::new(), String::new())
    };
    out.push(Pragma {
        well_formed: well_formed && !rule.is_empty(),
        rule,
        reason,
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"let x = "unsafe Instant"; // unsafe in a comment
/* Instant::now() in /* nested */ block */ let y = r#"thread::spawn"#;"##;
        let toks = kinds(src);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && (t == "unsafe" || t == "Instant")));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            2,
            "both string flavors lex as single tokens"
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds(r"fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
        let esc = kinds(r"let c = '\n'; let s = 'static;");
        assert!(esc.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(esc
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "static"));
    }

    #[test]
    fn float_vs_int_and_method_calls() {
        let toks = kinds("let a = 1.0 + 2e-9 + 3f64 + 4 + 0x1f + 1.max(2) + x.0;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.0", "2e-9", "3f64"]);
        // `1.max(2)` lexes `1` as an int, `.` as punctuation.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Int && t == "1"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Int && t == "0x1f"));
    }

    #[test]
    fn multibyte_punctuation_is_single_tokens() {
        let toks = kinds("a == b != c :: d ..= e");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "..="]);
    }

    #[test]
    fn pragmas_parse_rule_and_reason() {
        let lx = lex("let x = 1; // astdme-lint: allow(map-iter): keys are dense\n// astdme-lint: allow(wall-clock):\n// astdme-lint: misspelled\n");
        assert_eq!(lx.pragmas.len(), 3);
        assert_eq!(lx.pragmas[0].rule, "map-iter");
        assert_eq!(lx.pragmas[0].reason, "keys are dense");
        assert_eq!(lx.pragmas[0].line, 1);
        assert!(lx.pragmas[0].well_formed);
        assert_eq!(lx.pragmas[1].reason, "");
        assert!(lx.pragmas[1].well_formed);
        assert!(!lx.pragmas[2].well_formed);
    }
}
