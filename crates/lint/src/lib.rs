//! `astdme_lint` — the workspace's determinism & soundness static-analysis
//! pass.
//!
//! Every invariant this reproduction lives by — batch ≡ sequential and
//! parallel ≡ serial **to the bit** at every thread count, wirelengths
//! bit-identical across refactors — is enforced dynamically by proptests
//! only *after* a violation is written. This pass catches the sources of
//! nondeterminism and unsoundness at the source level, before they reach
//! a test. It is a self-contained binary over a hand-rolled Rust lexer
//! ([`lexer`]) — no registry deps, consistent with the vendored-shims
//! policy — and runs in CI as `cargo run -p astdme_lint -- --expect-clean`
//! on both feature jobs.
//!
//! # Rule catalogue
//!
//! | id | scope | rule |
//! |---|---|---|
//! | `map-iter` | `src/` of the deterministic crates (`engine`, `topo`, `core`, `cache`, `geom`, `delay`) | no `HashMap`/`HashSet` iteration (`iter`, `keys`, `values`, `drain`, `retain`, `for … in &map`, …): hasher order is not deterministic. Membership ops are fine. Sort keys or use a dense table; pragma only with a reason. |
//! | `wall-clock` | all library `src/` except the timing modules (`crates/bench`, `astdme_par`'s pool timing, `astdme_core::stopwatch`) | no `Instant`/`SystemTime`: routing logic must not read the clock. Stage timing goes through [`Stopwatch`](../astdme_core/stopwatch/struct.Stopwatch.html). |
//! | `thread-spawn` | everywhere except `crates/par/src` | no `thread::spawn`/`thread::Builder`/`thread::scope`: one pool, one nesting guard, one place the thread count is decided (`astdme_par`). |
//! | `unsafe-code` | everywhere except the audited allowlist | `unsafe` only in `par/src/pool.rs` (the `scope_with` lifetime erasure) and the counting `GlobalAlloc` shims (`bench/src/bin/scaling.rs`, `tests/alloc_budget.rs`). Crates redundantly `#![forbid(unsafe_code)]`. |
//! | `float-eq` | `crates/engine/src`, `crates/topo/src` | no raw `==`/`!=` with a float-literal or `f32::`/`f64::`-constant operand in ranking paths: use `total_cmp`/`to_bits` or branch on the ordering. (Lexical rule: comparisons of two float *variables* are not detectable without types — reviews still own those.) |
//! | `file-length` | `crates/engine/src`, `crates/topo/src` | files stay ≤ 500 lines (the PR 2/4 module-tree convention). |
//! | `dep-audit` | every `Cargo.toml` (including `vendor/`) | every dependency resolves by `path` (or `workspace = true` inheriting one); no registry versions, git URLs, or `[patch]` sections. |
//!
//! # Pragmas
//!
//! A violation is suppressed by a justification pragma in a line comment
//! on the same line or the line directly above:
//!
//! ```text
//! // astdme-lint: allow(map-iter): drained into a Vec and sorted below
//! for (k, v) in scratch.drain() { … }
//! ```
//!
//! The reason after the closing `):` is **required** — an empty reason is
//! itself a `pragma` violation, as is a malformed pragma or one naming an
//! unknown rule. `dep-audit` takes no pragmas (TOML has no sanctioned
//! comment syntax here and a network dependency has no good reason).
//!
//! # Output
//!
//! Human-readable `file:line: [rule] message` lines by default; `--json`
//! emits a machine-readable document (via `astdme_json`):
//!
//! ```text
//! {"clean": false, "files_scanned": 123, "diagnostics": [
//!   {"rule": "wall-clock", "file": "crates/core/src/eco.rs", "line": 97,
//!    "message": "…"}]}
//! ```
//!
//! `--expect-clean` exits nonzero when any diagnostic survives — the CI
//! gate. The walk skips `target/`, `.git/`, and `fixtures/` directories
//! and takes only the `Cargo.toml`s from `vendor/` (the shims document
//! upstream surfaces; their Rust sources are not held to workspace
//! rules, but their manifests must still be network-free).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
mod manifest;
mod rules;

pub use manifest::check_manifest;
pub use rules::{check_source, FILE_LOC_CAP, RULE_IDS};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (see [`RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: &'static str, file: &str, line: usize, message: String) -> Self {
        Self {
            rule,
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files checked (sources and manifests).
    pub files_scanned: usize,
    /// All findings, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether the workspace is violation-free.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as a JSON document (stable field order, sorted
    /// diagnostics — byte-identical for identical workspace states).
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| {
                astdme_json::object(
                    &[
                        astdme_json::field("rule", astdme_json::quote(d.rule)),
                        astdme_json::field("file", astdme_json::quote(&d.file)),
                        astdme_json::field("line", (d.line as f64).to_string()),
                        astdme_json::field("message", astdme_json::quote(&d.message)),
                    ],
                    2,
                )
            })
            .collect();
        astdme_json::object(
            &[
                astdme_json::field("clean", if self.is_clean() { "true" } else { "false" }),
                astdme_json::field("files_scanned", (self.files_scanned as f64).to_string()),
                astdme_json::field("diagnostics", astdme_json::array(&diags, 1)),
            ],
            0,
        )
    }
}

/// Lints the workspace rooted at `root`: every tracked `.rs` file and
/// `Cargo.toml` (see the crate docs for what the walk includes). Results
/// are deterministic: files are visited in sorted path order.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let abs = root.join(&rel);
        let Ok(src) = fs::read_to_string(&abs) else {
            continue; // non-UTF-8 or vanished mid-walk: nothing to lint
        };
        report.files_scanned += 1;
        let mut diags = if rel.ends_with("Cargo.toml") {
            check_manifest(&rel, &src)
        } else {
            check_source(&rel, &src)
        };
        report.diagnostics.append(&mut diags);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if name == "vendor" && path.parent() == Some(root) {
                // Shim manifests only: their sources mirror upstream
                // APIs and are not held to workspace source rules.
                for shim in fs::read_dir(&path)? {
                    let manifest = shim?.path().join("Cargo.toml");
                    if manifest.is_file() {
                        out.push(rel_of(root, &manifest));
                    }
                }
                continue;
            }
            collect(root, &path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            out.push(rel_of(root, &path));
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .collect();
    rel.to_string_lossy().replace('\\', "/")
}
