//! The seven source-level rules and the pragma machinery.
//!
//! Each rule is a pure function over one lexed file plus its
//! workspace-relative path (scoping is path-based; see the crate docs for
//! the catalogue). Diagnostics carry the rule id, file, 1-indexed line
//! and a message; a well-formed pragma with a non-empty reason on the
//! violation's line (or the line directly above) suppresses it.

use crate::lexer::{lex, Lexed, Pragma, TokKind};
use crate::Diagnostic;

/// Rule ids, as used in pragmas and JSON output.
pub const RULE_IDS: &[&str] = &[
    "map-iter",
    "wall-clock",
    "thread-spawn",
    "unsafe-code",
    "float-eq",
    "file-length",
    "dep-audit",
    "pragma",
];

/// Crates whose routing logic must be bit-deterministic: rule `map-iter`
/// applies to their `src/` trees.
const DET_CRATES: &[&str] = &[
    "crates/engine/src/",
    "crates/topo/src/",
    "crates/core/src/",
    "crates/cache/src/",
    "crates/geom/src/",
    "crates/delay/src/",
];

/// The sanctioned timing modules: the bench harness (stopwatch-driven by
/// nature), `astdme_par`'s pool/steal timing, and the one wall-clock
/// wrapper the deterministic crates are allowed (`astdme_core::stopwatch`).
const WALL_CLOCK_ALLOW: &[&str] = &[
    "crates/bench/",
    "crates/par/src/lib.rs",
    "crates/core/src/stopwatch.rs",
];

/// The audited `unsafe` sites: the `scope_with` lifetime erasure in the
/// worker pool, and the two counting `GlobalAlloc` shims (library crates
/// forbid `unsafe_code`, so each measuring binary hosts its own).
const UNSAFE_ALLOW: &[&str] = &[
    "crates/par/src/pool.rs",
    "crates/bench/src/bin/scaling.rs",
    "tests/alloc_budget.rs",
];

/// Map/set methods whose visit order depends on the hasher.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "into_iter",
    "retain",
];

/// Maximum lines per file in `crates/engine` and `crates/topo` (the
/// PR 2/4 module-tree convention).
pub const FILE_LOC_CAP: usize = 500;

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Whether `path` is library source (a crate's `src/` tree or the root
/// facade), as opposed to tests, examples, or benches.
fn is_lib_src(path: &str) -> bool {
    path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
}

/// Runs every source rule on one file. `rel_path` must be
/// workspace-relative with forward slashes — scoping is path-prefix
/// based, and the fixture tests exercise rules by passing virtual paths.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let lx = lex(src);
    let mut diags = Vec::new();
    check_pragmas(rel_path, &lx, &mut diags);
    if in_any(rel_path, DET_CRATES) {
        map_iter(rel_path, &lx, &mut diags);
    }
    if is_lib_src(rel_path) && !in_any(rel_path, WALL_CLOCK_ALLOW) {
        wall_clock(rel_path, &lx, &mut diags);
    }
    if !rel_path.starts_with("crates/par/src/") {
        thread_spawn(rel_path, &lx, &mut diags);
    }
    if !UNSAFE_ALLOW.contains(&rel_path) {
        unsafe_code(rel_path, &lx, &mut diags);
    }
    if in_any(rel_path, &["crates/engine/src/", "crates/topo/src/"]) {
        float_eq(rel_path, &lx, &mut diags);
        file_length(rel_path, &lx, &mut diags);
    }
    apply_pragmas(&lx.pragmas, &mut diags);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// Every pragma must be well-formed, name a known rule, and justify
/// itself with a non-empty reason.
fn check_pragmas(path: &str, lx: &Lexed<'_>, diags: &mut Vec<Diagnostic>) {
    for p in &lx.pragmas {
        if !p.well_formed {
            diags.push(Diagnostic::new(
                "pragma",
                path,
                p.line,
                "malformed pragma: expected `astdme-lint: allow(<rule>): <reason>`".into(),
            ));
        } else if !RULE_IDS.contains(&p.rule.as_str()) {
            diags.push(Diagnostic::new(
                "pragma",
                path,
                p.line,
                format!("pragma names unknown rule `{}`", p.rule),
            ));
        } else if p.reason.is_empty() {
            diags.push(Diagnostic::new(
                "pragma",
                path,
                p.line,
                format!(
                    "pragma `allow({})` has no reason: justify the exemption after the colon",
                    p.rule
                ),
            ));
        }
    }
}

/// Removes diagnostics covered by a valid pragma on the same line or the
/// line directly above. Pragma-rule diagnostics are never suppressible.
fn apply_pragmas(pragmas: &[Pragma], diags: &mut Vec<Diagnostic>) {
    diags.retain(|d| {
        d.rule == "pragma"
            || !pragmas.iter().any(|p| {
                p.well_formed
                    && !p.reason.is_empty()
                    && p.rule == d.rule
                    && (p.line == d.line || p.line + 1 == d.line)
            })
    });
}

/// Rule `map-iter`: no iteration over `HashMap`/`HashSet` in the
/// deterministic crates. Bindings and fields whose declaration mentions
/// either type are tracked per file; calling an order-dependent method on
/// them, or driving a `for` loop from them, is a violation. Membership
/// (`contains`, `get`, `insert`, `remove`) stays fine — it is only the
/// hasher-dependent *visit order* that breaks bit-determinism.
fn map_iter(path: &str, lx: &Lexed<'_>, diags: &mut Vec<Diagnostic>) {
    let t = &lx.tokens;
    let mut names: Vec<&str> = Vec::new();
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || (t[i].text != "HashMap" && t[i].text != "HashSet") {
            continue;
        }
        // Walk back over the leading path (`std::collections::`).
        let mut j = i;
        while j >= 2 && t[j - 1].text == "::" && t[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // `name: HashMap<…>` (field, param, or annotated let) or
        // `let [mut] name = HashMap::new()`.
        let name = match t[j - 1].text {
            ":" | "=" if j >= 2 && t[j - 2].kind == TokKind::Ident => t[j - 2].text,
            _ => continue,
        };
        if name != "mut" && name != "let" && !names.contains(&name) {
            names.push(name);
        }
    }
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || !names.contains(&t[i].text) {
            continue;
        }
        // `map.iter()` and friends.
        if i + 2 < t.len()
            && t[i + 1].text == "."
            && ITER_METHODS.contains(&t[i + 2].text)
            && t.get(i + 3).is_some_and(|n| n.text == "(")
        {
            diags.push(Diagnostic::new(
                "map-iter",
                path,
                t[i + 2].line,
                format!(
                    "hash-order iteration `{}.{}()` in a deterministic crate: sort keys, use a \
                     dense table, or justify with a pragma",
                    t[i].text,
                    t[i + 2].text
                ),
            ));
        }
        // `for x in [&[mut]] map` — but not `map.something(…)`, where the
        // loop target is whatever the call returns (the iter-method branch
        // above owns the hash-ordered ones).
        if t.get(i + 1).is_some_and(|n| n.text == ".") {
            continue;
        }
        let mut j = i;
        while j >= 1 && (t[j - 1].text == "&" || t[j - 1].text == "mut") {
            j -= 1;
        }
        if j >= 1 && t[j - 1].kind == TokKind::Ident && t[j - 1].text == "in" {
            diags.push(Diagnostic::new(
                "map-iter",
                path,
                t[i].line,
                format!(
                    "hash-order iteration `for … in {}` in a deterministic crate: sort keys, use \
                     a dense table, or justify with a pragma",
                    t[i].text
                ),
            ));
        }
    }
}

/// Rule `wall-clock`: no `Instant`/`SystemTime` outside the timing
/// modules. Routing decisions must never read the clock; stage timing
/// goes through `astdme_core::stopwatch`.
fn wall_clock(path: &str, lx: &Lexed<'_>, diags: &mut Vec<Diagnostic>) {
    for t in &lx.tokens {
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            diags.push(Diagnostic::new(
                "wall-clock",
                path,
                t.line,
                format!(
                    "`{}` outside a timing module: route timing through \
                     astdme_core::stopwatch::Stopwatch",
                    t.text
                ),
            ));
        }
    }
}

/// Rule `thread-spawn`: thread creation belongs to `astdme_par` alone —
/// one pool, one nesting guard, one place the thread count is decided.
fn thread_spawn(path: &str, lx: &Lexed<'_>, diags: &mut Vec<Diagnostic>) {
    let t = &lx.tokens;
    for i in 0..t.len().saturating_sub(2) {
        if t[i].kind == TokKind::Ident
            && t[i].text == "thread"
            && t[i + 1].text == "::"
            && matches!(t[i + 2].text, "spawn" | "Builder" | "scope")
        {
            diags.push(Diagnostic::new(
                "thread-spawn",
                path,
                t[i].line,
                format!(
                    "`thread::{}` outside crates/par: fan out through astdme_par \
                     (scope_with / spawn_pooled / par_map)",
                    t[i + 2].text
                ),
            ));
        }
    }
}

/// Rule `unsafe-code`: `unsafe` anywhere outside the audited allowlist
/// (`scope_with`'s lifetime erasure, the counting allocators).
fn unsafe_code(path: &str, lx: &Lexed<'_>, diags: &mut Vec<Diagnostic>) {
    for t in &lx.tokens {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            diags.push(Diagnostic::new(
                "unsafe-code",
                path,
                t.line,
                "`unsafe` outside the audited allowlist (par's scope_with, the counting \
                 allocators)"
                    .into(),
            ));
        }
    }
}

/// Rule `float-eq`: no raw `==`/`!=` against floating-point operands in
/// the planner/engine ranking paths — use `total_cmp` or `to_bits`.
/// Detection is lexical: a comparison is flagged when either adjacent
/// operand is a float literal or an `f32::`/`f64::` constant path.
fn float_eq(path: &str, lx: &Lexed<'_>, diags: &mut Vec<Diagnostic>) {
    let t = &lx.tokens;
    let floaty_at = |i: usize| -> bool {
        if t[i].kind == TokKind::Float {
            return true;
        }
        // `f64::NAN` / `f32::INFINITY` style paths, looking from either
        // the head (`f64`) or the tail (`NAN`) of the path.
        if t[i].text == "f64" || t[i].text == "f32" {
            return t.get(i + 1).is_some_and(|n| n.text == "::");
        }
        if i >= 2 && t[i - 1].text == "::" && (t[i - 2].text == "f64" || t[i - 2].text == "f32") {
            return true;
        }
        false
    };
    for i in 0..t.len() {
        if t[i].kind != TokKind::Punct || (t[i].text != "==" && t[i].text != "!=") {
            continue;
        }
        let prev_floaty = i > 0 && floaty_at(i - 1);
        // A float literal with a method call hanging off it (`1.5f64
        // .to_bits()`) is not a raw float operand — the call's result is.
        let next_floaty = i + 1 < t.len()
            && floaty_at(i + 1)
            && !(t[i + 1].kind == TokKind::Float && t.get(i + 2).is_some_and(|n| n.text == "."));
        if prev_floaty || next_floaty {
            diags.push(Diagnostic::new(
                "float-eq",
                path,
                t[i].line,
                format!(
                    "raw `{}` on a floating-point operand in a ranking path: use total_cmp, \
                     to_bits, or branch on the ordering directly",
                    t[i].text
                ),
            ));
        }
    }
}

/// Rule `file-length`: the PR 2/4 module-tree convention — no file in
/// `crates/engine` or `crates/topo` exceeds [`FILE_LOC_CAP`] lines.
fn file_length(path: &str, lx: &Lexed<'_>, diags: &mut Vec<Diagnostic>) {
    if lx.lines > FILE_LOC_CAP {
        diags.push(Diagnostic::new(
            "file-length",
            path,
            1,
            format!(
                "file is {} lines (cap {FILE_LOC_CAP}): split it into a module tree",
                lx.lines
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_is_fine_iteration_is_not() {
        let src = "fn f() {\n    let mut used = std::collections::HashSet::new();\n    used.insert(1);\n    if used.contains(&1) {}\n}\n";
        assert!(check_source("crates/topo/src/x.rs", src).is_empty());
        let bad = "fn f() {\n    let mut m = std::collections::HashMap::new();\n    m.insert(1, 2);\n    for (k, v) in &m {\n        println!(\"{k}{v}\");\n    }\n}\n";
        let diags = check_source("crates/topo/src/x.rs", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "map-iter");
        assert_eq!(diags[0].line, 4);
        // Same file outside the deterministic crates: no diagnostic.
        assert!(check_source("crates/instances/src/x.rs", bad).is_empty());
    }

    #[test]
    fn pragma_suppresses_with_reason_only() {
        let bad = "struct S { m: std::collections::HashMap<u32, u32> }\nimpl S {\n    fn f(&self) -> usize {\n        // astdme-lint: allow(map-iter): count is order-independent\n        self.m.keys().count()\n    }\n}\n";
        assert!(check_source("crates/cache/src/x.rs", bad).is_empty());
        let unreasoned = bad.replace(": count is order-independent", ":");
        let diags = check_source("crates/cache/src/x.rs", &unreasoned);
        assert_eq!(
            diags.len(),
            2,
            "empty reason keeps the violation and flags the pragma"
        );
        assert!(diags.iter().any(|d| d.rule == "pragma"));
        assert!(diags.iter().any(|d| d.rule == "map-iter"));
    }

    #[test]
    fn scoping_of_wall_clock_and_unsafe() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert_eq!(check_source("crates/core/src/x.rs", src).len(), 2);
        assert!(check_source("crates/core/src/stopwatch.rs", src).is_empty());
        assert!(check_source("crates/bench/src/bin/scaling.rs", src).is_empty());
        assert!(
            check_source("tests/x.rs", src).is_empty(),
            "tests are not lib src"
        );
        let u = "unsafe fn f() {}\n";
        assert_eq!(check_source("crates/geom/src/x.rs", u).len(), 1);
        assert!(check_source("crates/par/src/pool.rs", u).is_empty());
    }
}
