//! CLI for `astdme_lint`.
//!
//! ```text
//! astdme_lint [--root <dir>] [--json] [--expect-clean]
//! ```
//!
//! With no `--root`, walks up from the current directory to the nearest
//! `Cargo.toml` containing `[workspace]`. `--json` replaces the
//! `file:line: [rule] message` lines with the machine-readable report;
//! `--expect-clean` makes any diagnostic a nonzero exit (the CI gate).

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(src) = std::fs::read_to_string(&manifest) {
            if src.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut expect_clean = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("astdme_lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--expect-clean" => expect_clean = true,
            "--help" | "-h" => {
                println!("usage: astdme_lint [--root <dir>] [--json] [--expect-clean]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("astdme_lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("astdme_lint: no workspace root found (pass --root <dir>)");
        return ExitCode::from(2);
    };
    let report = match astdme_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("astdme_lint: failed to walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json());
    } else {
        for diag in &report.diagnostics {
            println!("{diag}");
        }
        eprintln!(
            "astdme_lint: {} file(s) scanned, {} violation(s)",
            report.files_scanned,
            report.diagnostics.len()
        );
    }
    if expect_clean && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
