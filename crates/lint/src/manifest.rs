//! Rule `dep-audit`: every dependency in every workspace manifest must
//! resolve by `path` (or inherit a `path` entry via `workspace = true`) —
//! no registry versions, no git URLs, no `[patch]` redirection. The
//! vendored shims exist precisely so the build never touches a network.
//!
//! The parser is a deliberately minimal line-oriented TOML subset: table
//! headers, `key = value` pairs, `#` comments. That covers every manifest
//! in this workspace; anything the subset cannot prove safe is reported
//! rather than ignored.

use crate::Diagnostic;

/// Table names whose entries are dependency specifications.
fn is_dep_table(section: &str) -> bool {
    section == "workspace.dependencies"
        || section.rsplit('.').next().is_some_and(|last| {
            matches!(
                last,
                "dependencies" | "dev-dependencies" | "build-dependencies"
            )
        }) && !section.starts_with("package")
}

/// Whether `section` is a *single-dependency* table like
/// `[dependencies.foo]` (keys accumulate until the next header).
fn dep_table_entry(section: &str) -> Option<&str> {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(name) = section.strip_prefix(prefix) {
            return Some(name);
        }
    }
    section.strip_prefix("workspace.dependencies.").or_else(|| {
        section
            .strip_prefix("target.")
            .and_then(|rest| rest.split_once(".dependencies."))
            .map(|(_, name)| name)
    })
}

/// Audits one `Cargo.toml`. `rel_path` is workspace-relative.
pub fn check_manifest(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut section = String::new();
    // `[dependencies.foo]`-style table being accumulated:
    // (name, header line, saw path/workspace key, saw git/version key).
    let mut open_table: Option<(String, usize, bool, bool)> = None;
    let close_table = |t: &mut Option<(String, usize, bool, bool)>, diags: &mut Vec<Diagnostic>| {
        if let Some((name, line, ok, banned)) = t.take() {
            if banned || !ok {
                diags.push(Diagnostic::new(
                    "dep-audit",
                    rel_path,
                    line,
                    format!("dependency `{name}` must be a `path` dependency (no registry or git)"),
                ));
            }
        }
    };
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            close_table(&mut open_table, &mut diags);
            section = rest
                .trim_end_matches(']')
                .trim_matches(|c| c == '[' || c == ']')
                .replace(['"', '\''], "");
            if section.starts_with("patch") {
                diags.push(Diagnostic::new(
                    "dep-audit",
                    rel_path,
                    line_no,
                    "`[patch]` sections redirect registries and are not allowed".into(),
                ));
            }
            if let Some(name) = dep_table_entry(&section) {
                open_table = Some((name.to_string(), line_no, false, false));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if let Some(t) = open_table.as_mut() {
            match key {
                "path" => t.2 = true,
                "workspace" if value == "true" => t.2 = true,
                "git" | "registry" | "version" => t.3 = true,
                _ => {}
            }
            continue;
        }
        if !is_dep_table(&section) {
            continue;
        }
        let ok = if value.starts_with('{') {
            let has_source = value.contains("path") || value.contains("workspace = true");
            let banned = value.contains("git") || value.contains("registry");
            has_source && !banned
        } else {
            // `foo = "1.0"` and any other bare form are registry lookups.
            false
        };
        if !ok {
            diags.push(Diagnostic::new(
                "dep-audit",
                rel_path,
                line_no,
                format!(
                    "dependency `{key}` must be a `path` dependency (or `workspace = true` \
                     inheriting one); registry/git sources are not allowed"
                ),
            ));
        }
    }
    close_table(&mut open_table, &mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let src = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[dependencies]\nfoo = { path = \"../foo\" }\nbar = { workspace = true }\n\n[dev-dependencies]\nbaz = { path = \"../baz\", features = [\"std\"] }\n";
        assert!(check_manifest("crates/x/Cargo.toml", src).is_empty());
    }

    #[test]
    fn registry_git_and_patch_fail() {
        let src = "[dependencies]\nserde = \"1.0\"\nrayon = { version = \"1.8\" }\nrepo = { git = \"https://example.com/x\" }\n\n[patch.crates-io]\nfoo = { path = \"ok\" }\n\n[dependencies.tokio]\nversion = \"1\"\n";
        let diags = check_manifest("Cargo.toml", src);
        assert_eq!(diags.len(), 5);
        assert!(diags.iter().all(|d| d.rule == "dep-audit"));
    }

    #[test]
    fn package_version_keys_are_not_dependencies() {
        let src = "[package]\nversion = \"0.1.0\"\n\n[workspace.package]\nversion = \"0.1.0\"\n";
        assert!(check_manifest("Cargo.toml", src).is_empty());
    }
}
