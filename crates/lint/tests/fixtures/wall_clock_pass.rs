fn demo() -> f64 {
    let t = astdme_core::stopwatch::Stopwatch::start();
    expensive();
    t.seconds()
}

fn expensive() {}
