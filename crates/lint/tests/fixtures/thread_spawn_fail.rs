fn demo() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
    let _b = std::thread::Builder::new();
}
