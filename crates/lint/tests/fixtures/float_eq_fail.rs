fn demo(x: f64, y: f64) -> bool {
    if x == 0.0 {
        return true;
    }
    y != 1.5 || x == f64::INFINITY
}
