fn tiny() {}
