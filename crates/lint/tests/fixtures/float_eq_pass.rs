use std::cmp::Ordering;

fn demo(x: f64, y: f64) -> bool {
    if x.total_cmp(&0.0) == Ordering::Equal {
        return true;
    }
    y.to_bits() != 1.5f64.to_bits()
}
