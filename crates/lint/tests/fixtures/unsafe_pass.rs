fn demo(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}
