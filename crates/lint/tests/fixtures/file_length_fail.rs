//! Synthetic over-length module: 168 generated no-op functions.

fn pad_000() {
    let _ = 0;
}
fn pad_001() {
    let _ = 1;
}
fn pad_002() {
    let _ = 2;
}
fn pad_003() {
    let _ = 3;
}
fn pad_004() {
    let _ = 4;
}
fn pad_005() {
    let _ = 5;
}
fn pad_006() {
    let _ = 6;
}
fn pad_007() {
    let _ = 7;
}
fn pad_008() {
    let _ = 8;
}
fn pad_009() {
    let _ = 9;
}
fn pad_010() {
    let _ = 10;
}
fn pad_011() {
    let _ = 11;
}
fn pad_012() {
    let _ = 12;
}
fn pad_013() {
    let _ = 13;
}
fn pad_014() {
    let _ = 14;
}
fn pad_015() {
    let _ = 15;
}
fn pad_016() {
    let _ = 16;
}
fn pad_017() {
    let _ = 17;
}
fn pad_018() {
    let _ = 18;
}
fn pad_019() {
    let _ = 19;
}
fn pad_020() {
    let _ = 20;
}
fn pad_021() {
    let _ = 21;
}
fn pad_022() {
    let _ = 22;
}
fn pad_023() {
    let _ = 23;
}
fn pad_024() {
    let _ = 24;
}
fn pad_025() {
    let _ = 25;
}
fn pad_026() {
    let _ = 26;
}
fn pad_027() {
    let _ = 27;
}
fn pad_028() {
    let _ = 28;
}
fn pad_029() {
    let _ = 29;
}
fn pad_030() {
    let _ = 30;
}
fn pad_031() {
    let _ = 31;
}
fn pad_032() {
    let _ = 32;
}
fn pad_033() {
    let _ = 33;
}
fn pad_034() {
    let _ = 34;
}
fn pad_035() {
    let _ = 35;
}
fn pad_036() {
    let _ = 36;
}
fn pad_037() {
    let _ = 37;
}
fn pad_038() {
    let _ = 38;
}
fn pad_039() {
    let _ = 39;
}
fn pad_040() {
    let _ = 40;
}
fn pad_041() {
    let _ = 41;
}
fn pad_042() {
    let _ = 42;
}
fn pad_043() {
    let _ = 43;
}
fn pad_044() {
    let _ = 44;
}
fn pad_045() {
    let _ = 45;
}
fn pad_046() {
    let _ = 46;
}
fn pad_047() {
    let _ = 47;
}
fn pad_048() {
    let _ = 48;
}
fn pad_049() {
    let _ = 49;
}
fn pad_050() {
    let _ = 50;
}
fn pad_051() {
    let _ = 51;
}
fn pad_052() {
    let _ = 52;
}
fn pad_053() {
    let _ = 53;
}
fn pad_054() {
    let _ = 54;
}
fn pad_055() {
    let _ = 55;
}
fn pad_056() {
    let _ = 56;
}
fn pad_057() {
    let _ = 57;
}
fn pad_058() {
    let _ = 58;
}
fn pad_059() {
    let _ = 59;
}
fn pad_060() {
    let _ = 60;
}
fn pad_061() {
    let _ = 61;
}
fn pad_062() {
    let _ = 62;
}
fn pad_063() {
    let _ = 63;
}
fn pad_064() {
    let _ = 64;
}
fn pad_065() {
    let _ = 65;
}
fn pad_066() {
    let _ = 66;
}
fn pad_067() {
    let _ = 67;
}
fn pad_068() {
    let _ = 68;
}
fn pad_069() {
    let _ = 69;
}
fn pad_070() {
    let _ = 70;
}
fn pad_071() {
    let _ = 71;
}
fn pad_072() {
    let _ = 72;
}
fn pad_073() {
    let _ = 73;
}
fn pad_074() {
    let _ = 74;
}
fn pad_075() {
    let _ = 75;
}
fn pad_076() {
    let _ = 76;
}
fn pad_077() {
    let _ = 77;
}
fn pad_078() {
    let _ = 78;
}
fn pad_079() {
    let _ = 79;
}
fn pad_080() {
    let _ = 80;
}
fn pad_081() {
    let _ = 81;
}
fn pad_082() {
    let _ = 82;
}
fn pad_083() {
    let _ = 83;
}
fn pad_084() {
    let _ = 84;
}
fn pad_085() {
    let _ = 85;
}
fn pad_086() {
    let _ = 86;
}
fn pad_087() {
    let _ = 87;
}
fn pad_088() {
    let _ = 88;
}
fn pad_089() {
    let _ = 89;
}
fn pad_090() {
    let _ = 90;
}
fn pad_091() {
    let _ = 91;
}
fn pad_092() {
    let _ = 92;
}
fn pad_093() {
    let _ = 93;
}
fn pad_094() {
    let _ = 94;
}
fn pad_095() {
    let _ = 95;
}
fn pad_096() {
    let _ = 96;
}
fn pad_097() {
    let _ = 97;
}
fn pad_098() {
    let _ = 98;
}
fn pad_099() {
    let _ = 99;
}
fn pad_100() {
    let _ = 100;
}
fn pad_101() {
    let _ = 101;
}
fn pad_102() {
    let _ = 102;
}
fn pad_103() {
    let _ = 103;
}
fn pad_104() {
    let _ = 104;
}
fn pad_105() {
    let _ = 105;
}
fn pad_106() {
    let _ = 106;
}
fn pad_107() {
    let _ = 107;
}
fn pad_108() {
    let _ = 108;
}
fn pad_109() {
    let _ = 109;
}
fn pad_110() {
    let _ = 110;
}
fn pad_111() {
    let _ = 111;
}
fn pad_112() {
    let _ = 112;
}
fn pad_113() {
    let _ = 113;
}
fn pad_114() {
    let _ = 114;
}
fn pad_115() {
    let _ = 115;
}
fn pad_116() {
    let _ = 116;
}
fn pad_117() {
    let _ = 117;
}
fn pad_118() {
    let _ = 118;
}
fn pad_119() {
    let _ = 119;
}
fn pad_120() {
    let _ = 120;
}
fn pad_121() {
    let _ = 121;
}
fn pad_122() {
    let _ = 122;
}
fn pad_123() {
    let _ = 123;
}
fn pad_124() {
    let _ = 124;
}
fn pad_125() {
    let _ = 125;
}
fn pad_126() {
    let _ = 126;
}
fn pad_127() {
    let _ = 127;
}
fn pad_128() {
    let _ = 128;
}
fn pad_129() {
    let _ = 129;
}
fn pad_130() {
    let _ = 130;
}
fn pad_131() {
    let _ = 131;
}
fn pad_132() {
    let _ = 132;
}
fn pad_133() {
    let _ = 133;
}
fn pad_134() {
    let _ = 134;
}
fn pad_135() {
    let _ = 135;
}
fn pad_136() {
    let _ = 136;
}
fn pad_137() {
    let _ = 137;
}
fn pad_138() {
    let _ = 138;
}
fn pad_139() {
    let _ = 139;
}
fn pad_140() {
    let _ = 140;
}
fn pad_141() {
    let _ = 141;
}
fn pad_142() {
    let _ = 142;
}
fn pad_143() {
    let _ = 143;
}
fn pad_144() {
    let _ = 144;
}
fn pad_145() {
    let _ = 145;
}
fn pad_146() {
    let _ = 146;
}
fn pad_147() {
    let _ = 147;
}
fn pad_148() {
    let _ = 148;
}
fn pad_149() {
    let _ = 149;
}
fn pad_150() {
    let _ = 150;
}
fn pad_151() {
    let _ = 151;
}
fn pad_152() {
    let _ = 152;
}
fn pad_153() {
    let _ = 153;
}
fn pad_154() {
    let _ = 154;
}
fn pad_155() {
    let _ = 155;
}
fn pad_156() {
    let _ = 156;
}
fn pad_157() {
    let _ = 157;
}
fn pad_158() {
    let _ = 158;
}
fn pad_159() {
    let _ = 159;
}
fn pad_160() {
    let _ = 160;
}
fn pad_161() {
    let _ = 161;
}
fn pad_162() {
    let _ = 162;
}
fn pad_163() {
    let _ = 163;
}
fn pad_164() {
    let _ = 164;
}
fn pad_165() {
    let _ = 165;
}
fn pad_166() {
    let _ = 166;
}
fn pad_167() {
    let _ = 167;
}
