fn demo() {
    // Backoff sleeps are fine; only *creating* threads is fenced.
    std::thread::sleep(std::time::Duration::from_millis(1));
    std::thread::yield_now();
}
