use std::collections::{HashMap, HashSet};

fn demo(keys: &[u32]) -> f64 {
    let weights: HashMap<u32, f64> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(1);
    // Membership and point lookups are order-free; iteration goes over a
    // sorted key list the caller owns.
    let mut total = 0.0;
    for k in keys {
        if seen.contains(k) {
            total += weights.get(k).copied().unwrap_or(0.0);
        }
    }
    total
}
