use std::time::{Instant, SystemTime};

fn demo() -> f64 {
    let t = Instant::now();
    let _epoch = SystemTime::now();
    t.elapsed().as_secs_f64()
}
