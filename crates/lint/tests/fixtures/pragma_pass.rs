fn demo() -> f64 {
    // astdme-lint: allow(wall-clock): fixture demonstrating a justified pragma
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64() // astdme-lint: allow(wall-clock): same-line form
}
