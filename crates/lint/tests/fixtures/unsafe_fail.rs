fn demo(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}
