fn demo() -> f64 {
    // astdme-lint: allow(wall-clock):
    let t = std::time::Instant::now();
    // astdme-lint: allow(no-such-rule): not a real rule id
    // astdme-lint: this is not even the allow form
    t.elapsed().as_secs_f64()
}
