use std::collections::{HashMap, HashSet};

fn demo() -> f64 {
    let weights: HashMap<u32, f64> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(1);
    let mut total = 0.0;
    for k in weights.keys() {
        total += *k as f64;
    }
    for v in &seen {
        total += *v as f64;
    }
    total += weights.values().sum::<f64>();
    total
}
