//! Fixture corpus: every rule has at least one fixture that demonstrably
//! fails the lint and one that passes. Fixtures live under
//! `tests/fixtures/` — a directory name the workspace walker skips, so
//! the deliberate violations never taint a live `--expect-clean` run.
//! The pretend `rel_path` given to `check_source` selects the scope a
//! fixture is judged under, which also lets the same bytes prove both a
//! rule (wrong scope → fires) and its allowlist (sanctioned scope →
//! silent).

use astdme_lint::{check_manifest, check_source, Diagnostic};

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

fn assert_only(diags: &[Diagnostic], rule: &str) {
    assert!(!diags.is_empty(), "expected `{rule}` diagnostics, got none");
    assert!(
        diags.iter().all(|d| d.rule == rule),
        "expected only `{rule}`, got {:?}",
        rules_of(diags)
    );
}

fn assert_clean(diags: &[Diagnostic]) {
    assert!(diags.is_empty(), "expected clean, got {diags:#?}");
}

#[test]
fn map_iter_fixture() {
    let fail = include_str!("fixtures/map_iter_fail.rs");
    let diags = check_source("crates/engine/src/fixture.rs", fail);
    assert_only(&diags, "map-iter");
    // keys(), for-in-&set, values(): three distinct iteration sites.
    assert_eq!(diags.len(), 3, "{diags:#?}");

    let pass = include_str!("fixtures/map_iter_pass.rs");
    assert_clean(&check_source("crates/engine/src/fixture.rs", pass));
    // Outside the deterministic crates the rule does not apply at all.
    assert_clean(&check_source("crates/instances/src/fixture.rs", fail));
}

#[test]
fn wall_clock_fixture() {
    let fail = include_str!("fixtures/wall_clock_fail.rs");
    let diags = check_source("crates/core/src/fixture.rs", fail);
    assert_only(&diags, "wall-clock");

    let pass = include_str!("fixtures/wall_clock_pass.rs");
    assert_clean(&check_source("crates/core/src/fixture.rs", pass));
    // The bench harness is a sanctioned timing module.
    assert_clean(&check_source("crates/bench/src/fixture.rs", fail));
}

#[test]
fn thread_spawn_fixture() {
    let fail = include_str!("fixtures/thread_spawn_fail.rs");
    let diags = check_source("src/fixture.rs", fail);
    assert_only(&diags, "thread-spawn");
    // spawn, scope, and Builder each fire.
    assert_eq!(diags.len(), 3, "{diags:#?}");

    let pass = include_str!("fixtures/thread_spawn_pass.rs");
    assert_clean(&check_source("src/fixture.rs", pass));
    // astdme_par is the one crate allowed to create threads.
    assert_clean(&check_source("crates/par/src/fixture.rs", fail));
}

#[test]
fn unsafe_fixture() {
    let fail = include_str!("fixtures/unsafe_fail.rs");
    let diags = check_source("crates/geom/src/fixture.rs", fail);
    assert_only(&diags, "unsafe-code");

    let pass = include_str!("fixtures/unsafe_pass.rs");
    assert_clean(&check_source("crates/geom/src/fixture.rs", pass));
    // The audited allowlist is exact files, not directories.
    assert_clean(&check_source("crates/par/src/pool.rs", fail));
    assert_only(
        &check_source("crates/par/src/other.rs", fail),
        "unsafe-code",
    );
}

#[test]
fn float_eq_fixture() {
    let fail = include_str!("fixtures/float_eq_fail.rs");
    let diags = check_source("crates/engine/src/fixture.rs", fail);
    assert_only(&diags, "float-eq");
    assert_eq!(diags.len(), 3, "{diags:#?}");

    let pass = include_str!("fixtures/float_eq_pass.rs");
    assert_clean(&check_source("crates/engine/src/fixture.rs", pass));
    // Ranking-path rule: scoped to engine/topo only.
    assert_clean(&check_source("crates/core/src/fixture.rs", fail));
}

#[test]
fn file_length_fixture() {
    let fail = include_str!("fixtures/file_length_fail.rs");
    assert!(fail.lines().count() > astdme_lint::FILE_LOC_CAP);
    let diags = check_source("crates/topo/src/fixture.rs", fail);
    assert_only(&diags, "file-length");
    assert_eq!(diags.len(), 1);

    let pass = include_str!("fixtures/file_length_pass.rs");
    assert_clean(&check_source("crates/topo/src/fixture.rs", pass));
    // The cap governs engine/topo; long files elsewhere are fine.
    assert_clean(&check_source("crates/core/src/fixture.rs", fail));
}

#[test]
fn dep_audit_fixture() {
    let fail = include_str!("fixtures/dep_audit_fail.toml");
    let diags = check_manifest("crates/fixture/Cargo.toml", fail);
    assert_only(&diags, "dep-audit");
    // serde, rayon, [dependencies.tokio], git dep, [patch] header.
    assert_eq!(diags.len(), 5, "{diags:#?}");

    let pass = include_str!("fixtures/dep_audit_pass.toml");
    assert_clean(&check_manifest("crates/fixture/Cargo.toml", pass));
}

#[test]
fn pragma_fixture() {
    let fail = include_str!("fixtures/pragma_fail.rs");
    let diags = check_source("crates/core/src/fixture.rs", fail);
    // The empty-reason and unknown-rule pragmas are violations themselves,
    // and neither suppresses the wall-clock hit it sits next to.
    let rules = rules_of(&diags);
    assert!(rules.contains(&"pragma"), "{diags:#?}");
    assert!(rules.contains(&"wall-clock"), "{diags:#?}");

    let pass = include_str!("fixtures/pragma_pass.rs");
    assert_clean(&check_source("crates/core/src/fixture.rs", pass));
}
