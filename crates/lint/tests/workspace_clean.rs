//! Pins the live workspace lint-clean. This is the same check CI runs as
//! `cargo run -p astdme_lint -- --expect-clean`, wired into `cargo test`
//! so a violation fails fast locally too — with the offending
//! `file:line: [rule]` lines in the panic message.

use std::path::Path;

#[test]
fn live_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected workspace root at {}",
        root.display()
    );
    let report = astdme_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "walk looks truncated: only {} files",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
