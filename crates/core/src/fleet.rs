//! The fleet layer: batch and streaming routing of whole instance
//! portfolios, scheduled by a cost model onto `astdme_par`'s persistent
//! worker pool.
//!
//! The paper's evaluation routes a portfolio — every circuit × group count
//! × router — and a production deployment serves many scenarios
//! concurrently. Two entry points cover both shapes of consumption:
//!
//! * [`route_batch`] — **barrier semantics**: fans whole instances out
//!   across pool workers and returns outcomes in input order, bit-identical
//!   to a sequential loop at every thread count. Internally this is the
//!   streaming execution below plus a collect-and-reorder step.
//! * [`route_stream`] — **completion-order semantics**: returns a
//!   [`RouteStream`] iterator yielding `(input index, outcome)` pairs *as
//!   instances finish*, with a bounded number of completed-but-unconsumed
//!   outcomes in flight. The first small instance of a skewed portfolio is
//!   available orders of magnitude before the barrier would release it —
//!   the serving-layer shape the ROADMAP's daemon item needs.
//!
//! # Scheduling
//!
//! Portfolios are skewed: one n=4000 circuit takes orders of magnitude
//! longer than an n=250 one, and a fixed contiguous-chunk split would park
//! every small instance behind the big one on a single worker. Two
//! mechanisms prevent that:
//!
//! * **Largest-first ordering.** A [`BatchPlan`] estimates each
//!   instance's cost — a-priori from sink count and group structure, or
//!   refined by observed per-stage seconds ([`crate::RouteStats`]) fed to
//!   a [`CostModel`] from prior runs — and hands instances to the workers
//!   costliest first, the classic LPT heuristic.
//! * **Work claiming.** Batch and stream workers share one atomic cursor
//!   over the scheduled order: a worker that finishes early claims the
//!   next pending instance instead of idling behind a static chunk
//!   boundary. Workers come from [`astdme_par`]'s persistent pool —
//!   parked threads woken per call, not spawned per call.
//!
//! Both mechanisms change scheduling only: each instance's outcome is a
//! pure function of the instance and router, so the batch vector is
//! identical at every thread count (and to the sequential loop), and the
//! stream yields the same `(index, outcome)` set in a different arrival
//! order.
//!
//! Instance-level fan-out composes safely with the engine's own `parallel`
//! feature: workers are marked, and any nested fan-out (the engine's
//! candidate-pair expansion) takes its serial fallback on a worker thread
//! — one layer of threads, never a multiplication.
//!
//! # Failure isolation
//!
//! Errors are per-instance: one invalid instance yields its own
//! [`RouteError`] slot and the rest of the batch routes normally. That
//! holds for *panics* too — the fleet layer catches a panic inside a
//! router and surfaces it as [`RouteError::Panicked`] for that instance
//! only, instead of letting the unwind kill the whole batch or stream.
//!
//! # Stream lifecycle
//!
//! A [`RouteStream`] owns its instances and router handle (workers are
//! detached pool jobs, so nothing may borrow from the caller), bounds
//! completed-unconsumed outcomes at [`StreamPolicy::in_flight`] (workers
//! block rather than pile up results), and cancels on drop: dropping the
//! iterator early stops workers from claiming further instances and
//! unblocks any worker waiting to deliver — no joins, no deadlocks, no
//! leaked work beyond the instances already being routed.

use crate::stopwatch::Stopwatch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};

use astdme_cache::{BoundedLru, SubtreeCache};
use astdme_engine::Instance;

use crate::fault::FaultPlan;
use crate::pipeline::{RouteOutcome, RouteStats};
use crate::{ClockRouter, RouteError};

pub use astdme_par::StealStats;

/// Minimum batch size before instances fan out across threads: a single
/// instance gains nothing from the fork-join overhead.
const MIN_BATCH_FANOUT: usize = 2;

/// Estimates per-instance routing cost for [`BatchPlan`] scheduling.
///
/// A fresh model prices an instance a-priori from its sink count and group
/// structure ([`CostModel::static_cost`]); feeding it observed per-stage
/// wall-clock from prior runs ([`CostModel::observe`]) replaces the
/// a-priori guess with measured seconds for instance shapes it has seen,
/// and calibrates the a-priori scale for shapes it has not.
///
/// Only the *relative order* of estimates matters to the schedule, so an
/// uncalibrated model is perfectly usable — observations just sharpen the
/// largest-first ordering when a portfolio mixes repeat shapes (as bench
/// sweeps and production re-routes do).
///
/// The exact-shape refinement map is **bounded**: a long-lived model fed a
/// stream of distinct shapes (a service re-planning many portfolios) keeps
/// only the [`COST_MODEL_SHAPES`] most recently used shapes, evicting
/// deterministically via [`BoundedLru`]. The global calibration sums are
/// unbounded scalars and keep every observation's weight regardless of
/// eviction, so an evicted shape degrades gracefully to a calibrated
/// static estimate rather than an uncalibrated one.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Observed `(total seconds, runs)` per instance shape, keyed by
    /// `(sink count, group count)`; bounded and LRU-evicted.
    observed: BoundedLru<(usize, usize), (f64, u32)>,
    /// Sum of [`CostModel::static_cost`] over all observations.
    observed_static: f64,
    /// Sum of observed seconds over all observations.
    observed_seconds: f64,
}

/// Default bound on the distinct instance shapes a [`CostModel`] keeps
/// exact observations for; least-recently-used shapes beyond it fall back
/// to the calibrated static estimate.
pub const COST_MODEL_SHAPES: usize = 512;

impl Default for CostModel {
    fn default() -> Self {
        Self::with_shape_capacity(COST_MODEL_SHAPES)
    }
}

impl CostModel {
    /// A model with no observations: estimates are purely a-priori.
    pub fn new() -> Self {
        Self::default()
    }

    /// A model whose exact-shape map holds at most `shapes` entries
    /// (clamped to ≥ 1); eviction is deterministic LRU.
    pub fn with_shape_capacity(shapes: usize) -> Self {
        Self {
            observed: BoundedLru::new(shapes),
            observed_static: 0.0,
            observed_seconds: 0.0,
        }
    }

    /// Maximum number of distinct shapes the exact-observation map holds.
    pub fn shape_capacity(&self) -> usize {
        self.observed.capacity()
    }

    /// Number of distinct shapes currently holding exact observations.
    pub fn shapes_observed(&self) -> usize {
        self.observed.len()
    }

    /// The a-priori cost of routing `inst`: sink count times a log factor
    /// for the merge loop, times a mild group-structure factor (more
    /// groups mean more constraint bookkeeping per merge). Unitless — the
    /// absolute scale is irrelevant to scheduling; only ordering counts.
    pub fn static_cost(inst: &Instance) -> f64 {
        let n = inst.sink_count() as f64;
        let k = inst.groups().group_count() as f64;
        n * n.log2().max(1.0) * (1.0 + 0.1 * (k - 1.0))
    }

    /// Records one routed instance's observed pipeline wall-clock
    /// (`stats.total_seconds()`), refining future [`CostModel::estimate`]
    /// calls for this instance shape and calibrating the a-priori scale
    /// for unseen ones.
    pub fn observe(&mut self, inst: &Instance, stats: &RouteStats) {
        let secs = stats.total_seconds();
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        let shape = (inst.sink_count(), inst.groups().group_count());
        if let Some(entry) = self.observed.get_mut(&shape) {
            entry.0 += secs;
            entry.1 += 1;
        } else {
            self.observed.insert(shape, (secs, 1));
        }
        self.observed_static += Self::static_cost(inst);
        self.observed_seconds += secs;
    }

    /// Estimated cost of routing `inst`: the mean observed seconds for its
    /// exact shape when available, otherwise [`CostModel::static_cost`]
    /// scaled by the global seconds-per-static-unit calibration (1.0 when
    /// nothing has been observed yet). Reads without touching LRU recency
    /// — estimating a batch never perturbs which shapes get evicted.
    pub fn estimate(&self, inst: &Instance) -> f64 {
        if let Some(&(total, runs)) = self
            .observed
            .peek(&(inst.sink_count(), inst.groups().group_count()))
        {
            return total / f64::from(runs);
        }
        let scale = if self.observed_static > 0.0 && self.observed_seconds > 0.0 {
            self.observed_seconds / self.observed_static
        } else {
            1.0
        };
        Self::static_cost(inst) * scale
    }

    /// The a-priori cost of an incremental ECO flush
    /// ([`crate::eco::EcoSession::flush`]) touching `dirty` sinks of
    /// `inst`: the dirty cone's re-merging work (`dirty · log n`, with the
    /// same group factor as [`CostModel::static_cost`]) plus the linear
    /// sweep the replay pays regardless (leaf mapping, embedding, audit).
    ///
    /// Priced by the **dirty region, not the instance**: a one-sink move
    /// on a 4000-sink instance must schedule cheaper than a fresh
    /// 250-sink route. A flush touching every sink degenerates to
    /// [`CostModel::static_cost`] (it *is* a full reroute).
    pub fn static_flush_cost(inst: &Instance, dirty: usize) -> f64 {
        if dirty >= inst.sink_count() {
            return Self::static_cost(inst);
        }
        let n = inst.sink_count() as f64;
        let k = inst.groups().group_count() as f64;
        let cone = dirty as f64 * n.log2().max(1.0) * (1.0 + 0.1 * (k - 1.0));
        cone + 0.05 * n
    }

    /// Estimated cost of flushing a `dirty`-sink ECO batch on `inst`:
    /// [`CostModel::static_flush_cost`] under the same global
    /// seconds-per-static-unit calibration as [`CostModel::estimate`]
    /// (flushes share the pipeline's stages, so the full-route calibration
    /// transfers).
    pub fn estimate_flush(&self, inst: &Instance, dirty: usize) -> f64 {
        let scale = if self.observed_static > 0.0 && self.observed_seconds > 0.0 {
            self.observed_seconds / self.observed_static
        } else {
            1.0
        };
        Self::static_flush_cost(inst, dirty) * scale
    }
}

/// Per-batch hardening policy: deadline budgets, fault injection, and
/// index attribution for errors.
///
/// The default policy is exactly the historic behavior — no deadline, no
/// injected faults, errors attributed by position in the batch — so
/// [`route_batch`] and [`BatchPlan::route`] are unchanged for existing
/// callers. The robustness sweep ([`crate::robustness`]) and the
/// fault-tolerance tests construct explicit policies.
#[derive(Debug, Clone, Default)]
pub struct BatchPolicy {
    /// Per-instance wall-clock budget in seconds, checked cooperatively at
    /// the checkpoint after every pipeline stage; an overrun fails that
    /// instance's slot with [`RouteError::DeadlineExceeded`] while the
    /// rest of the batch returns unchanged. `None` disables the check.
    pub deadline_seconds: Option<f64>,
    /// Deterministic fault schedule, keyed by *attributed* instance index
    /// (i.e. batch position plus [`BatchPolicy::index_offset`]).
    pub faults: FaultPlan,
    /// Added to each instance's batch position for error attribution and
    /// fault lookup — a chunked sweep sets this to the chunk's base so
    /// errors carry sweep-global variant indices.
    pub index_offset: usize,
    /// Shared content-addressed subtree cache consulted by every route in
    /// the batch ([`SubtreeCache`] is a cheap `Arc` handle). Repeated
    /// merge regions across the batch — duplicate placements, translated
    /// copies, re-planned portfolios — route once and splice thereafter.
    ///
    /// A hit is **bit-identical to the recompute** the miss path would
    /// perform: cached outcomes are a pure function of the instance and
    /// plan, never of cache state, capacity, sharing, eviction order, or
    /// thread count. (The cached pipeline routes in the
    /// translation-normalized frame — see
    /// [`crate::pipeline::run_with_cache`] — so its outcomes coincide with
    /// the cache-*free* path exactly when the instance's bounding-box
    /// minimum corner is already the origin; otherwise last-ulp merge
    /// coordinates may differ between the two modes, both independently
    /// audited.) `None` (the default) routes every instance on the
    /// historic uncached path.
    pub cache: Option<SubtreeCache>,
}

impl BatchPolicy {
    /// The default policy: no deadline, no faults, zero offset, no cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-instance deadline budget; returns `self` for chaining.
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline_seconds = Some(seconds);
        self
    }

    /// Sets the fault schedule; returns `self` for chaining.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a shared subtree cache (a cheap `Arc` clone of the handle);
    /// returns `self` for chaining.
    pub fn with_cache(mut self, cache: SubtreeCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// A schedule for routing one batch: per-instance cost estimates plus the
/// largest-first order the work-stealing pool consumes them in.
///
/// The plan is pure scheduling — [`BatchPlan::route`] returns outcomes in
/// **input order** and bit-identical to a sequential loop no matter how
/// the estimates rank the instances. A wildly wrong cost model can only
/// cost wall-clock, never change a tree.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Input indices, costliest first (ties broken by input index, so the
    /// schedule itself is deterministic).
    order: Vec<usize>,
    /// Estimated cost per *input* index.
    cost: Vec<f64>,
}

impl BatchPlan {
    /// Plans `instances` with a fresh (a-priori) [`CostModel`].
    pub fn new(instances: &[Instance]) -> Self {
        Self::with_model(instances, &CostModel::new())
    }

    /// Plans `instances` largest-first under `model`'s estimates.
    pub fn with_model(instances: &[Instance], model: &CostModel) -> Self {
        let cost: Vec<f64> = instances.iter().map(|inst| model.estimate(inst)).collect();
        let mut order: Vec<usize> = (0..instances.len()).collect();
        order.sort_by(|&a, &b| cost[b].total_cmp(&cost[a]).then(a.cmp(&b)));
        Self { order, cost }
    }

    /// The scheduled order: input indices, costliest first.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Estimated costs, indexed by *input* position.
    pub fn costs(&self) -> &[f64] {
        &self.cost
    }

    /// Routes the batch under this schedule; see [`route_batch`] for the
    /// result contract. `instances` must be the slice the plan was built
    /// from (or one of equal length — the plan only permutes indices).
    pub fn route<R>(
        &self,
        instances: &[Instance],
        router: &R,
    ) -> Vec<Result<RouteOutcome, RouteError>>
    where
        R: ClockRouter + Sync + ?Sized,
    {
        self.route_with_stats(instances, router).0
    }

    /// Like [`BatchPlan::route`], additionally returning the fan-out's
    /// per-worker [`StealStats`] — the scaling bench's balance
    /// measurement (max/min worker busy-time) reads these.
    pub fn route_with_stats<R>(
        &self,
        instances: &[Instance],
        router: &R,
    ) -> (Vec<Result<RouteOutcome, RouteError>>, StealStats)
    where
        R: ClockRouter + Sync + ?Sized,
    {
        self.route_with_policy(instances, router, &BatchPolicy::default())
    }

    /// Like [`BatchPlan::route_with_stats`], under an explicit
    /// [`BatchPolicy`]: per-instance deadlines, deterministic fault
    /// injection, and index-offset attribution. Instances the policy does
    /// not touch return outcomes bit-identical to a policy-free run at
    /// every thread count.
    ///
    /// This is the collect-and-reorder form of the streaming execution:
    /// pool workers claim schedule slots from a shared cursor and deliver
    /// `(input index, outcome)` pairs in completion order; the barrier
    /// drains them into input-order slots after the last worker finishes.
    /// Each outcome is a pure function of its instance and the policy, so
    /// the reorder step preserves bit-identity with the sequential loop.
    pub fn route_with_policy<R>(
        &self,
        instances: &[Instance],
        router: &R,
        policy: &BatchPolicy,
    ) -> (Vec<Result<RouteOutcome, RouteError>>, StealStats)
    where
        R: ClockRouter + Sync + ?Sized,
    {
        assert_eq!(
            self.order.len(),
            instances.len(),
            "BatchPlan built for a different batch size"
        );
        let len = instances.len();
        let mut out: Vec<Option<Result<RouteOutcome, RouteError>>> = Vec::with_capacity(len);
        out.resize_with(len, || None);
        let threads = astdme_par::fanout_threads(len, MIN_BATCH_FANOUT);
        let stats = if threads < 2 {
            // Serial: route in schedule order, scatter to input slots —
            // byte-for-byte the one-thread schedule the determinism tests
            // compare against.
            let t0 = Stopwatch::start();
            for &idx in &self.order {
                out[idx] = Some(route_caught(
                    router,
                    &instances[idx],
                    idx + policy.index_offset,
                    policy,
                ));
            }
            StealStats {
                worker_busy_seconds: vec![t0.seconds()],
                worker_items: vec![len],
                worker_queue_wait_seconds: vec![0.0],
                worker_idle_seconds: vec![0.0],
            }
        } else {
            // Streamed barrier: the caller and `threads - 1` pool helpers
            // claim schedule slots from a shared cursor and send
            // completion-order results over an unbounded channel (every
            // send is buffered, so no worker ever blocks on delivery and
            // the barrier drains after the join).
            let (tx, rx) = std::sync::mpsc::channel();
            let cursor = AtomicUsize::new(0);
            let submitted = Stopwatch::start();
            let clocks: Mutex<Vec<(f64, usize, f64, f64)>> = Mutex::new(Vec::new());
            let work = |_slot: usize| {
                let tx = tx.clone();
                let queue_wait = submitted.seconds();
                let t0 = Stopwatch::start();
                let mut items = 0usize;
                let mut item_seconds = 0.0f64;
                loop {
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    if slot >= len {
                        break;
                    }
                    let idx = self.order[slot];
                    let tb = Stopwatch::start();
                    let result =
                        route_caught(router, &instances[idx], idx + policy.index_offset, policy);
                    item_seconds += tb.seconds();
                    items += 1;
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                }
                let busy = t0.seconds();
                clocks.lock().unwrap_or_else(|e| e.into_inner()).push((
                    busy,
                    items,
                    queue_wait,
                    (busy - item_seconds).max(0.0),
                ));
            };
            astdme_par::scope_with(threads - 1, &work, |_running| work(0));
            for (idx, result) in rx.try_iter() {
                out[idx] = Some(result);
            }
            let mut stats = StealStats::default();
            let clocks = clocks.into_inner().unwrap_or_else(|e| e.into_inner());
            for (busy, items, queue_wait, idle) in clocks {
                stats.worker_busy_seconds.push(busy);
                stats.worker_items.push(items);
                stats.worker_queue_wait_seconds.push(queue_wait);
                stats.worker_idle_seconds.push(idle);
            }
            stats
        };
        let out = out
            .into_iter()
            .map(|r| r.expect("schedule order is a permutation of the batch"))
            .collect();
        (out, stats)
    }
}

/// Routes one instance under the batch policy, converting a panic inside
/// the router into a per-instance [`RouteError::Panicked`] attributed with
/// the instance's index and sink count — the isolation guarantee of the
/// fleet layer. Installs the thread-local route context the pipeline's
/// fault/deadline checkpoints poll; the RAII guard clears it even when the
/// route panics, so the worker thread is clean for its next instance.
/// Crate-visible: the robustness sweep routes its variants through the
/// same guarded path.
pub(crate) fn route_caught<R>(
    router: &R,
    inst: &Instance,
    index: usize,
    policy: &BatchPolicy,
) -> Result<RouteOutcome, RouteError>
where
    R: ClockRouter + ?Sized,
{
    catch_unwind(AssertUnwindSafe(|| {
        let _ctx = crate::fault::install(
            index,
            policy.deadline_seconds,
            policy.faults.get(index),
            policy.cache.clone(),
        );
        router.route_traced(inst)
    }))
    .unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(RouteError::Panicked {
            instance: index,
            sinks: inst.sink_count(),
            message,
        })
    })
}

/// Routes every instance in `instances` through `router`, fanning
/// instances out across work-stealing threads, costliest instance first
/// (see the [module docs](self) for the scheduling model).
///
/// Results come back **in input order**, one per instance, each carrying
/// the routed tree plus its audit report and per-stage stats
/// ([`RouteOutcome`]). The output is bit-identical to
/// `instances.iter().map(|i| router.route_traced(i))` at every thread
/// count (including the [`astdme_par::set_thread_override`] settings the
/// determinism tests sweep): scheduling changes, trees never do.
///
/// Errors are per-instance — one invalid *or panicking* instance does not
/// poison the rest of the batch; a panic surfaces as
/// [`RouteError::Panicked`] in that instance's slot.
///
/// Equivalent to `BatchPlan::new(instances).route(instances, router)`;
/// build the [`BatchPlan`] yourself to reuse a calibrated [`CostModel`]
/// or to read the fan-out's [`StealStats`].
pub fn route_batch<R>(instances: &[Instance], router: &R) -> Vec<Result<RouteOutcome, RouteError>>
where
    R: ClockRouter + Sync + ?Sized,
{
    BatchPlan::new(instances).route(instances, router)
}

/// Like [`route_batch`], with a shared content-addressed subtree cache:
/// repeated merge regions across the batch (duplicate or translated
/// placements under the same plan) route once and splice thereafter.
///
/// Every outcome is a pure function of its instance and the router's
/// plan: a hit is **bit-identical to the recompute** a miss performs, at
/// every thread count and under every cache capacity, sharing pattern,
/// and eviction order — cache state can change wall-clock and the
/// per-outcome [`RouteStats::cache_hit`] flag, never a tree. See
/// [`BatchPolicy::cache`] for how cached outcomes relate to the
/// cache-free path. Pass the same handle across successive batches (or a
/// [`crate::robustness`] sweep) to carry the memo between them;
/// [`SubtreeCache::stats`] reports the accumulated hit rate.
pub fn route_batch_cached<R>(
    instances: &[Instance],
    router: &R,
    cache: &SubtreeCache,
) -> Vec<Result<RouteOutcome, RouteError>>
where
    R: ClockRouter + Sync + ?Sized,
{
    let policy = BatchPolicy::new().with_cache(cache.clone());
    BatchPlan::new(instances)
        .route_with_policy(instances, router, &policy)
        .0
}

/// Default bound on completed-but-unconsumed outcomes a [`RouteStream`]
/// holds before its workers block: deep enough that a consumer doing real
/// work per result never stalls the workers, shallow enough that a slow
/// consumer of a large portfolio caps memory at a handful of trees.
pub const DEFAULT_STREAM_IN_FLIGHT: usize = 16;

/// How a [`route_stream`] call runs: the per-instance hardening policy
/// plus the stream's in-flight bound and worker count.
#[derive(Debug, Clone)]
pub struct StreamPolicy {
    /// Per-instance hardening applied to every routed instance: deadline,
    /// fault injection, index-offset attribution, subtree cache — exactly
    /// the [`BatchPolicy`] semantics of the barrier path.
    pub batch: BatchPolicy,
    /// Bound on completed-but-unconsumed outcomes (clamped to ≥ 1 at
    /// stream construction). Workers that finish an instance while the
    /// buffer is full block until the consumer catches up, so peak live
    /// trees stay at `in_flight` plus one per worker.
    pub in_flight: usize,
    /// Number of stream workers, capped at the instance count; `None`
    /// (the default) uses [`astdme_par::effective_threads`] — the thread
    /// override when set, else `ASTDME_THREADS`/`available_parallelism`.
    pub workers: Option<usize>,
}

impl Default for StreamPolicy {
    fn default() -> Self {
        Self {
            batch: BatchPolicy::default(),
            in_flight: DEFAULT_STREAM_IN_FLIGHT,
            workers: None,
        }
    }
}

impl StreamPolicy {
    /// The default policy: no hardening, [`DEFAULT_STREAM_IN_FLIGHT`]
    /// outcomes in flight, automatic worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-instance hardening policy; returns `self`.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the in-flight bound (clamped to at least 1); returns `self`.
    pub fn with_in_flight(mut self, in_flight: usize) -> Self {
        self.in_flight = in_flight.max(1);
        self
    }

    /// Pins the worker count (capped at the instance count when the
    /// stream starts); returns `self`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }
}

/// State shared between a [`RouteStream`] handle and its detached pool
/// workers. Owned (behind an `Arc`), never borrowed: detached jobs have no
/// barrier to outwait a caller's stack frame, and a leaked handle must not
/// dangle them.
struct StreamShared {
    instances: Vec<Instance>,
    /// LPT schedule over `instances` (see [`BatchPlan`]).
    order: Vec<usize>,
    /// Next schedule slot to claim.
    cursor: AtomicUsize,
    /// Set when the handle drops: workers stop claiming new instances.
    cancelled: AtomicBool,
    router: Arc<dyn ClockRouter + Send + Sync>,
    policy: BatchPolicy,
}

/// A completion-order stream of routing outcomes; see [`route_stream`].
///
/// Iterates `(input index, outcome)` pairs in the order instances
/// *finish* — for a skewed portfolio under multiple workers, the first
/// yields arrive while the largest instance is still routing. The full
/// drain contains exactly one pair per instance; collecting and reordering
/// them reproduces [`route_batch`]'s vector bit for bit.
///
/// Dropping the stream before exhaustion **cancels** it: workers stop
/// claiming new instances, any worker blocked on delivery unblocks
/// immediately (its completed outcome is discarded), and instances already
/// mid-route run to completion on the pool without anything waiting on
/// them. Dropping never blocks and never deadlocks the pool.
pub struct RouteStream {
    rx: Receiver<(usize, Result<RouteOutcome, RouteError>)>,
    shared: Arc<StreamShared>,
    total: usize,
    yielded: usize,
}

impl std::fmt::Debug for RouteStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteStream")
            .field("total", &self.total)
            .field("yielded", &self.yielded)
            .finish_non_exhaustive()
    }
}

impl RouteStream {
    /// Number of instances the stream was started with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of outcomes yielded so far.
    pub fn yielded(&self) -> usize {
        self.yielded
    }

    /// Outcomes not yet yielded.
    pub fn remaining(&self) -> usize {
        self.total - self.yielded
    }
}

impl Iterator for RouteStream {
    type Item = (usize, Result<RouteOutcome, RouteError>);

    fn next(&mut self) -> Option<Self::Item> {
        match self.rx.recv() {
            Ok(item) => {
                self.yielded += 1;
                Some(item)
            }
            Err(_) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.remaining();
        (remaining, Some(remaining))
    }
}

impl Drop for RouteStream {
    fn drop(&mut self) {
        // Stop workers from claiming further instances; dropping `rx`
        // right after (field drop order) disconnects the channel, so a
        // worker blocked mid-`send` gets `SendError` and exits its loop.
        self.shared.cancelled.store(true, Ordering::Release);
    }
}

/// Routes `instances` through `router` on detached pool workers and
/// returns a [`RouteStream`] yielding `(input index, outcome)` pairs in
/// **completion order** — each result available the moment its instance
/// finishes, instead of at the batch barrier.
///
/// Instances are scheduled costliest-first (the same [`BatchPlan`] LPT
/// order as [`route_batch`]) and claimed from a shared cursor, so the
/// skewed-portfolio behavior is: the big instance starts immediately on
/// one worker while the others drain the small ones — time-to-first-result
/// is one *small* route, not the whole batch (the scaling bench's
/// `latency` section measures exactly this against the barrier wait).
///
/// Per-instance semantics are identical to the batch path: outcomes are a
/// pure function of `(instance, router, policy.batch)`, panics surface as
/// [`RouteError::Panicked`] in their own instance's pair while later
/// completions keep arriving, and deadlines/faults/caches apply per
/// [`BatchPolicy`]. Collecting the stream and sorting by index reproduces
/// [`route_batch`] bit for bit.
///
/// The stream owns `instances` and the router handle — workers are
/// detached pool jobs that may outlive any particular stack frame, so
/// nothing here can borrow. An empty `instances` yields an immediately
/// exhausted stream.
pub fn route_stream(
    instances: Vec<Instance>,
    router: Arc<dyn ClockRouter + Send + Sync>,
    policy: StreamPolicy,
) -> RouteStream {
    let total = instances.len();
    let plan = BatchPlan::new(&instances);
    let workers = policy
        .workers
        .unwrap_or_else(astdme_par::effective_threads)
        .max(1)
        .min(total);
    let (tx, rx) = sync_channel(policy.in_flight.max(1));
    let shared = Arc::new(StreamShared {
        instances,
        order: plan.order,
        cursor: AtomicUsize::new(0),
        cancelled: AtomicBool::new(false),
        router,
        policy: policy.batch,
    });
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        astdme_par::spawn_pooled(move || stream_worker(&shared, &tx));
    }
    // With the spawn-loop clones handed out, drop the original sender:
    // the channel disconnects (and `next()` returns `None`) exactly when
    // the last worker exits — or immediately for an empty portfolio.
    drop(tx);
    RouteStream {
        rx,
        shared,
        total,
        yielded: 0,
    }
}

/// One detached stream worker: claim the next scheduled instance, route
/// it, deliver the outcome, repeat — until the schedule is exhausted, the
/// stream is cancelled, or delivery fails (receiver gone).
fn stream_worker(
    shared: &StreamShared,
    tx: &SyncSender<(usize, Result<RouteOutcome, RouteError>)>,
) {
    loop {
        if shared.cancelled.load(Ordering::Acquire) {
            break;
        }
        let slot = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if slot >= shared.order.len() {
            break;
        }
        let idx = shared.order[slot];
        let result = route_caught(
            shared.router.as_ref(),
            &shared.instances[idx],
            idx + shared.policy.index_offset,
            &shared.policy,
        );
        if tx.send((idx, result)).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AstDme, Groups, RcParams, Sink};
    use astdme_geom::Point;

    fn inst(n: usize, jitter: f64) -> Instance {
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                Sink::new(
                    Point::new(600.0 * i as f64 + jitter, (i % 4) as f64 * 300.0),
                    1e-14,
                )
            })
            .collect();
        let assignment: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, 2).unwrap(),
            RcParams::default(),
            Point::new(0.0, 3000.0),
        )
        .unwrap()
    }

    #[test]
    fn flush_estimate_prices_by_dirty_region_not_instance_size() {
        // A one-sink ECO move on a large instance must schedule cheaper
        // than a fresh route of a much smaller instance — both a-priori
        // and under an observation-calibrated model.
        let large = inst(4000, 0.0);
        let small = inst(250, 0.0);
        assert!(
            CostModel::static_flush_cost(&large, 1) < CostModel::static_cost(&small),
            "1-sink flush on n=4000 ({}) must undercut fresh n=250 ({})",
            CostModel::static_flush_cost(&large, 1),
            CostModel::static_cost(&small)
        );
        let mut model = CostModel::new();
        let mut stats = RouteStats::default();
        stats.merge.seconds = 0.5;
        model.observe(&inst(1000, 0.0), &stats);
        assert!(model.estimate_flush(&large, 1) < model.estimate(&small));
        // Monotone in the dirty count, and a full-instance flush prices
        // as a full reroute.
        assert!(CostModel::static_flush_cost(&large, 1) < CostModel::static_flush_cost(&large, 64));
        assert_eq!(
            CostModel::static_flush_cost(&large, 4000),
            CostModel::static_cost(&large)
        );
    }

    #[test]
    fn batch_matches_sequential_loop_in_order() {
        let instances: Vec<Instance> = (0..4).map(|i| inst(8 + i, 37.0 * i as f64)).collect();
        let router = AstDme::new();
        let batch = route_batch(&instances, &router);
        assert_eq!(batch.len(), instances.len());
        for (i, (out, inst)) in batch.iter().zip(&instances).enumerate() {
            let seq = router.route_traced(inst).expect("routes");
            let out = out.as_ref().expect("routes");
            assert_eq!(out.tree, seq.tree, "instance {i} diverged");
            assert_eq!(out.report, seq.report, "instance {i} report diverged");
        }
    }

    #[test]
    fn batch_works_through_a_trait_object() {
        let instances: Vec<Instance> = (0..2).map(|i| inst(6, i as f64)).collect();
        let router: &(dyn ClockRouter + Sync) = &AstDme::new();
        let batch = route_batch(instances.as_slice(), router);
        assert!(batch.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = route_batch(&[], &AstDme::new());
        assert!(batch.is_empty());
    }

    #[test]
    fn plan_schedules_largest_first() {
        // Sizes deliberately out of order: 12, 40, 6, 40.
        let instances = vec![inst(12, 0.0), inst(40, 1.0), inst(6, 2.0), inst(40, 3.0)];
        let plan = BatchPlan::new(&instances);
        assert_eq!(
            plan.order(),
            &[1, 3, 0, 2],
            "costliest first, ties by index"
        );
        assert_eq!(plan.costs().len(), 4);
        assert!(plan.costs()[1] > plan.costs()[0]);
        // The schedule must not perturb results or their order.
        let router = AstDme::new();
        let planned = plan.route(&instances, &router);
        for (i, (out, inst)) in planned.iter().zip(&instances).enumerate() {
            let seq = router.route_traced(inst).expect("routes");
            assert_eq!(out.as_ref().expect("routes").tree, seq.tree, "instance {i}");
        }
    }

    #[test]
    fn static_cost_grows_with_sinks_and_groups() {
        let small = inst(10, 0.0);
        let large = inst(200, 0.0);
        assert!(CostModel::static_cost(&large) > CostModel::static_cost(&small));
        let model = CostModel::new();
        assert_eq!(model.estimate(&small), CostModel::static_cost(&small));
    }

    fn stats_with_merge_seconds(seconds: f64) -> RouteStats {
        RouteStats {
            merge: crate::pipeline::StageStats {
                seconds,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn observed_seconds_refine_estimates() {
        let a = inst(10, 0.0);
        let b = inst(20, 0.0);
        let mut model = CostModel::new();
        // Pretend the *smaller* shape measured slower: observations must
        // override the a-priori ordering for seen shapes.
        model.observe(&a, &stats_with_merge_seconds(2.0));
        model.observe(&b, &stats_with_merge_seconds(0.5));
        assert!(model.estimate(&a) > model.estimate(&b));
        let plan = BatchPlan::with_model(&[a, b], &model);
        assert_eq!(plan.order(), &[0, 1]);
        // An unseen shape still gets a calibrated static estimate.
        let c = inst(15, 0.0);
        assert!(model.estimate(&c) > 0.0);
    }

    #[test]
    fn observe_averages_repeat_shapes() {
        let a = inst(10, 0.0);
        let mut model = CostModel::new();
        model.observe(&a, &stats_with_merge_seconds(1.0));
        model.observe(&a, &stats_with_merge_seconds(3.0));
        assert!((model.estimate(&a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shape_map_is_bounded_with_deterministic_eviction() {
        // Capacity 2: observing a third distinct shape must evict the
        // least recently *observed* shape — estimate() peeks and never
        // perturbs recency.
        let a = inst(10, 0.0);
        let b = inst(20, 0.0);
        let c = inst(30, 0.0);
        let mut model = CostModel::with_shape_capacity(2);
        assert_eq!(model.shape_capacity(), 2);
        model.observe(&a, &stats_with_merge_seconds(5.0));
        model.observe(&b, &stats_with_merge_seconds(0.25));
        assert_eq!(model.shapes_observed(), 2);
        // Reading estimates (even many times) must not save shape `a`.
        for _ in 0..8 {
            let _ = model.estimate(&a);
        }
        model.observe(&c, &stats_with_merge_seconds(1.0));
        assert_eq!(model.shapes_observed(), 2, "map stays bounded");
        // Evicted `a` falls back to the *calibrated* static estimate: the
        // exact 5.0s observation is gone, but the global calibration
        // still carries its weight.
        let scale = (5.0 + 0.25 + 1.0)
            / (CostModel::static_cost(&a)
                + CostModel::static_cost(&b)
                + CostModel::static_cost(&c));
        assert!((model.estimate(&a) - CostModel::static_cost(&a) * scale).abs() < 1e-12);
        // Survivors keep their exact observations.
        assert!((model.estimate(&b) - 0.25).abs() < 1e-12);
        assert!((model.estimate(&c) - 1.0).abs() < 1e-12);
        // Deterministic: the same observation sequence evicts the same
        // shape, every run.
        let rebuild = || {
            let mut m = CostModel::with_shape_capacity(2);
            m.observe(&a, &stats_with_merge_seconds(5.0));
            m.observe(&b, &stats_with_merge_seconds(0.25));
            m.observe(&c, &stats_with_merge_seconds(1.0));
            (m.estimate(&a), m.estimate(&b), m.estimate(&c))
        };
        assert_eq!(rebuild(), rebuild());
    }

    #[test]
    fn cached_batch_is_bit_identical_and_hits_on_duplicates() {
        use astdme_cache::SubtreeCache;
        // Three copies of one placement plus a distinct one, all anchored
        // at the origin (sink 0 sits at (0, 0), so translation
        // normalization is the exact identity): the duplicate region
        // routes once, splices twice, and every tree matches the
        // cache-free batch bit for bit.
        let instances = vec![inst(12, 0.0), inst(12, 0.0), inst(9, 0.0), inst(12, 0.0)];
        let router = AstDme::new();
        let cold = route_batch(&instances, &router);
        let cache = SubtreeCache::new(64);
        let warm = route_batch_cached(&instances, &router, &cache);
        for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
            let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
            assert_eq!(c.tree, w.tree, "instance {i} tree diverged under cache");
            assert_eq!(c.report, w.report, "instance {i} report diverged");
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4);
        // Concurrent duplicates may race their first lookups, but after a
        // full pass both distinct regions are resident: a second pass must
        // hit on every instance — and still match bit for bit.
        let rewarm = route_batch_cached(&instances, &router, &cache);
        for (i, (c, w)) in cold.iter().zip(&rewarm).enumerate() {
            assert_eq!(
                c.as_ref().unwrap().tree,
                w.as_ref().unwrap().tree,
                "instance {i} tree diverged on the warm pass"
            );
            assert!(w.as_ref().unwrap().stats.cache_hit, "instance {i} must hit");
        }
        assert_eq!(cache.stats().hits, stats.hits + 4);
    }

    #[test]
    fn stats_account_for_every_instance() {
        let instances: Vec<Instance> = (0..5).map(|i| inst(6 + i, i as f64)).collect();
        let plan = BatchPlan::new(&instances);
        let (out, stats) = plan.route_with_stats(&instances, &AstDme::new());
        assert_eq!(out.len(), 5);
        assert_eq!(stats.worker_items.iter().sum::<usize>(), 5);
        assert!(stats.balance() >= 1.0);
    }

    /// A router that panics on one specific sink count — the failure mode
    /// the batch layer must contain.
    struct PanicAt {
        trip: usize,
        inner: AstDme,
    }

    impl ClockRouter for PanicAt {
        fn route_traced(&self, inst: &Instance) -> Result<RouteOutcome, RouteError> {
            assert_ne!(inst.sink_count(), self.trip, "injected panic");
            self.inner.route_traced(inst)
        }
        fn name(&self) -> &'static str {
            "panic-at"
        }
    }

    #[test]
    fn panicking_instance_does_not_poison_the_batch() {
        let instances = vec![inst(8, 0.0), inst(9, 1.0), inst(10, 2.0)];
        let router = PanicAt {
            trip: 9,
            inner: AstDme::new(),
        };
        let batch = route_batch(&instances, &router);
        assert_eq!(batch.len(), 3);
        match &batch[1] {
            Err(RouteError::Panicked {
                instance,
                sinks,
                message,
            }) => {
                assert_eq!(*instance, 1, "panic attributed to the wrong slot");
                assert_eq!(*sinks, 9);
                assert!(message.contains("injected panic"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        for i in [0usize, 2] {
            let seq = AstDme::new().route_traced(&instances[i]).expect("routes");
            let out = batch[i].as_ref().expect("survivors route normally");
            assert_eq!(out.tree, seq.tree, "instance {i}");
        }
    }

    /// A 1-sink instance: the single sink forms its own (only) group.
    fn one_sink_inst() -> Instance {
        Instance::new(
            vec![Sink::new(Point::new(500.0, 700.0), 1e-14)],
            Groups::single(1).unwrap(),
            RcParams::default(),
            Point::new(0.0, 0.0),
        )
        .unwrap()
    }

    #[test]
    fn empty_batch_plan_has_no_order_and_routes_to_nothing() {
        let plan = BatchPlan::new(&[]);
        assert!(plan.order().is_empty());
        assert!(plan.costs().is_empty());
        assert!(plan.route(&[], &AstDme::new()).is_empty());
        // With a calibrated model too.
        let mut model = CostModel::new();
        model.observe(&inst(8, 0.0), &stats_with_merge_seconds(1.0));
        assert!(BatchPlan::with_model(&[], &model).order().is_empty());
    }

    #[test]
    fn one_sink_instance_costs_are_finite_and_routable() {
        let tiny = one_sink_inst();
        // n=1 ⇒ log2(n) = 0; the .max(1.0) floor keeps the cost positive
        // and finite, never NaN.
        let cost = CostModel::static_cost(&tiny);
        assert!(cost.is_finite() && cost > 0.0, "got {cost}");
        let model = CostModel::new();
        assert!(model.estimate(&tiny).is_finite());
        let plan = BatchPlan::new(std::slice::from_ref(&tiny));
        assert_eq!(plan.order(), &[0]);
        assert!(plan.costs()[0].is_finite());
        let batch = plan.route(std::slice::from_ref(&tiny), &AstDme::new());
        let out = batch[0].as_ref().expect("1-sink instance routes");
        assert_eq!(out.tree.sink_nodes().count(), 1);
        // Mixed with a normal instance, scheduling still works.
        let mixed = vec![tiny, inst(12, 0.0)];
        let plan = BatchPlan::new(&mixed);
        assert_eq!(plan.order(), &[1, 0], "larger instance schedules first");
        assert!(route_batch(&mixed, &AstDme::new())
            .iter()
            .all(|r| r.is_ok()));
    }

    #[test]
    fn observing_a_one_sink_instance_keeps_estimates_finite() {
        let tiny = one_sink_inst();
        let mut model = CostModel::new();
        model.observe(&tiny, &stats_with_merge_seconds(0.25));
        assert!((model.estimate(&tiny) - 0.25).abs() < 1e-12);
        // Calibration from the 1-sink observation must not poison unseen
        // shapes either.
        assert!(model.estimate(&inst(10, 0.0)).is_finite());
    }

    #[test]
    fn injected_panic_fault_is_attributed_with_the_offset() {
        use crate::fault::{Fault, FaultKind};
        use crate::pipeline::StageId;
        let instances = vec![inst(8, 0.0), inst(9, 1.0), inst(10, 2.0)];
        let policy = BatchPolicy::new().with_faults(FaultPlan::new().inject(
            101,
            Fault {
                stage: StageId::Merge,
                kind: FaultKind::Panic,
            },
        ));
        let policy = BatchPolicy {
            index_offset: 100,
            ..policy
        };
        let plan = BatchPlan::new(&instances);
        let (batch, _) = plan.route_with_policy(&instances, &AstDme::new(), &policy);
        match &batch[1] {
            Err(RouteError::Panicked {
                instance,
                sinks,
                message,
            }) => {
                assert_eq!(*instance, 101, "offset must flow into attribution");
                assert_eq!(*sinks, 9);
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Survivors are bit-identical to a policy-free run.
        let clean = route_batch(&instances, &AstDme::new());
        for i in [0usize, 2] {
            assert_eq!(
                batch[i].as_ref().unwrap().tree,
                clean[i].as_ref().unwrap().tree,
                "survivor {i} diverged under the fault policy"
            );
        }
    }

    #[test]
    fn injected_corruption_surfaces_as_malformed_output() {
        use crate::fault::{Fault, FaultKind};
        use crate::pipeline::StageId;
        let instances = vec![inst(8, 0.0), inst(9, 1.0)];
        let policy = BatchPolicy::new().with_faults(FaultPlan::new().inject(
            0,
            Fault {
                stage: StageId::Embed,
                kind: FaultKind::Corrupt,
            },
        ));
        let plan = BatchPlan::new(&instances);
        let (batch, _) = plan.route_with_policy(&instances, &AstDme::new(), &policy);
        match &batch[0] {
            Err(RouteError::MalformedOutput { instance, detail }) => {
                assert_eq!(*instance, Some(0));
                assert!(detail.contains("wire"), "{detail}");
            }
            other => panic!("expected MalformedOutput, got {other:?}"),
        }
        assert!(batch[1].is_ok(), "survivor must route normally");
    }

    #[test]
    fn deadline_overrun_fails_only_the_stalled_instance() {
        use crate::fault::{Fault, FaultKind};
        use crate::pipeline::StageId;
        let instances = vec![inst(8, 0.0), inst(9, 1.0), inst(10, 2.0)];
        // The budget is orders of magnitude above what these tiny
        // instances need, and the injected stall is above the budget:
        // only instance 2 can overrun, even on a loaded machine.
        let policy = BatchPolicy::new()
            .with_deadline(1.0)
            .with_faults(FaultPlan::new().inject(
                2,
                Fault {
                    stage: StageId::Embed,
                    kind: FaultKind::Stall { seconds: 1.3 },
                },
            ));
        let plan = BatchPlan::new(&instances);
        let (batch, _) = plan.route_with_policy(&instances, &AstDme::new(), &policy);
        match &batch[2] {
            Err(RouteError::DeadlineExceeded {
                instance, stage, ..
            }) => {
                assert_eq!(*instance, 2);
                assert_eq!(*stage, StageId::Embed);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let clean = route_batch(&instances, &AstDme::new());
        for i in [0usize, 1] {
            assert_eq!(
                batch[i].as_ref().unwrap().tree,
                clean[i].as_ref().unwrap().tree,
                "survivor {i} diverged under the deadline policy"
            );
        }
    }
}
