//! The fleet layer: batch routing of whole instance portfolios.
//!
//! The paper's evaluation routes a portfolio — every circuit × group count
//! × router — and a production deployment serves many scenarios
//! concurrently. [`route_batch`] is the one entry point for that shape of
//! work: it fans **whole instances** out across threads via
//! [`astdme_par::par_map`] and returns outcomes in input order, so results
//! are bit-identical to a sequential loop at every thread count.
//!
//! Instance-level fan-out composes safely with the engine's own `parallel`
//! feature: `par_map` workers are marked, and any nested fan-out (the
//! engine's candidate-pair expansion) takes its serial fallback on a
//! worker thread — one layer of threads, never a multiplication. Nested
//! execution is byte-for-byte the serial schedule, so the guard changes
//! scheduling only, never output.

use astdme_engine::Instance;

use crate::pipeline::RouteOutcome;
use crate::{ClockRouter, RouteError};

/// Minimum batch size before instances fan out across threads: a single
/// instance gains nothing from the fork-join overhead.
const MIN_BATCH_FANOUT: usize = 2;

/// Routes every instance in `instances` through `router`, fanning
/// instances out across threads.
///
/// Results come back **in input order**, one per instance, each carrying
/// the routed tree plus its audit report and per-stage stats
/// ([`RouteOutcome`]). The output is bit-identical to
/// `instances.iter().map(|i| router.route_traced(i))` at every thread
/// count (including the [`astdme_par::set_thread_override`] settings the
/// determinism tests sweep): parallelism changes scheduling, never trees.
///
/// Errors are per-instance — one invalid instance does not poison the
/// rest of the batch.
pub fn route_batch<R>(instances: &[Instance], router: &R) -> Vec<Result<RouteOutcome, RouteError>>
where
    R: ClockRouter + Sync + ?Sized,
{
    astdme_par::par_map(instances, MIN_BATCH_FANOUT, |inst| {
        router.route_traced(inst)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AstDme, Groups, RcParams, Sink};
    use astdme_geom::Point;

    fn inst(n: usize, jitter: f64) -> Instance {
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                Sink::new(
                    Point::new(600.0 * i as f64 + jitter, (i % 4) as f64 * 300.0),
                    1e-14,
                )
            })
            .collect();
        let assignment: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, 2).unwrap(),
            RcParams::default(),
            Point::new(0.0, 3000.0),
        )
        .unwrap()
    }

    #[test]
    fn batch_matches_sequential_loop_in_order() {
        let instances: Vec<Instance> = (0..4).map(|i| inst(8 + i, 37.0 * i as f64)).collect();
        let router = AstDme::new();
        let batch = route_batch(&instances, &router);
        assert_eq!(batch.len(), instances.len());
        for (i, (out, inst)) in batch.iter().zip(&instances).enumerate() {
            let seq = router.route_traced(inst).expect("routes");
            let out = out.as_ref().expect("routes");
            assert_eq!(out.tree, seq.tree, "instance {i} diverged");
            assert_eq!(out.report, seq.report, "instance {i} report diverged");
        }
    }

    #[test]
    fn batch_works_through_a_trait_object() {
        let instances: Vec<Instance> = (0..2).map(|i| inst(6, i as f64)).collect();
        let router: &(dyn ClockRouter + Sync) = &AstDme::new();
        let batch = route_batch(instances.as_slice(), router);
        assert!(batch.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = route_batch(&[], &AstDme::new());
        assert!(batch.is_empty());
    }
}
