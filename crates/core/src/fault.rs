//! Deterministic fault injection and per-instance deadlines for the
//! routing pipeline.
//!
//! Production fault tolerance that is only ever exercised *by accident*
//! (a real panic slipping through) is untested fault tolerance. This
//! module lets the fleet layer provoke failures on purpose:
//!
//! * a [`FaultPlan`] names instances (by batch index) that must fail, and
//!   *how*: a forced panic, an injected stall, or a corrupted output
//!   ([`FaultKind`]), each at a chosen pipeline stage ([`StageId`]);
//! * a per-instance **deadline budget**
//!   ([`BatchPolicy::deadline_seconds`](crate::fleet::BatchPolicy)) is
//!   checked cooperatively at the checkpoint after every pipeline stage
//!   and turns an overrun into
//!   [`RouteError::DeadlineExceeded`](crate::RouteError) for that
//!   instance only.
//!
//! Both mechanisms ride on a thread-local *route context* installed by
//! the fleet layer around each `route_traced` call (each instance routes
//! entirely on one worker thread, so thread-local state is per-instance
//! state). The pipeline polls a `checkpoint` between stages; with no
//! context installed — every direct `route_traced` call — the checkpoint
//! is a no-op, so the hooks cost one thread-local read on the vast
//! majority of routes.
//!
//! The guarantee the whole module exists to test: injected faults and
//! deadline overruns fail **only their own instance's slot**; survivors'
//! outcomes are bit-identical to a fault-free run (`tests/robustness.rs`
//! pins this, and `RobustnessReport` accounting rides on it).

use crate::stopwatch::Stopwatch;
use std::cell::RefCell;
use std::collections::BTreeMap;

use astdme_cache::SubtreeCache;

use crate::pipeline::StageId;
use crate::RouteError;

/// What an injected fault does when its stage checkpoint is reached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Panic with a fixed message — exercises the
    /// [`RouteError::Panicked`] isolation path deliberately.
    Panic,
    /// Sleep for the given wall-clock duration before the checkpoint's
    /// deadline test — the deterministic way to force a
    /// [`RouteError::DeadlineExceeded`] overrun in tests and benches.
    Stall {
        /// How long to stall, in seconds.
        seconds: f64,
    },
    /// Corrupt the routed tree as it exists after the stage (the root
    /// wire becomes NaN), so the pipeline's output validation reports
    /// [`RouteError::MalformedOutput`]. Only the stages that have a tree
    /// — [`StageId::Embed`] and [`StageId::Repair`] — can corrupt; at
    /// other stages the fault is a no-op.
    Corrupt,
}

/// One injected fault: what happens, and after which pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// The stage after whose completion the fault fires.
    pub stage: StageId,
    /// What the fault does.
    pub kind: FaultKind,
}

/// A deterministic fault schedule for one batch or sweep: batch indices
/// mapped to the [`Fault`] injected into that instance's route. Instances
/// without an entry route normally.
///
/// ```
/// use astdme_core::fault::{Fault, FaultKind, FaultPlan};
/// use astdme_core::StageId;
///
/// let plan = FaultPlan::new()
///     .inject(3, Fault { stage: StageId::Merge, kind: FaultKind::Panic })
///     .inject(7, Fault { stage: StageId::Embed, kind: FaultKind::Corrupt });
/// assert_eq!(plan.len(), 2);
/// assert!(plan.get(3).is_some());
/// assert!(plan.get(4).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, Fault>,
}

impl FaultPlan {
    /// An empty plan: nothing fails on purpose.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the fault injected into batch index `instance`;
    /// returns `self` for chaining.
    pub fn inject(mut self, instance: usize, fault: Fault) -> Self {
        self.faults.insert(instance, fault);
        self
    }

    /// The fault scheduled for batch index `instance`, if any.
    pub fn get(&self, instance: usize) -> Option<Fault> {
        self.faults.get(&instance).copied()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled `(instance, fault)` pairs, ascending by index.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Fault)> + '_ {
        self.faults.iter().map(|(&i, &f)| (i, f))
    }
}

/// The per-route context the fleet layer installs around one
/// `route_traced` call: identity for error attribution, the deadline
/// clock, and the fault scheduled for this instance.
#[derive(Debug, Clone)]
struct RouteCtx {
    /// Batch (or sweep variant) index, for error attribution.
    instance: usize,
    /// Wall-clock at installation — the deadline measures from here.
    started: Stopwatch,
    /// Per-instance budget in seconds, if any.
    deadline_seconds: Option<f64>,
    /// The fault injected into this instance, if any.
    fault: Option<Fault>,
    /// The batch's shared subtree cache, if the policy attached one; the
    /// pipeline picks it up via [`current_cache`].
    cache: Option<SubtreeCache>,
}

thread_local! {
    /// The active route context of this thread. Each instance routes
    /// entirely on one thread (the fleet fans out whole instances and
    /// nested engine parallelism is forced serial on workers), so one
    /// slot suffices.
    static CTX: RefCell<Option<RouteCtx>> = const { RefCell::new(None) };
}

/// RAII installation of a route context; restores the previous state on
/// drop — including during a panic unwind, so an injected [`Panic`]
/// fault cannot leave a stale context on a worker thread that will route
/// other instances next.
///
/// [`Panic`]: FaultKind::Panic
#[must_use = "dropping the guard immediately uninstalls the context"]
pub(crate) struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.borrow_mut().take());
    }
}

/// Installs the route context for the current thread (the fleet layer
/// calls this just before `route_traced`). The deadline clock starts now.
pub(crate) fn install(
    instance: usize,
    deadline_seconds: Option<f64>,
    fault: Option<Fault>,
    cache: Option<SubtreeCache>,
) -> CtxGuard {
    CTX.with(|c| {
        *c.borrow_mut() = Some(RouteCtx {
            instance,
            started: Stopwatch::start(),
            deadline_seconds,
            fault,
            cache,
        });
    });
    CtxGuard
}

/// The cooperative checkpoint the pipeline polls after each stage: fires
/// any fault scheduled for `stage` (panic or stall — corruption is
/// handled by the pipeline via [`corrupt_requested`]), then tests the
/// deadline. A no-op without an installed context.
///
/// Order matters: the stall burns wall-clock *before* the deadline test,
/// so a stall longer than the budget deterministically produces
/// [`RouteError::DeadlineExceeded`] at this checkpoint.
pub(crate) fn checkpoint(stage: StageId) -> Result<(), RouteError> {
    let Some((instance, started, deadline_seconds, fault)) = CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (ctx.instance, ctx.started, ctx.deadline_seconds, ctx.fault))
    }) else {
        return Ok(());
    };
    if let Some(fault) = fault.filter(|f| f.stage == stage) {
        match fault.kind {
            FaultKind::Panic => panic!("injected fault: forced panic after the {stage} stage"),
            FaultKind::Stall { seconds } => {
                if seconds.is_finite() && seconds > 0.0 {
                    std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
                }
            }
            FaultKind::Corrupt => {}
        }
    }
    if let Some(budget) = deadline_seconds {
        let elapsed = started.seconds();
        if elapsed > budget {
            return Err(RouteError::DeadlineExceeded {
                instance,
                stage,
                budget_seconds: budget,
                elapsed_seconds: elapsed,
            });
        }
    }
    Ok(())
}

/// Whether a [`FaultKind::Corrupt`] fault is scheduled for `stage` on the
/// current route. The pipeline (which holds the tree) performs the actual
/// corruption.
pub(crate) fn corrupt_requested(stage: StageId) -> bool {
    CTX.with(|c| {
        c.borrow().as_ref().is_some_and(|ctx| {
            ctx.fault
                .is_some_and(|f| f.stage == stage && f.kind == FaultKind::Corrupt)
        })
    })
}

/// The batch index of the route currently executing on this thread, if a
/// context is installed — output validation uses it to attribute
/// [`RouteError::MalformedOutput`].
pub(crate) fn current_instance() -> Option<usize> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| ctx.instance))
}

/// The shared subtree cache of the batch currently routing on this
/// thread, if the batch policy attached one. A cheap `Arc` clone.
pub(crate) fn current_cache() -> Option<SubtreeCache> {
    CTX.with(|c| c.borrow().as_ref().and_then(|ctx| ctx.cache.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_without_context_is_a_noop() {
        assert_eq!(checkpoint(StageId::Merge), Ok(()));
        assert!(!corrupt_requested(StageId::Embed));
        assert_eq!(current_instance(), None);
    }

    #[test]
    fn plan_builder_and_lookup() {
        let plan = FaultPlan::new()
            .inject(
                2,
                Fault {
                    stage: StageId::Merge,
                    kind: FaultKind::Panic,
                },
            )
            .inject(
                5,
                Fault {
                    stage: StageId::Embed,
                    kind: FaultKind::Stall { seconds: 0.5 },
                },
            );
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.get(2).unwrap().kind, FaultKind::Panic);
        assert!(plan.get(0).is_none());
        let indices: Vec<usize> = plan.iter().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![2, 5]);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn guard_uninstalls_even_on_unwind() {
        let caught = std::panic::catch_unwind(|| {
            let _guard = install(
                9,
                None,
                Some(Fault {
                    stage: StageId::Group,
                    kind: FaultKind::Panic,
                }),
                None,
            );
            assert_eq!(current_instance(), Some(9));
            checkpoint(StageId::Group).unwrap();
        });
        assert!(caught.is_err(), "the injected panic must fire");
        assert_eq!(current_instance(), None, "context must not leak");
    }

    #[test]
    fn stall_burns_the_budget_deterministically() {
        let _guard = install(
            4,
            Some(0.005),
            Some(Fault {
                stage: StageId::Embed,
                kind: FaultKind::Stall { seconds: 0.02 },
            }),
            None,
        );
        // A checkpoint at a different stage passes (no stall, within
        // budget so far).
        assert_eq!(checkpoint(StageId::Group), Ok(()));
        // The stalling checkpoint overruns.
        match checkpoint(StageId::Embed) {
            Err(RouteError::DeadlineExceeded {
                instance,
                stage,
                budget_seconds,
                elapsed_seconds,
            }) => {
                assert_eq!(instance, 4);
                assert_eq!(stage, StageId::Embed);
                assert_eq!(budget_seconds, 0.005);
                assert!(elapsed_seconds >= 0.02);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_is_reported_not_executed_by_checkpoint() {
        let _guard = install(
            1,
            None,
            Some(Fault {
                stage: StageId::Repair,
                kind: FaultKind::Corrupt,
            }),
            None,
        );
        assert_eq!(checkpoint(StageId::Repair), Ok(()));
        assert!(corrupt_requested(StageId::Repair));
        assert!(!corrupt_requested(StageId::Embed));
    }
}
