//! The workspace's single sanctioned wall-clock entry point.
//!
//! Every invariant this codebase holds — batch ≡ sequential, parallel ≡
//! serial to the bit — forbids routing *decisions* from reading the wall
//! clock. Timing is still needed for two legitimate purposes: per-stage
//! [`StageStats`](crate::StageStats) seconds (observability, never fed
//! back into routing) and the cooperative per-instance deadline
//! ([`RouteError::DeadlineExceeded`](crate::RouteError::DeadlineExceeded),
//! a typed failure rather than a changed route). Both go through
//! [`Stopwatch`] so that `astdme_lint`'s `wall-clock` rule can allowlist
//! exactly one module: raw `Instant::now`/`SystemTime` reads anywhere
//! else in the deterministic crates are lint errors (the bench harness
//! and `astdme_par`'s pool timing keep their own clocks — they are the
//! other allowlisted timing modules).
//!
//! The type is deliberately minimal — start and read elapsed seconds.
//! There is no way to compare two stopwatches, format timestamps, or
//! otherwise launder wall-clock state into routing data structures.

use std::time::Instant;

/// A started wall-clock timer; read elapsed seconds with
/// [`Stopwatch::seconds`].
///
/// ```
/// use astdme_core::stopwatch::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let elapsed = sw.seconds();
/// assert!(elapsed >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a timer at the current instant.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}
