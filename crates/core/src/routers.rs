//! The four routers: AST-DME and its baselines.
//!
//! Every router is a thin stage configuration — a
//! [`StagePlan`](crate::pipeline::StagePlan) — over the shared
//! [`pipeline`](crate::pipeline): the bespoke `route()` bodies are gone.

use astdme_delay::DelayModel;
use astdme_engine::{EngineConfig, Instance, RoutedTree};
use astdme_topo::TopoConfig;

use crate::pipeline::{self, GroupingStage, MergeStage, RouteOutcome, StagePlan};
use crate::RouteError;

/// A clock-tree router: consumes an [`Instance`], produces a
/// [`RoutedTree`].
///
/// All implementations in this crate are deterministic: the same instance
/// yields the same tree.
pub trait ClockRouter {
    /// Routes the instance through the staged pipeline, returning the
    /// tree together with its audit report and per-stage statistics.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] if the instance (or a derived re-grouping)
    /// is invalid or a router parameter is out of range.
    fn route_traced(&self, inst: &Instance) -> Result<RouteOutcome, RouteError>;

    /// Routes the instance.
    ///
    /// The default implementation runs [`ClockRouter::route_traced`] and
    /// keeps only the tree.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] if the instance (or a derived re-grouping)
    /// is invalid or a router parameter is out of range.
    fn route(&self, inst: &Instance) -> Result<RoutedTree, RouteError> {
        Ok(self.route_traced(inst)?.tree)
    }

    /// A short, stable name for tables and logs.
    fn name(&self) -> &'static str;
}

/// **AST-DME** — the paper's associative-skew router (Fig. 6).
///
/// Skew bounds are enforced only within each sink group of the instance
/// (zero by default); subtrees from different groups merge freely through
/// shortest-distance regions, and partially-shared-group merges use
/// feasible-window intersection with wire sneaking (Ch. V.E).
///
/// ```
/// use astdme_core::{AstDme, ClockRouter, Groups, Instance, Point, RcParams, Sink};
///
/// let sinks = vec![
///     Sink::new(Point::new(0.0, 0.0), 1e-14),
///     Sink::new(Point::new(400.0, 0.0), 1e-14),
///     Sink::new(Point::new(800.0, 0.0), 1e-14),
/// ];
/// let inst = Instance::new(
///     sinks,
///     Groups::from_assignments(vec![0, 1, 0], 2)?,
///     RcParams::default(),
///     Point::new(400.0, 500.0),
/// )?;
/// let tree = AstDme::new().route(&inst)?;
/// assert_eq!(tree.sink_nodes().count(), 3);
/// # Ok::<(), astdme_core::RouteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AstDme {
    engine: EngineConfig,
    topo: TopoConfig,
    model: Option<DelayModel>,
}

impl AstDme {
    /// AST-DME with default engine and merge-order settings.
    pub fn new() -> Self {
        Self {
            engine: EngineConfig::default(),
            topo: TopoConfig::default(),
            model: None,
        }
    }

    /// Overrides the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the merge-order configuration (Ch. V.F enhancements).
    pub fn with_topo(mut self, topo: TopoConfig) -> Self {
        self.topo = topo;
        self
    }

    /// Overrides the delay model (e.g. [`DelayModel::Pathlength`] to
    /// reproduce the primitive model of the earlier work \[12\]).
    pub fn with_model(mut self, model: DelayModel) -> Self {
        self.model = Some(model);
        self
    }

    /// The router as explicit stage configuration — what
    /// [`route_traced`](ClockRouter::route_traced) executes, and the plan
    /// an [`EcoSession`](crate::eco::EcoSession) takes.
    pub fn plan(&self) -> StagePlan {
        StagePlan {
            model: self.model,
            engine: self.engine,
            topo: self.topo,
            grouping: GroupingStage::Keep,
            merge: MergeStage::Flat,
        }
    }
}

impl Default for AstDme {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockRouter for AstDme {
    fn route_traced(&self, inst: &Instance) -> Result<RouteOutcome, RouteError> {
        pipeline::run(inst, &self.plan())
    }

    fn name(&self) -> &'static str {
        "AST-DME"
    }
}

/// **EXT-BST** — the paper's baseline: bounded-skew routing with a single
/// global skew bound across *all* sinks (10 ps in the paper's tables),
/// which trivially satisfies every intra-group constraint up to the bound.
#[derive(Debug, Clone)]
pub struct ExtBst {
    bound: f64,
    engine: EngineConfig,
    topo: TopoConfig,
    model: Option<DelayModel>,
}

impl ExtBst {
    /// EXT-BST with a global skew bound in seconds (the paper uses
    /// `10e-12`).
    pub fn new(bound: f64) -> Self {
        Self {
            bound,
            engine: EngineConfig::default(),
            topo: TopoConfig::default(),
            model: None,
        }
    }

    /// The paper's configuration: 10 ps global bound.
    pub fn paper() -> Self {
        Self::new(10e-12)
    }

    /// Overrides the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the merge-order configuration.
    pub fn with_topo(mut self, topo: TopoConfig) -> Self {
        self.topo = topo;
        self
    }

    /// Overrides the delay model.
    pub fn with_model(mut self, model: DelayModel) -> Self {
        self.model = Some(model);
        self
    }

    /// The router as explicit stage configuration (see [`AstDme::plan`]).
    pub fn plan(&self) -> StagePlan {
        StagePlan {
            model: self.model,
            engine: self.engine,
            topo: self.topo,
            grouping: GroupingStage::Single {
                bound: Some(self.bound),
            },
            merge: MergeStage::Flat,
        }
    }
}

impl ClockRouter for ExtBst {
    fn route_traced(&self, inst: &Instance) -> Result<RouteOutcome, RouteError> {
        if self.bound.is_nan() || self.bound < 0.0 {
            return Err(RouteError::BadParameter(format!(
                "global skew bound must be non-negative, got {}",
                self.bound
            )));
        }
        pipeline::run(inst, &self.plan())
    }

    fn name(&self) -> &'static str {
        "EXT-BST"
    }
}

/// **greedy-DME** — classic zero-skew routing: every sink at identical
/// delay, the strictest (and longest-wire) discipline. Equivalent to
/// [`ExtBst`] with bound zero.
#[derive(Debug, Clone)]
pub struct GreedyDme {
    engine: EngineConfig,
    topo: TopoConfig,
    model: Option<DelayModel>,
}

impl GreedyDme {
    /// Zero-skew routing with default settings.
    pub fn new() -> Self {
        Self {
            engine: EngineConfig::default(),
            topo: TopoConfig::default(),
            model: None,
        }
    }

    /// Overrides the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the merge-order configuration.
    pub fn with_topo(mut self, topo: TopoConfig) -> Self {
        self.topo = topo;
        self
    }

    /// Overrides the delay model.
    pub fn with_model(mut self, model: DelayModel) -> Self {
        self.model = Some(model);
        self
    }

    /// The router as explicit stage configuration (see [`AstDme::plan`]).
    pub fn plan(&self) -> StagePlan {
        StagePlan {
            model: self.model,
            engine: self.engine,
            topo: self.topo,
            grouping: GroupingStage::Single { bound: None },
            merge: MergeStage::Flat,
        }
    }
}

impl Default for GreedyDme {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockRouter for GreedyDme {
    fn route_traced(&self, inst: &Instance) -> Result<RouteOutcome, RouteError> {
        pipeline::run(inst, &self.plan())
    }

    fn name(&self) -> &'static str {
        "greedy-DME"
    }
}

/// **Stitch-per-group** — the construct-separately-then-stitch approach of
/// the earlier associative-skew work (\[12\] in the paper): each group's
/// subtree is built to zero skew in isolation, then the group roots are
/// stitched together with zero skew across groups.
///
/// On intermingled groups this wastes wire through overlap (the paper's
/// Fig. 2a observation); it exists as the comparison strawman.
#[derive(Debug, Clone)]
pub struct StitchPerGroup {
    engine: EngineConfig,
    topo: TopoConfig,
    model: Option<DelayModel>,
}

impl StitchPerGroup {
    /// Stitching router with default settings.
    pub fn new() -> Self {
        Self {
            engine: EngineConfig::default(),
            topo: TopoConfig::default(),
            model: None,
        }
    }

    /// Overrides the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the delay model.
    pub fn with_model(mut self, model: DelayModel) -> Self {
        self.model = Some(model);
        self
    }

    /// The router as explicit stage configuration (see [`AstDme::plan`]).
    /// Zero skew everywhere (matching the \[12\] extension that forces
    /// zero inter-group offsets), but with a merge order that finishes
    /// each group before any cross-group merge.
    pub fn plan(&self) -> StagePlan {
        StagePlan {
            model: self.model,
            engine: self.engine,
            topo: self.topo,
            grouping: GroupingStage::Single { bound: None },
            merge: MergeStage::PerGroupThenStitch,
        }
    }
}

impl Default for StitchPerGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockRouter for StitchPerGroup {
    fn route_traced(&self, inst: &Instance) -> Result<RouteOutcome, RouteError> {
        pipeline::run(inst, &self.plan())
    }

    fn name(&self) -> &'static str {
        "stitch-per-group"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astdme_delay::RcParams;
    use astdme_engine::{audit, Groups, Sink};
    use astdme_geom::Point;

    /// Genuinely intermingled two-group instance: adjacent sinks alternate
    /// groups along a jittered line, with asymmetric loads.
    fn interleaved(n: usize) -> Instance {
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                Sink::new(
                    Point::new(800.0 * i as f64, 600.0 * (i % 3) as f64),
                    (1 + i % 4) as f64 * 1e-14,
                )
            })
            .collect();
        let assignment: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, 2).unwrap(),
            RcParams::default(),
            Point::new(400.0 * n as f64, 5000.0),
        )
        .unwrap()
    }

    #[test]
    fn all_routers_cover_all_sinks() {
        let inst = interleaved(8);
        let routers: Vec<Box<dyn ClockRouter>> = vec![
            Box::new(AstDme::new()),
            Box::new(ExtBst::paper()),
            Box::new(GreedyDme::new()),
            Box::new(StitchPerGroup::new()),
        ];
        for r in routers {
            let tree = r.route(&inst).unwrap();
            assert_eq!(tree.sink_nodes().count(), 8, "router {}", r.name());
        }
    }

    #[test]
    fn ast_dme_zero_intra_group_skew() {
        let inst = interleaved(10);
        let tree = AstDme::new().route(&inst).unwrap();
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        assert!(
            report.max_intra_group_skew() < 1e-16,
            "intra-group skew {} too large",
            report.max_intra_group_skew()
        );
    }

    #[test]
    fn ext_bst_respects_global_bound() {
        let inst = interleaved(10);
        let bound = 10e-12;
        let tree = ExtBst::new(bound).route(&inst).unwrap();
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        assert!(report.global_skew() <= bound + 1e-15);
    }

    #[test]
    fn greedy_dme_zero_global_skew() {
        let inst = interleaved(6);
        let tree = GreedyDme::new().route(&inst).unwrap();
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        assert!(report.global_skew() < 1e-16);
    }

    #[test]
    fn ast_beats_global_baselines_on_interleaved_groups() {
        // Compare against a *tight* global bound: on an instance this
        // small, wire delays are well below 10 ps, so the paper's 10 ps
        // EXT-BST would be effectively unconstrained (the crossover the
        // bench harness shows at die scale).
        let inst = interleaved(12);
        let ast = AstDme::new().route(&inst).unwrap().total_wirelength();
        let zst = GreedyDme::new().route(&inst).unwrap().total_wirelength();
        let bst = ExtBst::new(1e-15).route(&inst).unwrap().total_wirelength();
        // AST's constraint set is a strict subset, but both are greedy
        // heuristics whose merge orders differ slightly; allow 2% noise.
        assert!(
            ast <= zst * 1.02,
            "AST ({ast}) should not exceed ZST ({zst}) beyond greedy noise"
        );
        assert!(
            ast <= bst * 1.02,
            "AST ({ast}) should not exceed tight EXT-BST ({bst}) beyond greedy noise"
        );
    }

    #[test]
    fn stitching_wastes_wire_on_interleaved_groups() {
        // Fig. 2 of the paper: separate per-group trees overlap.
        let inst = interleaved(12);
        let ast = AstDme::new().route(&inst).unwrap().total_wirelength();
        let stitch = StitchPerGroup::new()
            .route(&inst)
            .unwrap()
            .total_wirelength();
        assert!(
            ast < stitch,
            "AST ({ast}) should beat stitching ({stitch}) on intermingled groups"
        );
        // Stitching still satisfies the constraints (zero skew everywhere).
        let tree = StitchPerGroup::new().route(&inst).unwrap();
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        assert!(report.max_intra_group_skew() < 1e-16);
    }

    #[test]
    fn negative_bound_rejected() {
        let inst = interleaved(4);
        let err = ExtBst::new(-1.0).route(&inst).unwrap_err();
        assert!(matches!(err, RouteError::BadParameter(_)));
    }

    #[test]
    fn pathlength_model_routes_but_does_not_control_elmore_skew() {
        // Ch. III of the paper: the linear model balances pathlength, which
        // does not equalize Elmore delay.
        let inst = interleaved(8);
        let tree = AstDme::new()
            .with_model(DelayModel::pathlength())
            .route(&inst)
            .unwrap();
        let path_report = audit(&tree, &inst, &DelayModel::pathlength());
        assert!(path_report.max_intra_group_skew() < 1e-9); // pathlength balanced
        let elmore_report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        assert!(
            elmore_report.max_intra_group_skew() > 1e-15,
            "pathlength routing should leave real Elmore skew"
        );
    }
}
