//! Associative-skew clock routing: AST-DME and its baselines.
//!
//! This crate is the public API of the `astdme` workspace, reproducing
//! *"Associative Skew Clock Routing for Difficult Instances"* (Min-seok
//! Kim, Texas A&M, 2006). It provides four routers over a shared
//! deferred-merge engine:
//!
//! * [`AstDme`] — **the paper's contribution** (Fig. 6): zero (or bounded)
//!   skew enforced only *within* each sink group, with merging allowed
//!   across groups (SDR merges), wire snaking, and offset adjustment for
//!   partially shared groups.
//! * [`ExtBst`] — the paper's baseline: bounded-skew routing (\[4\], Cong et
//!   al.) with a single global bound (10 ps in the paper's tables), which
//!   trivially satisfies any intra-group constraint.
//! * [`GreedyDme`] — classic zero-skew routing (Edahiro's greedy-DME):
//!   the strictest discipline, one global group at bound zero.
//! * [`StitchPerGroup`] — the construct-separately-then-stitch strawman of
//!   the earlier associative-skew work (\[12\]), used to reproduce the
//!   observation of the paper's Fig. 2.
//!
//! All four implement [`ClockRouter`]; results are
//! [`RoutedTree`]s that can be audited independently with [`audit`].
//!
//! Fleet workloads (batches, Monte Carlo sweeps) can attach a
//! content-addressed [`SubtreeCache`]: repeated merge regions —
//! duplicate or translated placements under the same stage plan — are
//! fingerprinted, memoized, and spliced instead of re-routed, with hits
//! **bit-identical** to a recompute (see [`astdme_cache`] and
//! [`fleet::route_batch_cached`]).
//!
//! # Example
//!
//! ```
//! use astdme_core::{AstDme, ClockRouter, ExtBst, Groups, Instance, Point, RcParams, Sink};
//!
//! // Two intermingled groups on a line.
//! let sinks: Vec<Sink> = (0..6)
//!     .map(|i| Sink::new(Point::new(500.0 * i as f64, 0.0), 1e-14))
//!     .collect();
//! let groups = Groups::from_assignments(vec![0, 1, 0, 1, 0, 1], 2)?;
//! let inst = Instance::new(sinks, groups, RcParams::default(), Point::new(1250.0, 2000.0))?;
//!
//! let ast = AstDme::new().route(&inst)?;
//! // Zero-bound EXT-BST == greedy-DME: the strictest global discipline.
//! let bst = ExtBst::new(0.0).route(&inst)?;
//!
//! // Associative skew may not spend more wire than the global baseline.
//! assert!(ast.total_wirelength() <= bst.total_wirelength() * 1.0001);
//! # Ok::<(), astdme_core::RouteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocmeter;
mod drivers;
pub mod eco;
mod error;
pub mod fault;
pub mod fleet;
pub mod pipeline;
pub mod robustness;
mod routers;
pub mod stopwatch;

pub use drivers::{
    merge_until_one, merge_until_one_from_scratch, merge_until_one_traced, run_bottom_up,
    run_bottom_up_from_scratch, ForestSpace, MergeTrace,
};
pub use eco::{EcoEdit, EcoSession, EcoStats};
pub use error::RouteError;
pub use fault::{Fault, FaultKind, FaultPlan};
pub use fleet::{
    route_batch, route_batch_cached, route_stream, BatchPlan, BatchPolicy, CostModel, RouteStream,
    StealStats, StreamPolicy, COST_MODEL_SHAPES, DEFAULT_STREAM_IN_FLIGHT,
};
pub use pipeline::{
    run_with_cache, GroupingStage, MergeStage, RouteOutcome, RouteStats, StageId, StagePlan,
    StageStats,
};
pub use robustness::{
    sweep, MetricSummary, PerturbationSpec, RobustnessReport, SweepConfig, VariantFailure,
};
pub use routers::{AstDme, ClockRouter, ExtBst, GreedyDme, StitchPerGroup};

// The full modelling vocabulary, so downstream users need only this crate.
pub use astdme_cache::{
    region_fingerprint, splice_region, BoundedLru, CacheStats, CachedRegion, DenseIdMap,
    Fingerprint, SubtreeCache,
};
pub use astdme_delay::{DelayModel, RcParams};
pub use astdme_engine::{
    audit, group_ranges, repair_group_skew, AuditReport, CandKind, Candidate, DelayMap, DelayRange,
    EngineConfig, GroupId, Groups, Instance, InstanceError, MergeForest, NodeId, RoutedNode,
    RoutedTree, Sink,
};
pub use astdme_geom::{Point, Rect, Trr};
pub use astdme_topo::{plan_round, MergeOrder, MergePlanner, MergeSpace, TopoConfig};
