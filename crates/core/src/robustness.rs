//! Monte Carlo robustness sweeps: route thousands of seeded perturbations
//! of one nominal instance through the fleet and distill the skew and
//! wirelength distributions.
//!
//! The paper routes one static instance; robustness work (TRIX, Gradient
//! TRIX) treats the *distribution* of skew under placement jitter,
//! parameter variation and sink loss as the first-class metric. This
//! module provides that workload:
//!
//! * a [`PerturbationSpec`] describes the noise — uniform sink-position
//!   jitter, relative load and RC-parameter noise, and random sink drops
//!   held above a survival floor — plus the seed that makes every variant
//!   reproducible;
//! * [`PerturbationSpec::variant`] derives variant *i* deterministically
//!   and **independently** (each variant seeds its own [`ChaCha12Rng`]
//!   from a splitmix of the spec seed and the variant index), so the set
//!   of variants never depends on chunking, thread count, or how many
//!   variants the sweep asks for — variant 17 of a 64-variant sweep is
//!   bit-identical to variant 17 of a 10 000-variant sweep;
//! * [`sweep`] fans the variants out **barrier-free** onto the persistent
//!   worker pool under a [`BatchPolicy`] (per-instance deadlines and
//!   [`FaultPlan`] injection included): workers derive variants on demand,
//!   route them, reduce each outcome to scalars *worker-side* (full trees
//!   are dropped there, never crossing a channel), and stream the scalars
//!   to the accumulating caller through a bounded channel — no chunk
//!   barriers, so no worker ever idles waiting for a chunk's slowest
//!   variant; memory is O(variants) doubles plus the in-flight bound,
//!   never O(variants) trees or instances;
//! * the result is a [`RobustnessReport`]: running mean/min/max and exact
//!   p50/p90/p99 over global skew, intra-group skew and wirelength, plus
//!   per-variant failure accounting ([`VariantFailure`]) for every slot
//!   that panicked, overran its deadline, or produced malformed output.
//!
//! Determinism is the load-bearing property: given the same nominal
//! instance, spec, and config, the report is bit-identical at every
//! thread count (the fleet's batch ≡ sequential guarantee, plus
//! fixed-order accumulation here), so whole distribution reports pin into
//! golden tests — see `tests/robustness.rs`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;

use astdme_engine::{Groups, Instance, Sink};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::fault::FaultPlan;
use crate::fleet::BatchPolicy;
use crate::{ClockRouter, RouteError};

/// A seeded description of how to perturb a nominal instance into Monte
/// Carlo variants.
///
/// All noise is uniform and centered: position jitter is an absolute
/// ±range in µm, load and RC jitter are relative ±fractions (strictly
/// below 1, so capacitances and RC parameters stay positive), and each
/// sink independently drops with probability [`drop_rate`] — but never
/// below the [`survival_floor`] fraction of sinks, and never the last
/// member of a group (the variant keeps the nominal group structure).
///
/// [`drop_rate`]: Self::drop_rate
/// [`survival_floor`]: Self::survival_floor
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbationSpec {
    /// Master seed; every variant derives its own RNG from this and its
    /// variant index.
    pub seed: u64,
    /// Absolute sink-position jitter (µm): each coordinate moves by a
    /// uniform draw from `[-position_jitter, +position_jitter]`.
    pub position_jitter: f64,
    /// Relative sink-load jitter: each capacitance scales by a uniform
    /// factor from `[1 - load_jitter, 1 + load_jitter]`. Must be `< 1`.
    pub load_jitter: f64,
    /// Relative RC-parameter jitter: unit resistance and capacitance each
    /// scale by an independent uniform factor from
    /// `[1 - rc_jitter, 1 + rc_jitter]`. Must be `< 1`.
    pub rc_jitter: f64,
    /// Per-sink drop probability, in `[0, 1)`.
    pub drop_rate: f64,
    /// Minimum surviving fraction of sinks, in `(0, 1]`. Dropped sinks
    /// are restored (lowest index first) until the floor holds.
    pub survival_floor: f64,
}

impl PerturbationSpec {
    /// A no-op spec with the given seed: zero jitter, zero drops. Layer
    /// noise on with the `with_*` builders.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            position_jitter: 0.0,
            load_jitter: 0.0,
            rc_jitter: 0.0,
            drop_rate: 0.0,
            survival_floor: 0.5,
        }
    }

    /// Sets the absolute position jitter (µm); returns `self`.
    pub fn with_position_jitter(mut self, um: f64) -> Self {
        self.position_jitter = um;
        self
    }

    /// Sets the relative load jitter; returns `self`.
    pub fn with_load_jitter(mut self, fraction: f64) -> Self {
        self.load_jitter = fraction;
        self
    }

    /// Sets the relative RC-parameter jitter; returns `self`.
    pub fn with_rc_jitter(mut self, fraction: f64) -> Self {
        self.rc_jitter = fraction;
        self
    }

    /// Sets the per-sink drop probability; returns `self`.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the survival floor (minimum surviving sink fraction);
    /// returns `self`.
    pub fn with_survival_floor(mut self, fraction: f64) -> Self {
        self.survival_floor = fraction;
        self
    }

    /// Validates the spec's ranges.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::BadParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), RouteError> {
        let bad = |msg: String| Err(RouteError::BadParameter(msg));
        if !self.position_jitter.is_finite() || self.position_jitter < 0.0 {
            return bad(format!(
                "position_jitter must be finite and non-negative, got {}",
                self.position_jitter
            ));
        }
        for (name, v) in [
            ("load_jitter", self.load_jitter),
            ("rc_jitter", self.rc_jitter),
        ] {
            if !v.is_finite() || !(0.0..1.0).contains(&v) {
                return bad(format!("{name} must lie in [0, 1), got {v}"));
            }
        }
        if !self.drop_rate.is_finite() || !(0.0..1.0).contains(&self.drop_rate) {
            return bad(format!(
                "drop_rate must lie in [0, 1), got {}",
                self.drop_rate
            ));
        }
        if !self.survival_floor.is_finite()
            || !(0.0..=1.0).contains(&self.survival_floor)
            || self.survival_floor == 0.0
        {
            return bad(format!(
                "survival_floor must lie in (0, 1], got {}",
                self.survival_floor
            ));
        }
        Ok(())
    }

    /// Derives Monte Carlo variant `index` of `nominal`.
    ///
    /// Bit-deterministic and *independent per index*: the variant's RNG is
    /// seeded from a splitmix of `self.seed` and `index`, and the draw
    /// order is fixed (per sink: x jitter, y jitter, load factor, drop
    /// draw; then the two RC factors), so the same `(spec, index)` always
    /// yields the same instance regardless of any other variant.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::BadParameter`] when the spec fails
    /// [`PerturbationSpec::validate`]. With a valid spec, derivation
    /// itself cannot fail: jitter keeps positions finite and loads
    /// positive, and drops preserve the survival floor and at least one
    /// member per group.
    pub fn variant(&self, nominal: &Instance, index: usize) -> Result<Instance, RouteError> {
        self.validate()?;
        let mut rng = ChaCha12Rng::seed_from_u64(mix_seed(self.seed, index as u64));
        let n = nominal.sink_count();
        let mut sinks = Vec::with_capacity(n);
        let mut dropped = Vec::new();
        for sink in nominal.sinks() {
            let ux = rng.random_range(0.0..1.0);
            let uy = rng.random_range(0.0..1.0);
            let ul = rng.random_range(0.0..1.0);
            let ud = rng.random_range(0.0..1.0);
            let mut s = *sink;
            s.pos.x += (2.0 * ux - 1.0) * self.position_jitter;
            s.pos.y += (2.0 * uy - 1.0) * self.position_jitter;
            s.cap *= 1.0 + (2.0 * ul - 1.0) * self.load_jitter;
            dropped.push(ud < self.drop_rate);
            sinks.push(s);
        }
        let ur = rng.random_range(0.0..1.0);
        let uc = rng.random_range(0.0..1.0);
        let rc = astdme_delay::RcParams::new(
            nominal.rc().r_per_um() * (1.0 + (2.0 * ur - 1.0) * self.rc_jitter),
            nominal.rc().c_per_um() * (1.0 + (2.0 * uc - 1.0) * self.rc_jitter),
        );

        // Enforce the drop constraints deterministically, independent of
        // the draws' outcome order: every group keeps its lowest-index
        // member, then lowest-index dropped sinks are restored until the
        // survival floor holds.
        let assignment = nominal.groups().assignment();
        let group_count = nominal.groups().group_count();
        let mut survivors_per_group = vec![0usize; group_count];
        for (i, &is_dropped) in dropped.iter().enumerate() {
            if !is_dropped {
                survivors_per_group[assignment[i]] += 1;
            }
        }
        for (g, survivors) in survivors_per_group.iter_mut().enumerate() {
            if *survivors == 0 {
                let first = (0..n)
                    .find(|&i| assignment[i] == g)
                    .expect("nonempty group");
                dropped[first] = false;
                *survivors = 1;
            }
        }
        let floor = ((self.survival_floor * n as f64).ceil() as usize).clamp(1, n);
        let mut surviving = dropped.iter().filter(|&&d| !d).count();
        for i in 0..n {
            if surviving >= floor {
                break;
            }
            if dropped[i] {
                dropped[i] = false;
                survivors_per_group[assignment[i]] += 1;
                surviving += 1;
            }
        }

        let kept: Vec<usize> = (0..n).filter(|&i| !dropped[i]).collect();
        let sinks: Vec<Sink> = kept.iter().map(|&i| sinks[i]).collect();
        let groups =
            Groups::from_assignments(kept.iter().map(|&i| assignment[i]).collect(), group_count)?
                .with_bounds(nominal.groups().bounds().to_vec())?;
        Ok(Instance::new(sinks, groups, rc, nominal.source())?)
    }
}

/// SplitMix64 finalizer over the spec seed and variant index: decorrelates
/// consecutive variant streams without any cross-variant state.
fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a sweep runs: variant count, in-flight bound, and the fleet
/// hardening policy applied to every variant.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of Monte Carlo variants to route.
    pub variants: usize,
    /// Bound on routed-but-not-yet-accumulated variant results in flight
    /// between the pool workers and the accumulating caller — workers
    /// that run ahead of the accumulator block instead of piling up
    /// results. Historically the chunk size of a barriered sweep; since
    /// the barrier-free rewrite it only bounds memory and never affects
    /// results (variants are index-seeded, so delivery order is
    /// invisible to the report).
    pub chunk: usize,
    /// Per-variant deadline budget in seconds, if any (see
    /// [`BatchPolicy::deadline_seconds`]).
    pub deadline_seconds: Option<f64>,
    /// Deterministic fault schedule, keyed by sweep-global variant index.
    pub faults: FaultPlan,
    /// Shared content-addressed subtree cache threaded through every chunk
    /// (see [`BatchPolicy::cache`]). A zero-jitter spec — or one whose
    /// noise leaves some variants' normalized geometry identical — routes
    /// each distinct region once and splices the repeats. The report is a
    /// pure function of the nominal instance, spec, config, and router:
    /// hits are **bit-identical to the recompute** a miss performs, so
    /// cache capacity, sharing across sweeps, eviction order, and thread
    /// count can never move a reported bit. `None` (the default) routes
    /// every variant on the historic uncached path (whose frame of
    /// computation cached runs match exactly for origin-anchored
    /// variants; see [`BatchPolicy::cache`]).
    pub cache: Option<crate::SubtreeCache>,
}

impl SweepConfig {
    /// A sweep of `variants` variants: 64 results in flight, no deadline,
    /// no injected faults, no cache.
    pub fn new(variants: usize) -> Self {
        Self {
            variants,
            chunk: 64,
            deadline_seconds: None,
            faults: FaultPlan::new(),
            cache: None,
        }
    }

    /// Sets the in-flight bound (clamped to at least 1); returns `self`.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Sets the per-variant deadline budget; returns `self`.
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline_seconds = Some(seconds);
        self
    }

    /// Sets the fault schedule; returns `self`.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a shared subtree cache (a cheap `Arc` clone of the
    /// handle); returns `self`. Pass the same handle to successive sweeps
    /// to carry warmed regions between them.
    pub fn with_cache(mut self, cache: crate::SubtreeCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// Distribution summary of one scalar metric over the surviving variants:
/// running mean/min/max plus exact nearest-rank percentiles.
///
/// All fields are `0.0` when `count` is zero (never NaN, so reports stay
/// comparable bit-for-bit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Number of values summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Exact 50th percentile (nearest-rank).
    pub p50: f64,
    /// Exact 90th percentile (nearest-rank).
    pub p90: f64,
    /// Exact 99th percentile (nearest-rank).
    pub p99: f64,
}

impl MetricSummary {
    const EMPTY: Self = Self {
        count: 0,
        mean: 0.0,
        min: 0.0,
        max: 0.0,
        p50: 0.0,
        p90: 0.0,
        p99: 0.0,
    };
}

/// Streaming accumulator behind a [`MetricSummary`]: a running sum and
/// extrema plus the retained scalar values for exact percentiles. The
/// retained state is O(variants) *doubles* — the full trees the values
/// came from are dropped by the sweep loop as soon as they are measured.
#[derive(Debug, Clone, Default)]
struct MetricAcc {
    sum: f64,
    min: f64,
    max: f64,
    values: Vec<f64>,
}

impl MetricAcc {
    fn push(&mut self, v: f64) {
        if self.values.is_empty() {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += v;
        self.values.push(v);
    }

    fn summary(mut self) -> MetricSummary {
        let n = self.values.len();
        if n == 0 {
            return MetricSummary::EMPTY;
        }
        self.values.sort_by(f64::total_cmp);
        let pct = |q: f64| {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            self.values[rank - 1]
        };
        MetricSummary {
            count: n,
            mean: self.sum / n as f64,
            min: self.min,
            max: self.max,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }
}

/// One failed variant: which one, and why (the stable
/// [`RouteError::kind`] string plus the full error message).
#[derive(Debug, Clone, PartialEq)]
pub struct VariantFailure {
    /// Sweep-global variant index.
    pub variant: usize,
    /// Stable failure class (see [`RouteError::kind`]).
    pub kind: &'static str,
    /// The error's display message.
    pub message: String,
}

/// The distilled result of a robustness sweep.
///
/// Bit-deterministic for a given nominal instance, spec, and config at
/// every thread count — including the failure list, which is ordered by
/// variant index. (A [`RouteError::DeadlineExceeded`] failure's *message*
/// embeds measured wall-clock and is the one run-dependent field; sweeps
/// without deadline overruns golden-test exactly.)
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Variants requested (and attempted).
    pub variants: usize,
    /// Variants that routed successfully.
    pub succeeded: usize,
    /// Per-variant failures, ascending by variant index.
    pub failures: Vec<VariantFailure>,
    /// Global source-to-sink skew distribution over the survivors.
    pub global_skew: MetricSummary,
    /// Worst intra-group skew distribution over the survivors.
    pub intra_group_skew: MetricSummary,
    /// Total wirelength distribution over the survivors.
    pub wirelength: MetricSummary,
}

impl RobustnessReport {
    /// Failure counts per stable [`RouteError::kind`] class, e.g.
    /// `[("deadline_exceeded", 1), ("panicked", 1)]`, sorted by class.
    pub fn failure_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for f in &self.failures {
            *counts.entry(f.kind).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// One variant's result, reduced to scalars on the worker that routed it.
struct VariantItem {
    index: usize,
    outcome: VariantOutcome,
}

enum VariantOutcome {
    Routed {
        global_skew: f64,
        intra_group_skew: f64,
        wirelength: f64,
    },
    Failed {
        kind: &'static str,
        message: String,
    },
}

/// Derives variant `index`, routes it under `policy`, and reduces the
/// outcome to the three report scalars — the full tree (and the variant
/// instance itself) drop here, on the routing worker, so only scalars
/// ever cross the stream back to the accumulator.
fn route_variant<R>(
    nominal: &Instance,
    spec: &PerturbationSpec,
    policy: &BatchPolicy,
    router: &R,
    index: usize,
) -> VariantItem
where
    R: ClockRouter + ?Sized,
{
    let outcome = match spec.variant(nominal, index) {
        Ok(inst) => match crate::fleet::route_caught(router, &inst, index, policy) {
            Ok(out) => VariantOutcome::Routed {
                global_skew: out.report.global_skew(),
                intra_group_skew: out.report.max_intra_group_skew(),
                wirelength: out.report.wirelength(),
            },
            Err(e) => VariantOutcome::Failed {
                kind: e.kind(),
                message: e.to_string(),
            },
        },
        // Unreachable with a pre-validated spec (see
        // `PerturbationSpec::variant`); accounted per-variant so a
        // mid-sweep surprise cannot lose the rest of the report.
        Err(e) => VariantOutcome::Failed {
            kind: e.kind(),
            message: e.to_string(),
        },
    };
    VariantItem { index, outcome }
}

/// The in-order accumulator behind a [`RobustnessReport`]. Pushes must
/// arrive in ascending variant order: f64 summation is non-associative,
/// so index-ordered accumulation is what keeps reports bit-identical at
/// every thread count.
#[derive(Default)]
struct ReportAcc {
    succeeded: usize,
    failures: Vec<VariantFailure>,
    global_skew: MetricAcc,
    intra_group_skew: MetricAcc,
    wirelength: MetricAcc,
}

impl ReportAcc {
    fn push(&mut self, item: VariantItem) {
        match item.outcome {
            VariantOutcome::Routed {
                global_skew,
                intra_group_skew,
                wirelength,
            } => {
                self.succeeded += 1;
                self.global_skew.push(global_skew);
                self.intra_group_skew.push(intra_group_skew);
                self.wirelength.push(wirelength);
            }
            VariantOutcome::Failed { kind, message } => self.failures.push(VariantFailure {
                variant: item.index,
                kind,
                message,
            }),
        }
    }

    fn finish(self, variants: usize) -> RobustnessReport {
        RobustnessReport {
            variants,
            succeeded: self.succeeded,
            failures: self.failures,
            global_skew: self.global_skew.summary(),
            intra_group_skew: self.intra_group_skew.summary(),
            wirelength: self.wirelength.summary(),
        }
    }
}

/// Routes `config.variants` seeded perturbations of `nominal` through
/// `router` and distills the outcome distributions; see the [module
/// docs](self) for the determinism and memory contract.
///
/// The fan-out is **barrier-free**: pool workers claim variant indices
/// from a shared cursor, derive + route + reduce each variant, and stream
/// the scalars to the accumulating caller through a channel bounded at
/// [`SweepConfig::chunk`] results — no worker ever idles at a chunk
/// boundary waiting for the slowest variant. The caller re-buffers
/// out-of-order arrivals and accumulates strictly in variant order, so
/// the report is bit-identical at every thread count and in-flight bound.
/// Failures — injected or genuine — consume their own variant's slot
/// only; every other variant's metrics are bit-identical to a
/// failure-free sweep.
///
/// # Errors
///
/// Returns [`RouteError::BadParameter`] when the spec fails validation.
/// Per-variant routing failures do *not* fail the sweep; they are
/// accounted in [`RobustnessReport::failures`].
pub fn sweep<R>(
    nominal: &Instance,
    spec: &PerturbationSpec,
    config: &SweepConfig,
    router: &R,
) -> Result<RobustnessReport, RouteError>
where
    R: ClockRouter + Sync + ?Sized,
{
    spec.validate()?;
    let policy = BatchPolicy {
        deadline_seconds: config.deadline_seconds,
        faults: config.faults.clone(),
        index_offset: 0,
        cache: config.cache.clone(),
    };
    let mut acc = ReportAcc::default();
    // Minimum fan-out of 2 variants, like the fleet's batch path: one
    // variant gains nothing from waking a helper.
    let threads = astdme_par::fanout_threads(config.variants, 2);
    if threads < 2 {
        // Serial: derive and accumulate in variant order directly — the
        // reference schedule the parallel path must reproduce bit for bit.
        for index in 0..config.variants {
            acc.push(route_variant(nominal, spec, &policy, router, index));
        }
    } else {
        let in_flight = config.chunk.max(1);
        let (tx, rx) = sync_channel::<VariantItem>(in_flight);
        let cursor = AtomicUsize::new(0);
        let work = |_slot: usize| {
            let tx = tx.clone();
            loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= config.variants {
                    break;
                }
                if tx
                    .send(route_variant(nominal, spec, &policy, router, index))
                    .is_err()
                {
                    break;
                }
            }
        };
        let acc = &mut acc;
        astdme_par::scope_with(threads, &work, |running| {
            if running == 0 {
                // Saturated pool, no helpers granted: produce inline off
                // the same cursor (nobody else is claiming).
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= config.variants {
                        break;
                    }
                    acc.push(route_variant(nominal, spec, &policy, router, index));
                }
                return;
            }
            // Consume in completion order, accumulate in index order: a
            // small reorder buffer holds early arrivals until their
            // predecessors land. Exactly `variants` items arrive in
            // total (each index is claimed and delivered once), so the
            // take() below never blocks on an exhausted stream.
            let mut pending: BTreeMap<usize, VariantItem> = BTreeMap::new();
            let mut next_index = 0usize;
            for item in rx.iter().take(config.variants) {
                pending.insert(item.index, item);
                while let Some(item) = pending.remove(&next_index) {
                    acc.push(item);
                    next_index += 1;
                }
            }
            debug_assert!(pending.is_empty(), "every variant accumulated");
        });
    }
    Ok(acc.finish(config.variants))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultKind};
    use crate::pipeline::StageId;
    use crate::{AstDme, RcParams};
    use astdme_geom::Point;

    fn nominal(n: usize, k: usize) -> Instance {
        let sinks: Vec<Sink> = (0..n)
            .map(|i| Sink::new(Point::new(650.0 * i as f64, (i % 3) as f64 * 400.0), 1e-14))
            .collect();
        let assignment: Vec<usize> = (0..n).map(|i| i % k).collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, k).unwrap(),
            RcParams::default(),
            Point::new(0.0, 2500.0),
        )
        .unwrap()
    }

    fn spec() -> PerturbationSpec {
        PerturbationSpec::new(42)
            .with_position_jitter(150.0)
            .with_load_jitter(0.2)
            .with_rc_jitter(0.1)
            .with_drop_rate(0.15)
            .with_survival_floor(0.6)
    }

    #[test]
    fn variants_are_deterministic_and_index_independent() {
        let inst = nominal(14, 3);
        let s = spec();
        let a = s.variant(&inst, 7).unwrap();
        let b = s.variant(&inst, 7).unwrap();
        assert_eq!(a, b, "same (spec, index) must yield the same instance");
        let c = s.variant(&inst, 8).unwrap();
        assert_ne!(a, c, "different indices must perturb differently");
    }

    #[test]
    fn variants_respect_the_survival_floor_and_groups() {
        let inst = nominal(20, 4);
        let s = spec().with_drop_rate(0.9).with_survival_floor(0.5);
        for i in 0..50 {
            let v = s.variant(&inst, i).unwrap();
            assert!(v.sink_count() >= 10, "variant {i} fell below the floor");
            assert_eq!(v.groups().group_count(), 4, "variant {i} lost a group");
            assert_eq!(v.groups().bounds(), inst.groups().bounds());
        }
    }

    #[test]
    fn zero_noise_spec_reproduces_the_nominal_instance() {
        let inst = nominal(9, 3);
        let v = PerturbationSpec::new(5).variant(&inst, 3).unwrap();
        assert_eq!(v, inst);
    }

    #[test]
    fn spec_validation_rejects_bad_ranges() {
        let inst = nominal(6, 2);
        for bad in [
            PerturbationSpec::new(1).with_load_jitter(1.0),
            PerturbationSpec::new(1).with_rc_jitter(-0.1),
            PerturbationSpec::new(1).with_drop_rate(1.0),
            PerturbationSpec::new(1).with_survival_floor(0.0),
            PerturbationSpec::new(1).with_position_jitter(f64::NAN),
        ] {
            let err = bad.variant(&inst, 0).unwrap_err();
            assert_eq!(err.kind(), "bad_parameter", "{bad:?}");
        }
    }

    #[test]
    fn sweep_accounts_for_every_variant() {
        let inst = nominal(10, 2);
        let report = sweep(
            &inst,
            &spec(),
            &SweepConfig::new(12).with_chunk(5),
            &AstDme::new(),
        )
        .unwrap();
        assert_eq!(report.variants, 12);
        assert_eq!(report.succeeded + report.failures.len(), 12);
        assert_eq!(report.succeeded, 12, "no faults injected: all must route");
        assert_eq!(report.global_skew.count, 12);
        assert!(report.wirelength.min <= report.wirelength.p50);
        assert!(report.wirelength.p50 <= report.wirelength.p90);
        assert!(report.wirelength.p90 <= report.wirelength.p99);
        assert!(report.wirelength.p99 <= report.wirelength.max);
        assert!(report.wirelength.mean > 0.0);
    }

    #[test]
    fn chunking_is_invisible_to_the_report() {
        let inst = nominal(10, 2);
        let s = spec();
        let a = sweep(
            &inst,
            &s,
            &SweepConfig::new(9).with_chunk(3),
            &AstDme::new(),
        )
        .unwrap();
        let b = sweep(
            &inst,
            &s,
            &SweepConfig::new(9).with_chunk(64),
            &AstDme::new(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sweep_yields_an_empty_report() {
        let inst = nominal(8, 2);
        let report = sweep(&inst, &spec(), &SweepConfig::new(0), &AstDme::new()).unwrap();
        assert_eq!(report.variants, 0);
        assert_eq!(report.succeeded, 0);
        assert_eq!(report.global_skew, MetricSummary::EMPTY);
    }

    #[test]
    fn injected_faults_fail_their_variants_only() {
        let inst = nominal(10, 2);
        let s = spec();
        let faults = FaultPlan::new()
            .inject(
                3,
                Fault {
                    stage: StageId::Merge,
                    kind: FaultKind::Panic,
                },
            )
            .inject(
                7,
                Fault {
                    stage: StageId::Embed,
                    kind: FaultKind::Corrupt,
                },
            );
        let config = SweepConfig::new(10).with_chunk(4).with_faults(faults);
        let report = sweep(&inst, &s, &config, &AstDme::new()).unwrap();
        assert_eq!(report.succeeded, 8);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failures[0].variant, 3);
        assert_eq!(report.failures[0].kind, "panicked");
        assert_eq!(report.failures[1].variant, 7);
        assert_eq!(report.failures[1].kind, "malformed_output");
        assert_eq!(
            report.failure_counts(),
            vec![("malformed_output", 1), ("panicked", 1)]
        );
        // Survivors' distributions equal the fault-free sweep minus the
        // two failed variants' values.
        let clean = sweep(
            &inst,
            &s,
            &SweepConfig::new(10).with_chunk(4),
            &AstDme::new(),
        )
        .unwrap();
        assert_eq!(report.global_skew.count, 8);
        assert!(clean.global_skew.min <= report.global_skew.min);
        assert!(clean.global_skew.max >= report.global_skew.max);
    }
}
