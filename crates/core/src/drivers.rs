//! The bottom-up driving loop shared by all routers.

use astdme_delay::DelayModel;
use astdme_engine::{EngineConfig, Instance, MergeForest, NodeId};
use astdme_geom::Trr;
use astdme_topo::{plan_round, MergePlanner, MergeSpace, TopoConfig};

/// Adapter exposing a [`MergeForest`] to the merge planner.
///
/// Keys are forest node indices. The adapter also lets callers restrict the
/// planner to a subset of subtrees (used by [`crate::StitchPerGroup`] to
/// finish each group before crossing groups).
pub struct ForestSpace<'a> {
    forest: &'a MergeForest,
}

impl<'a> ForestSpace<'a> {
    /// Wraps a forest.
    pub fn new(forest: &'a MergeForest) -> Self {
        Self { forest }
    }
}

impl MergeSpace for ForestSpace<'_> {
    fn region(&self, id: usize) -> Trr {
        self.forest.representative_region(NodeId::from_index(id))
    }

    fn distance(&self, a: usize, b: usize) -> f64 {
        // Geometric distance, deliberately: ranking node pairs by full
        // merge-cost estimates defers delay-imbalanced pairs, which strands
        // slow subtrees until only expensive partners remain. Offset
        // compatibility is handled *inside* a merge by candidate-pair
        // ranking (see MergeForest::merge).
        self.forest
            .merge_distance(NodeId::from_index(a), NodeId::from_index(b))
    }

    fn delay(&self, id: usize) -> f64 {
        self.forest.max_delay(NodeId::from_index(id))
    }
}

/// Round and merge counters of one [`merge_until_one_traced`] run, the
/// raw material of the pipeline's merge-stage
/// [`StageStats`](crate::StageStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeTrace {
    /// Planning rounds executed.
    pub rounds: usize,
    /// Merges performed (over `n` subtrees, always `n - 1`).
    pub merges: usize,
}

impl MergeTrace {
    /// Accumulates another loop's counters (per-group merge scripts run
    /// several loops over one forest).
    pub fn absorb(&mut self, other: MergeTrace) {
        self.rounds += other.rounds;
        self.merges += other.merges;
    }
}

/// Runs the bottom-up merge loop over `start` until a single subtree
/// remains, merging pairs chosen by the incremental
/// [`MergePlanner`] each round.
///
/// Each round's merges are reported back in one batch
/// ([`MergePlanner::apply_round`]), so the planner runs a single
/// maintenance sweep per round instead of per merge — the difference that
/// makes multi-merge ordering profitable under the incremental planner.
///
/// Returns the surviving root. `start` must be non-empty; a single node is
/// returned unchanged.
pub fn merge_until_one(forest: &mut MergeForest, start: Vec<NodeId>, topo: &TopoConfig) -> NodeId {
    merge_until_one_traced(forest, start, topo).0
}

/// [`merge_until_one`] with round/merge counters — the entry point the
/// staged pipeline uses so its merge-stage stats are measured inside the
/// loop, not guessed from the outside.
pub fn merge_until_one_traced(
    forest: &mut MergeForest,
    start: Vec<NodeId>,
    topo: &TopoConfig,
) -> (NodeId, MergeTrace) {
    assert!(!start.is_empty(), "need at least one subtree to merge");
    if start.len() == 1 {
        return (start[0], MergeTrace::default());
    }
    let keys: Vec<usize> = start.iter().map(|n| n.index()).collect();
    // Phase timing is gated on the env var so the unprofiled hot loop pays
    // no clock reads (greedy runs one round per merge).
    let profile = std::env::var_os("ASTDME_PROFILE").is_some();
    let clock = |on: bool| on.then(crate::stopwatch::Stopwatch::start);
    let lap = |t: Option<crate::stopwatch::Stopwatch>, acc: &mut f64| {
        if let Some(t) = t {
            *acc += t.seconds();
        }
    };
    let (mut t_new, mut t_plan, mut t_engine, mut t_apply) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let t0 = clock(profile);
    let mut planner = MergePlanner::new(&ForestSpace::new(forest), &keys, *topo);
    lap(t0, &mut t_new);
    let mut trace = MergeTrace::default();
    let mut round: Vec<(usize, usize, usize)> = Vec::new();
    while planner.len() > 1 {
        let t0 = clock(profile);
        let pairs = planner.plan_round(&ForestSpace::new(forest));
        lap(t0, &mut t_plan);
        assert!(!pairs.is_empty(), "planner must make progress");
        round.clear();
        let t0 = clock(profile);
        for (a, b) in pairs {
            let m = forest.merge(NodeId::from_index(a), NodeId::from_index(b));
            round.push((a, b, m.index()));
        }
        lap(t0, &mut t_engine);
        let t0 = clock(profile);
        planner.apply_round(&ForestSpace::new(forest), &round);
        lap(t0, &mut t_apply);
        trace.rounds += 1;
        trace.merges += round.len();
    }
    if profile {
        eprintln!(
            "[profile] new {t_new:.4}s plan {t_plan:.4}s engine {t_engine:.4}s apply {t_apply:.4}s"
        );
    }
    (NodeId::from_index(planner.sole_key()), trace)
}

/// The from-scratch reference driver: re-plans every round with
/// [`plan_round`] over a freshly rebuilt neighbor structure. Produces the
/// same tree as [`merge_until_one`] (the planners are equivalent; see
/// `astdme_topo::MergePlanner`), at the cost the incremental planner
/// exists to avoid. Kept for equivalence tests and the `scaling` bench's
/// before/after comparison.
pub fn merge_until_one_from_scratch(
    forest: &mut MergeForest,
    start: Vec<NodeId>,
    topo: &TopoConfig,
) -> NodeId {
    assert!(!start.is_empty(), "need at least one subtree to merge");
    /// Sentinel in the dense position table: the key is not active.
    const NO_POS: u32 = u32::MAX;
    let mut active: Vec<usize> = start.iter().map(|n| n.index()).collect();
    // Dense active set with a position map: removal is swap_remove, and
    // crucially the *same* swap_remove discipline the incremental planner
    // uses, so both drivers present identical orderings to the planner
    // (which matters only for exact ties). The table is the planner's
    // dense `Vec` key-table pattern — forest node indices are dense, so a
    // flat vector with a sentinel replaces the old `HashMap` (and each
    // merge grows the key space by exactly one, so the resize below
    // amortizes to a push).
    let max_key = active.iter().copied().max().expect("start is non-empty");
    assert!(max_key < NO_POS as usize, "node indices must fit u32");
    let mut pos: Vec<u32> = vec![NO_POS; max_key + 1];
    for (i, &k) in active.iter().enumerate() {
        assert!(pos[k] == NO_POS, "start subtrees must be distinct");
        pos[k] = i as u32;
    }
    while active.len() > 1 {
        let pairs = {
            let space = ForestSpace::new(forest);
            plan_round(&space, &active, topo)
        };
        assert!(!pairs.is_empty(), "planner must make progress");
        for (a, b) in pairs {
            let m = forest.merge(NodeId::from_index(a), NodeId::from_index(b));
            for x in [a, b] {
                assert!(pos[x] != NO_POS, "planned pair is active");
                let i = pos[x] as usize;
                pos[x] = NO_POS;
                active.swap_remove(i);
                if i < active.len() {
                    pos[active[i]] = i as u32;
                }
            }
            let mk = m.index();
            if mk >= pos.len() {
                pos.resize(mk + 1, NO_POS);
            }
            assert!(pos[mk] == NO_POS, "merge result key already active");
            pos[mk] = active.len() as u32;
            active.push(mk);
        }
    }
    NodeId::from_index(active[0])
}

/// Builds the forest for `inst` under `model`, merges everything bottom-up
/// with the incremental planner, and returns the forest plus the root
/// subtree.
pub fn run_bottom_up(
    inst: &Instance,
    model: DelayModel,
    engine: EngineConfig,
    topo: &TopoConfig,
) -> (MergeForest, NodeId) {
    let mut forest = MergeForest::for_instance_with_model(inst, model, engine);
    let leaves = forest.leaves();
    let root = merge_until_one(&mut forest, leaves, topo);
    (forest, root)
}

/// Like [`run_bottom_up`] but driven by the from-scratch reference
/// planner. Used by equivalence tests and the `scaling` bench.
pub fn run_bottom_up_from_scratch(
    inst: &Instance,
    model: DelayModel,
    engine: EngineConfig,
    topo: &TopoConfig,
) -> (MergeForest, NodeId) {
    let mut forest = MergeForest::for_instance_with_model(inst, model, engine);
    let leaves = forest.leaves();
    let root = merge_until_one_from_scratch(&mut forest, leaves, topo);
    (forest, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astdme_delay::RcParams;
    use astdme_engine::{Groups, Sink};
    use astdme_geom::Point;

    fn line_instance(n: usize, groups: usize) -> Instance {
        let sinks: Vec<Sink> = (0..n)
            .map(|i| Sink::new(Point::new(300.0 * i as f64, (i % 3) as f64 * 100.0), 1e-14))
            .collect();
        let assignment: Vec<usize> = (0..n).map(|i| i % groups).collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, groups).unwrap(),
            RcParams::default(),
            Point::new(0.0, 2000.0),
        )
        .unwrap()
    }

    #[test]
    fn run_bottom_up_produces_single_root_covering_all_sinks() {
        let inst = line_instance(9, 3);
        let (forest, root) = run_bottom_up(
            &inst,
            DelayModel::elmore(*inst.rc()),
            EngineConfig::default(),
            &TopoConfig::default(),
        );
        let tree = forest.embed(root, inst.source());
        assert_eq!(tree.sink_nodes().count(), 9);
    }

    #[test]
    fn greedy_and_multimerge_both_terminate() {
        let inst = line_instance(8, 2);
        for topo in [TopoConfig::greedy(), TopoConfig::default()] {
            let (forest, root) = run_bottom_up(
                &inst,
                DelayModel::elmore(*inst.rc()),
                EngineConfig::default(),
                &topo,
            );
            let tree = forest.embed(root, inst.source());
            assert_eq!(tree.sink_nodes().count(), 8);
        }
    }

    #[test]
    fn merge_until_one_returns_single_node_unchanged() {
        let inst = line_instance(2, 1);
        let mut forest = MergeForest::for_instance(&inst, EngineConfig::default());
        let leaves = forest.leaves();
        let only = vec![leaves[0]];
        let r = merge_until_one(&mut forest, only, &TopoConfig::default());
        assert_eq!(r, leaves[0]);
    }

    #[test]
    fn incremental_and_from_scratch_drivers_route_identically() {
        // Large enough (> BRUTE_FORCE_CUTOFF leaves) to exercise the
        // incremental grid regime, multiple groups for SDR merges.
        let inst = line_instance(48, 3);
        for topo in [TopoConfig::greedy(), TopoConfig::default()] {
            let (forest_inc, root_inc) = run_bottom_up(
                &inst,
                DelayModel::elmore(*inst.rc()),
                EngineConfig::default(),
                &topo,
            );
            let (forest_ref, root_ref) = run_bottom_up_from_scratch(
                &inst,
                DelayModel::elmore(*inst.rc()),
                EngineConfig::default(),
                &topo,
            );
            let tree_inc = forest_inc.embed(root_inc, inst.source());
            let tree_ref = forest_ref.embed(root_ref, inst.source());
            assert_eq!(
                tree_inc.total_wirelength(),
                tree_ref.total_wirelength(),
                "drivers diverged under {topo:?}"
            );
            assert_eq!(tree_inc.nodes().len(), tree_ref.nodes().len());
        }
    }
}
