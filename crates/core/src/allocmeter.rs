//! A process-wide allocation counter the pipeline samples per stage.
//!
//! The library crates forbid `unsafe`, so the `GlobalAlloc` shim itself
//! lives in whichever *binary* wants allocation accounting (the scaling
//! bench, the alloc-budget test harness). That shim calls [`on_alloc`]
//! once per allocation; the pipeline snapshots [`current`] around each
//! stage and reports the deltas in
//! [`StageStats::allocs`](crate::StageStats). In a binary without an
//! instrumented allocator the counter simply stays at zero and every
//! reported delta is zero — the accounting is free to ignore.

use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations observed process-wide since start.
static COUNT: AtomicU64 = AtomicU64::new(0);

/// Records one allocation. Called by an instrumented `GlobalAlloc` in the
/// hosting binary; relaxed ordering — this is a statistics counter, not a
/// synchronization point.
#[inline]
pub fn on_alloc() {
    COUNT.fetch_add(1, Ordering::Relaxed);
}

/// The current process-wide allocation count.
#[inline]
pub fn current() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = current();
        on_alloc();
        on_alloc();
        // Other test threads may bump it concurrently; only monotonicity
        // and our own two increments are guaranteed.
        assert!(current() >= before + 2);
    }
}
