//! Incremental ECO re-routing: batched sink edits with dirty-region
//! re-planning, sublinear in the instance size.
//!
//! Late engineering-change orders (ECOs) move a handful of flip-flops,
//! retune a few loads, or swap a cell — and the clock tree must follow.
//! Rerouting from scratch costs the full `O(n log n)` pipeline for a
//! change that touches a constant number of sinks. An [`EcoSession`]
//! instead keeps the routed state *live* and repairs it:
//!
//! ```text
//!   queue(edit)            flush()
//!  ┌──────────┐   ┌──────────────────────────────────────────────┐
//!  │  batch   │   │ 1. apply     net edit set → edited instance  │
//!  │ (Vec of  ├──▶│ 2. invalidate dirty sinks → their merge-path │
//!  │  edits,  │   │               ancestors lose adoption rights │
//!  │  write-  │   │ 3. re-plan   replay recorded rounds; fresh   │
//!  │  only)   │   │               NN scans only for novel nodes  │
//!  │          │   │ 4. splice    adopted merges are copied bit   │
//!  └──────────┘   │               for bit, dirty cone re-merged, │
//!                 │               then embed / repair / audit    │
//!                 └──────────────────────────────────────────────┘
//! ```
//!
//! # How the replay works
//!
//! A session's standing route is produced by a **recording** run: per
//! planning round, the incremental planner's nearest-neighbor table is
//! snapshotted ([`astdme_topo::MergePlanner::nn_snapshot`]), and per
//! merge, the engine appends a [`MergeLog`](astdme_engine::MergeLog)
//! (children, creation candidates, offset-adjustment appends, residual,
//! class-fusion epochs). On `flush`, the edited instance is rerouted
//! against this script:
//!
//! * Clean sinks map leaf-for-leaf onto the standing forest; dirty sinks
//!   (position or load bits changed) get no mapping, which transitively
//!   unmaps exactly their merge-path ancestors — the *dirty cone*.
//! * Each round, subtrees with a standing counterpart **inherit** the
//!   recorded nearest-neighbor entry (key-translated); subtrees in the
//!   dirty cone run a fresh nearest-neighbor scan and may *take over* an
//!   inherited entry when strictly closer — the same supersession rule the
//!   incremental planner applies to newly registered subtrees.
//! * Selected pairs whose children both map onto a recorded merge (same
//!   log, same orientation) are **adopted**:
//!   [`MergeForest::adopt_merge`](astdme_engine::MergeForest::adopt_merge)
//!   clones the recorded result instead of re-running candidate-pair
//!   expansion. Everything else is merged fresh (bit-correct by
//!   construction).
//!
//! Embedding, repair, validation, and the audit then run exactly as the
//! staged pipeline does, so a flushed session is **bit-identical to a
//! from-scratch route of the edited instance** — same tree, same audit
//! report, at every thread count. Update latency is sublinear in `n` for
//! small edit sets: inherited entries cost `O(1)` each, and fresh scans
//! are bounded by a work budget (the session falls back to a full reroute
//! when an edit storm exhausts it, or when the edit changes the instance
//! structurally — sink count, group shape, or RC technology).
//!
//! Replay is recorded for [`MergeStage::Flat`] plans under
//! [`MergeOrder::MultiMerge`] (the default of every router except the
//! stitching strawman); other plans still flush correctly via a full
//! reroute each time.
//!
//! # Caching
//!
//! A session created with [`EcoSession::with_cache`] routes in the same
//! translation-normalized frame as [`run_with_cache`](crate::run_with_cache)
//! and keeps the cache coherent: every flushed tree is fingerprinted and
//! inserted, and a flush whose edited instance is already cached (e.g.
//! an edit that returns to a previously routed placement) is satisfied by
//! splicing — bit-identical to the cached pipeline's hit path. Session
//! creation never *consults* the cache (it must route fresh to produce
//! the replay recording); outcomes are a pure function of instance and
//! plan, never of cache state, so this costs correctness nothing.
//!
//! # Example
//!
//! ```
//! use astdme_core::eco::{EcoEdit, EcoSession};
//! use astdme_core::{AstDme, Groups, Instance, Point, RcParams, Sink};
//!
//! let sinks: Vec<Sink> = (0..8)
//!     .map(|i| Sink::new(Point::new(400.0 * i as f64, (i % 2) as f64 * 300.0), 1e-14))
//!     .collect();
//! let groups = Groups::from_assignments((0..8).map(|i| i % 2).collect(), 2)?;
//! let inst = Instance::new(sinks, groups, RcParams::default(), Point::new(0.0, 2500.0))?;
//!
//! let mut session = EcoSession::new(&inst, AstDme::new().plan())?;
//! let before = session.outcome().tree.total_wirelength();
//! session.queue(EcoEdit::Move { sink: 3, to: Point::new(1180.0, 40.0) });
//! session.queue(EcoEdit::Retune { sink: 5, cap: 2e-14 });
//! let out = session.flush()?;
//! assert_eq!(out.tree.sink_nodes().count(), 8);
//! # let _ = before;
//! # Ok::<(), astdme_core::RouteError>(())
//! ```

use crate::stopwatch::Stopwatch;

use astdme_cache::{region_fingerprint, CachedRegion, SubtreeCache};
use astdme_delay::{DelayModel, RcParams};
use astdme_engine::{
    audit, repair_group_skew, GroupId, Groups, Instance, MergeForest, MergeRecording, NodeId, Sink,
    NO_NODE,
};
use astdme_geom::Point;
use astdme_topo::{
    pair_score, plan_round, round_limit, score_bits, select_disjoint, MergeOrder, MergePlanner,
    NnSnapshotRow, TopoConfig, BRUTE_FORCE_CUTOFF,
};

use crate::drivers::{ForestSpace, MergeTrace};
use crate::pipeline::{
    derive_grouping, validate_tree, MergeStage, RouteOutcome, RouteStats, StagePlan, StageStats,
    REPAIR_ITERS,
};
use crate::{allocmeter, pipeline, RouteError};

/// Sentinel in the dense active-position table: the key is not active.
const NO_POS: u32 = u32::MAX;
/// Sentinel in the child → merge-log index: the node is never a child.
const NO_LOG: u32 = u32::MAX;

/// One queued engineering-change-order edit. Sink indices refer to the
/// session's instance *at the point the edit applies* — edits in a batch
/// apply sequentially, so a [`EcoEdit::Delete`] shifts the indices later
/// edits in the same batch see, exactly like `Vec::remove`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EcoEdit {
    /// Move a sink to a new position.
    Move {
        /// Index of the sink to move.
        sink: usize,
        /// New placement.
        to: Point,
    },
    /// Change a sink's load capacitance.
    Retune {
        /// Index of the sink to retune.
        sink: usize,
        /// New load capacitance (F).
        cap: f64,
    },
    /// Add a sink to an existing group (appended at the highest index).
    Insert {
        /// The new sink.
        sink: Sink,
        /// The group it joins (must already exist).
        group: GroupId,
    },
    /// Remove a sink (later sinks shift down by one).
    Delete {
        /// Index of the sink to remove.
        sink: usize,
    },
    /// Replace the instance's interconnect technology parameters.
    RetuneRc(RcParams),
}

/// What one [`EcoSession::flush`] did, for observability and the bench's
/// reused-region accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EcoStats {
    /// Edits in the flushed batch.
    pub edits: usize,
    /// Sinks whose position or load actually changed (net, after
    /// cancelling edits), or the full sink count on a structural change.
    pub dirty_sinks: usize,
    /// Merges satisfied by adopting a recorded merge bit-for-bit.
    pub adopted_merges: usize,
    /// Merges recomputed fresh (the dirty cone).
    pub fresh_merges: usize,
    /// Planning rounds replayed against the recorded nearest-neighbor
    /// snapshots.
    pub replayed_rounds: usize,
    /// Planning rounds re-planned from scratch (brute-force tail rounds
    /// and rounds the recording could not cover).
    pub planned_rounds: usize,
    /// Whether the flush fell back to a full pipeline reroute.
    pub full_reroute: bool,
    /// Whether the flush was satisfied by a subtree-cache hit.
    pub cache_hit: bool,
    /// Whether the batch was a net no-op (standing tree returned
    /// unchanged, by reference).
    pub noop: bool,
    /// Wall-clock seconds of the whole flush.
    pub seconds: f64,
}

/// One planning round of the standing route: the planner's
/// nearest-neighbor table right after the round was planned (rows in
/// active order), or `grid: false` for brute-force tail rounds, which
/// replay by re-planning (cheap: at most [`BRUTE_FORCE_CUTOFF`] subtrees).
#[derive(Debug, Clone)]
struct RoundSnap {
    grid: bool,
    rows: Vec<NnSnapshotRow>,
}

/// Everything a flush needs to replay the standing route: the routed
/// (framed, regrouped) instance, its merge forest, and the per-round /
/// per-merge script.
struct Recording {
    /// `Some((x_bits, y_bits))` of the normalization anchor when the
    /// session routes in the cached pipeline's translation-normalized
    /// frame; `None` for raw-frame (uncached) sessions.
    anchor: Option<(u64, u64)>,
    routed: Instance,
    forest: MergeForest,
    merges: MergeRecording,
    rounds: Vec<RoundSnap>,
}

/// A live routed instance accepting batched sink edits. See the
/// [module docs](self) for the lifecycle.
pub struct EcoSession {
    plan: StagePlan,
    cache: Option<SubtreeCache>,
    inst: Instance,
    outcome: RouteOutcome,
    rec: Option<Recording>,
    queue: Vec<EcoEdit>,
    last_flush: EcoStats,
}

impl EcoSession {
    /// Routes `inst` under `plan` (with replay recording when the plan
    /// supports it) and opens the session.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] if the initial route fails.
    pub fn new(inst: &Instance, plan: StagePlan) -> Result<Self, RouteError> {
        Self::build(inst, plan, None)
    }

    /// Like [`EcoSession::new`], routing in the content-addressed cache's
    /// normalized frame and keeping `cache` coherent across flushes (see
    /// the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] if the initial route fails.
    pub fn with_cache(
        inst: &Instance,
        plan: StagePlan,
        cache: SubtreeCache,
    ) -> Result<Self, RouteError> {
        Self::build(inst, plan, Some(cache))
    }

    fn build(
        inst: &Instance,
        plan: StagePlan,
        cache: Option<SubtreeCache>,
    ) -> Result<Self, RouteError> {
        let (outcome, rec) = route_full(inst, &plan, cache.as_ref())?;
        Ok(Self {
            plan,
            cache,
            inst: inst.clone(),
            outcome,
            rec,
            queue: Vec::new(),
            last_flush: EcoStats::default(),
        })
    }

    /// Queues an edit. Write-optimized: a push, no routing work until
    /// [`EcoSession::flush`].
    pub fn queue(&mut self, edit: EcoEdit) {
        self.queue.push(edit);
    }

    /// The queued, not-yet-flushed edits, in application order.
    pub fn pending(&self) -> &[EcoEdit] {
        &self.queue
    }

    /// The session's current instance (queued edits not applied).
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// The standing routed outcome (as of the last flush).
    pub fn outcome(&self) -> &RouteOutcome {
        &self.outcome
    }

    /// Statistics of the most recent [`EcoSession::flush`].
    pub fn last_flush(&self) -> EcoStats {
        self.last_flush
    }

    /// Applies the queued batch: computes the net edited instance,
    /// invalidates the dirty region, re-plans it against the recorded
    /// route, and splices the repaired region back. Returns the standing
    /// outcome — **bit-identical to a from-scratch route of the edited
    /// instance** under the session's plan (and cache mode).
    ///
    /// An empty (or net no-op) batch returns the standing outcome by
    /// reference without routing anything.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::BadParameter`] for an out-of-range sink index
    /// or unknown group, and propagates routing errors. A failed flush
    /// discards the batch and leaves the standing route unchanged.
    pub fn flush(&mut self) -> Result<&RouteOutcome, RouteError> {
        let t0 = Stopwatch::start();
        let edits = std::mem::take(&mut self.queue);
        let mut stats = EcoStats {
            edits: edits.len(),
            ..EcoStats::default()
        };
        if edits.is_empty() {
            stats.noop = true;
            stats.seconds = t0.seconds();
            self.last_flush = stats;
            return Ok(&self.outcome);
        }
        let edited = apply_edits(&self.inst, &edits)?;
        if instance_bits_equal(&edited, &self.inst) {
            stats.noop = true;
            stats.seconds = t0.seconds();
            self.last_flush = stats;
            return Ok(&self.outcome);
        }
        let structural = edited.sink_count() != self.inst.sink_count()
            || edited.groups().assignment() != self.inst.groups().assignment()
            || !bits_equal(edited.groups().bounds(), self.inst.groups().bounds())
            || !rc_bits_equal(edited.rc(), self.inst.rc());
        stats.dirty_sinks = if structural {
            edited.sink_count()
        } else {
            edited
                .sinks()
                .iter()
                .zip(self.inst.sinks())
                .filter(|(a, b)| !sink_bits_equal(a, b))
                .count()
        };
        let (outcome, rec) = route_edited(
            &self.plan,
            self.cache.as_ref(),
            self.rec.as_ref(),
            &edited,
            structural,
            &mut stats,
        )?;
        self.inst = edited;
        self.outcome = outcome;
        self.rec = rec;
        stats.seconds = t0.seconds();
        self.last_flush = stats;
        Ok(&self.outcome)
    }
}

/// Whether the plan's merge loop can be recorded and replayed: one flat
/// loop under multi-merge ordering. (Greedy ordering would snapshot one
/// nearest-neighbor table per merge — `O(n²)` memory; the per-group
/// script runs several loops over one forest.) Other plans flush via a
/// full reroute.
fn recordable(plan: &StagePlan) -> bool {
    plan.merge == MergeStage::Flat && matches!(plan.topo.order, MergeOrder::MultiMerge { .. })
}

fn sink_bits_equal(a: &Sink, b: &Sink) -> bool {
    a.pos.x.to_bits() == b.pos.x.to_bits()
        && a.pos.y.to_bits() == b.pos.y.to_bits()
        && a.cap.to_bits() == b.cap.to_bits()
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn rc_bits_equal(a: &RcParams, b: &RcParams) -> bool {
    a.r_per_um().to_bits() == b.r_per_um().to_bits()
        && a.c_per_um().to_bits() == b.c_per_um().to_bits()
}

fn instance_bits_equal(a: &Instance, b: &Instance) -> bool {
    a.sink_count() == b.sink_count()
        && a.sinks()
            .iter()
            .zip(b.sinks())
            .all(|(x, y)| sink_bits_equal(x, y))
        && a.groups().group_count() == b.groups().group_count()
        && a.groups().assignment() == b.groups().assignment()
        && bits_equal(a.groups().bounds(), b.groups().bounds())
        && rc_bits_equal(a.rc(), b.rc())
}

/// Applies the batch sequentially to the standing instance and rebuilds a
/// validated [`Instance`]. Bounds and the source are preserved.
fn apply_edits(standing: &Instance, edits: &[EcoEdit]) -> Result<Instance, RouteError> {
    let mut sinks = standing.sinks().to_vec();
    let mut assignment = standing.groups().assignment();
    let mut rc = *standing.rc();
    let group_count = standing.groups().group_count();
    for (i, edit) in edits.iter().enumerate() {
        match *edit {
            EcoEdit::Move { sink, to } => {
                let len = sinks.len();
                sinks
                    .get_mut(sink)
                    .ok_or_else(|| bad_edit(i, "moves", sink, len))?
                    .pos = to;
            }
            EcoEdit::Retune { sink, cap } => {
                let len = sinks.len();
                sinks
                    .get_mut(sink)
                    .ok_or_else(|| bad_edit(i, "retunes", sink, len))?
                    .cap = cap;
            }
            EcoEdit::Insert { sink, group } => {
                if group.index() >= group_count {
                    return Err(RouteError::BadParameter(format!(
                        "ECO edit {i} inserts into group {} of a {group_count}-group instance",
                        group.index()
                    )));
                }
                sinks.push(sink);
                assignment.push(group.index());
            }
            EcoEdit::Delete { sink } => {
                if sink >= sinks.len() {
                    return Err(bad_edit(i, "deletes", sink, sinks.len()));
                }
                sinks.remove(sink);
                assignment.remove(sink);
            }
            EcoEdit::RetuneRc(params) => rc = params,
        }
    }
    let groups = Groups::from_assignments(assignment, group_count)?
        .with_bounds(standing.groups().bounds().to_vec())?;
    Ok(Instance::new(sinks, groups, rc, standing.source())?)
}

fn bad_edit(i: usize, verb: &str, sink: usize, len: usize) -> RouteError {
    RouteError::BadParameter(format!(
        "ECO edit {i} {verb} out-of-range sink {sink} (instance has {len})"
    ))
}

/// Routes the edited instance, cheapest strategy first: subtree-cache
/// splice, then recorded replay, then full reroute.
fn route_edited(
    plan: &StagePlan,
    cache: Option<&SubtreeCache>,
    standing: Option<&Recording>,
    edited: &Instance,
    structural: bool,
    stats: &mut EcoStats,
) -> Result<(RouteOutcome, Option<Recording>), RouteError> {
    // Cached sessions: a flush whose edited instance is already memoized
    // splices it, bit-identical to the cached pipeline's hit path. (For
    // non-recordable plans the pipeline call below does its own lookup.)
    if let (Some(cache), true) = (cache, recordable(plan)) {
        let bb = edited.bounding_box();
        let (ax, ay) = (bb.x0(), bb.y0());
        if let Ok(norm) = edited.translated(-ax, -ay) {
            let (key, verify) = region_fingerprint(&norm, &plan.fingerprint_words());
            if let Some(region) = cache.lookup(key, verify, norm.sink_count()) {
                stats.cache_hit = true;
                let model = plan.model.unwrap_or(DelayModel::elmore(*edited.rc()));
                let tree = region.splice(Point::new(ax, ay), edited.source());
                validate_tree(&tree, edited)?;
                let report = audit(&tree, edited, &model);
                let mut rstats = RouteStats {
                    cache_hit: true,
                    cache_hits: 1,
                    ..RouteStats::default()
                };
                rstats.merge.rounds = region.rounds;
                rstats.merge.merges = region.merges;
                rstats.repair.repair_iterations = region.repair_iterations;
                // The standing recording described the pre-edit instance;
                // the next flush starts from a full (recording) reroute.
                return Ok((
                    RouteOutcome {
                        tree,
                        report,
                        stats: rstats,
                    },
                    None,
                ));
            }
        }
    }
    if !structural && recordable(plan) {
        if let Some(rec) = standing {
            if let Some(done) = try_replay(plan, cache, rec, edited, stats)? {
                return Ok(done);
            }
        }
    }
    stats.full_reroute = true;
    let (mut outcome, recording) = route_full(edited, plan, cache)?;
    if cache.is_some() && outcome.stats.cache_hits == 0 {
        outcome.stats.cache_misses = outcome.stats.cache_misses.max(1);
    }
    Ok((outcome, recording))
}

/// A full route of `inst`, recording the merge script when the plan
/// supports replay.
fn route_full(
    inst: &Instance,
    plan: &StagePlan,
    cache: Option<&SubtreeCache>,
) -> Result<(RouteOutcome, Option<Recording>), RouteError> {
    if !recordable(plan) {
        let outcome = match cache {
            Some(c) => pipeline::run_with_cache(inst, plan, c)?,
            None => pipeline::run(inst, plan)?,
        };
        return Ok((outcome, None));
    }
    match cache {
        None => route_recorded(inst, plan, None),
        Some(c) => {
            let bb = inst.bounding_box();
            let (ax, ay) = (bb.x0(), bb.y0());
            match inst.translated(-ax, -ay) {
                // Mirrors `run_with_cache`: an instance whose normalization
                // overflows silently routes raw (and skips the cache).
                Err(_) => route_recorded(inst, plan, None),
                Ok(norm) => route_recorded(inst, plan, Some((norm, Point::new(ax, ay), c))),
            }
        }
    }
}

/// The recording twin of the staged pipeline: same stages, same order,
/// same arithmetic — plus per-round planner snapshots and per-merge logs.
/// `framed` carries the normalized instance, the anchor, and the cache
/// for cached-frame sessions; `None` routes in the raw frame.
///
/// No fault checkpoints fire here: ECO sessions are not supported inside
/// fault-injection contexts (the fleet/robustness harnesses own those).
fn route_recorded(
    inst: &Instance,
    plan: &StagePlan,
    framed: Option<(Instance, Point, &SubtreeCache)>,
) -> Result<(RouteOutcome, Option<Recording>), RouteError> {
    let mut stats = RouteStats::default();

    // Stage 1: group (and fingerprint, in the cached frame).
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let base = framed.as_ref().map_or(inst, |(norm, _, _)| norm);
    let fingerprint = framed
        .as_ref()
        .map(|(norm, _, _)| region_fingerprint(norm, &plan.fingerprint_words()));
    let regrouped = derive_grouping(base, plan)?;
    let routed_against = regrouped.unwrap_or_else(|| base.clone());
    let model = plan.model.unwrap_or(DelayModel::elmore(*inst.rc()));
    stats.group.seconds = t0.seconds();
    stats.group.allocs = allocmeter::current().saturating_sub(a0);

    // Stage 2: plan/merge, recorded.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let mut forest = MergeForest::for_instance_with_model(&routed_against, model, plan.engine);
    let leaves = forest.leaves();
    let (root, trace, merges, rounds) = merge_until_one_recorded(&mut forest, leaves, &plan.topo);
    stats.merge = StageStats {
        seconds: t0.seconds(),
        rounds: trace.rounds,
        merges: trace.merges,
        repair_iterations: 0,
        allocs: allocmeter::current().saturating_sub(a0),
    };

    // Stage 3: embed.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let tree = forest.embed(root, routed_against.source());
    stats.embed.seconds = t0.seconds();
    stats.embed.allocs = allocmeter::current().saturating_sub(a0);

    // Stage 4: repair.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let tree = if forest.residual() <= plan.engine.skew_tol {
        tree
    } else {
        let repaired = repair_group_skew(
            &tree,
            &routed_against,
            &model,
            plan.engine.skew_tol,
            REPAIR_ITERS,
        );
        stats.repair.repair_iterations = repaired.iterations;
        repaired.tree
    };
    stats.repair.seconds = t0.seconds();
    stats.repair.allocs = allocmeter::current().saturating_sub(a0);

    // Final assembly: raw trees validate in place; cached-frame trees are
    // captured as a region, spliced back (the same single splice call as
    // the cached pipeline), and inserted after validation.
    let (tree, anchor) = match &framed {
        None => {
            validate_tree(&tree, inst)?;
            (tree, None)
        }
        Some((norm, anchor, cache)) => {
            let (key, verify) = fingerprint.expect("fingerprint computed with the frame");
            let region = CachedRegion {
                verify,
                sink_count: norm.sink_count(),
                nodes: tree.nodes().to_vec(),
                rounds: trace.rounds,
                merges: trace.merges,
                repair_iterations: stats.repair.repair_iterations,
            };
            let tree = region.splice(*anchor, inst.source());
            validate_tree(&tree, inst)?;
            cache.insert(key, region);
            (tree, Some((anchor.x.to_bits(), anchor.y.to_bits())))
        }
    };

    // Stage 5: audit — always against the original instance.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let report = audit(&tree, inst, &model);
    stats.audit.seconds = t0.seconds();
    stats.audit.allocs = allocmeter::current().saturating_sub(a0);

    let recording = Recording {
        anchor,
        routed: routed_against,
        forest,
        merges,
        rounds,
    };
    Ok((
        RouteOutcome {
            tree,
            report,
            stats,
        },
        Some(recording),
    ))
}

/// [`merge_until_one_traced`](crate::merge_until_one_traced) plus the
/// replay script: per-round planner snapshots (grid regime only — tail
/// rounds re-plan cheaply) and per-merge [`MergeLog`](astdme_engine::MergeLog)s.
fn merge_until_one_recorded(
    forest: &mut MergeForest,
    start: Vec<NodeId>,
    topo: &TopoConfig,
) -> (NodeId, MergeTrace, MergeRecording, Vec<RoundSnap>) {
    assert!(!start.is_empty(), "need at least one subtree to merge");
    let mut rec = MergeRecording::for_forest(forest);
    let mut rounds = Vec::new();
    if start.len() == 1 {
        return (start[0], MergeTrace::default(), rec, rounds);
    }
    let keys: Vec<usize> = start.iter().map(|n| n.index()).collect();
    let mut planner = MergePlanner::new(&ForestSpace::new(forest), &keys, *topo);
    let mut trace = MergeTrace::default();
    let mut round: Vec<(usize, usize, usize)> = Vec::new();
    while planner.len() > 1 {
        let pairs = planner.plan_round(&ForestSpace::new(forest));
        assert!(!pairs.is_empty(), "planner must make progress");
        // Snapshot *after* planning (caches are flushed, rows are what the
        // round selected from), *before* the merges mutate the forest.
        rounds.push(if planner.in_grid_regime() {
            RoundSnap {
                grid: true,
                rows: planner.nn_snapshot(),
            }
        } else {
            RoundSnap {
                grid: false,
                rows: Vec::new(),
            }
        });
        round.clear();
        for (a, b) in pairs {
            let m = forest.merge_recorded(NodeId::from_index(a), NodeId::from_index(b), &mut rec);
            round.push((a, b, m.index()));
        }
        planner.apply_round(&ForestSpace::new(forest), &round);
        trace.rounds += 1;
        trace.merges += round.len();
    }
    (NodeId::from_index(planner.sole_key()), trace, rec, rounds)
}

/// Attempts a replayed flush. `Ok(None)` means the replay could not run
/// (frame drift, work budget exhausted, sink-count drift) — fall back to
/// a full reroute.
fn try_replay(
    plan: &StagePlan,
    cache: Option<&SubtreeCache>,
    rec: &Recording,
    edited: &Instance,
    stats: &mut EcoStats,
) -> Result<Option<(RouteOutcome, Option<Recording>)>, RouteError> {
    let mut rstats = RouteStats::default();

    // Stage 1: frame and group the edited instance like the recording.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let framed_owned;
    let mut anchor: Option<Point> = None;
    let framed: &Instance = match rec.anchor {
        None => {
            if cache.is_some() {
                return Ok(None);
            }
            edited
        }
        Some((axb, ayb)) => {
            if cache.is_none() {
                return Ok(None);
            }
            let bb = edited.bounding_box();
            // The anchor must not drift: normalization must subtract the
            // exact same bits as the standing route, or clean sinks would
            // land on different normalized coordinates.
            if (bb.x0().to_bits(), bb.y0().to_bits()) != (axb, ayb) {
                return Ok(None);
            }
            let Ok(norm) = edited.translated(-bb.x0(), -bb.y0()) else {
                return Ok(None);
            };
            anchor = Some(Point::new(bb.x0(), bb.y0()));
            framed_owned = norm;
            &framed_owned
        }
    };
    let regrouped = derive_grouping(framed, plan)?;
    let routed_edited = regrouped.unwrap_or_else(|| framed.clone());
    if routed_edited.sink_count() != rec.routed.sink_count() {
        return Ok(None);
    }
    let model = plan.model.unwrap_or(DelayModel::elmore(*edited.rc()));
    // The dirty set, in the routed frame: sinks whose bits changed.
    let dirty: Vec<bool> = routed_edited
        .sinks()
        .iter()
        .zip(rec.routed.sinks())
        .map(|(a, b)| !sink_bits_equal(a, b))
        .collect();
    stats.dirty_sinks = dirty.iter().filter(|&&d| d).count();
    rstats.group.seconds = t0.seconds();
    rstats.group.allocs = allocmeter::current().saturating_sub(a0);

    // Stage 2: the replay proper.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let Some(rep) = replay_merges(rec, &routed_edited, model, plan, &dirty) else {
        return Ok(None);
    };
    rstats.merge = StageStats {
        seconds: t0.seconds(),
        rounds: rep.trace.rounds,
        merges: rep.trace.merges,
        repair_iterations: 0,
        allocs: allocmeter::current().saturating_sub(a0),
    };
    stats.adopted_merges = rep.adopted;
    stats.fresh_merges = rep.fresh;
    stats.replayed_rounds = rep.replayed_rounds;
    stats.planned_rounds = rep.planned_rounds;

    // Stage 3: embed.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let tree = rep.forest.embed(rep.root, routed_edited.source());
    rstats.embed.seconds = t0.seconds();
    rstats.embed.allocs = allocmeter::current().saturating_sub(a0);

    // Stage 4: repair.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let tree = if rep.forest.residual() <= plan.engine.skew_tol {
        tree
    } else {
        let repaired = repair_group_skew(
            &tree,
            &routed_edited,
            &model,
            plan.engine.skew_tol,
            REPAIR_ITERS,
        );
        rstats.repair.repair_iterations = repaired.iterations;
        repaired.tree
    };
    rstats.repair.seconds = t0.seconds();
    rstats.repair.allocs = allocmeter::current().saturating_sub(a0);

    // Assembly: cached-frame trees are captured, spliced, and inserted
    // (this flush's lookup already missed — count it).
    let tree = match (cache, anchor) {
        (Some(cache), Some(anchor)) => {
            let (key, verify) = region_fingerprint(framed, &plan.fingerprint_words());
            let region = CachedRegion {
                verify,
                sink_count: framed.sink_count(),
                nodes: tree.nodes().to_vec(),
                rounds: rep.trace.rounds,
                merges: rep.trace.merges,
                repair_iterations: rstats.repair.repair_iterations,
            };
            let tree = region.splice(anchor, edited.source());
            validate_tree(&tree, edited)?;
            cache.insert(key, region);
            rstats.cache_misses = 1;
            tree
        }
        _ => {
            validate_tree(&tree, edited)?;
            tree
        }
    };

    // Stage 5: audit.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let report = audit(&tree, edited, &model);
    rstats.audit.seconds = t0.seconds();
    rstats.audit.allocs = allocmeter::current().saturating_sub(a0);

    let recording = Recording {
        anchor: rec.anchor,
        routed: routed_edited,
        forest: rep.forest,
        merges: rep.merges,
        rounds: rep.rounds,
    };
    Ok(Some((
        RouteOutcome {
            tree,
            report,
            stats: rstats,
        },
        Some(recording),
    )))
}

/// The result of a successful merge replay.
struct Replayed {
    forest: MergeForest,
    root: NodeId,
    trace: MergeTrace,
    merges: MergeRecording,
    rounds: Vec<RoundSnap>,
    adopted: usize,
    fresh: usize,
    replayed_rounds: usize,
    planned_rounds: usize,
}

/// Replays the recorded merge script against the edited instance.
///
/// Per round, each active subtree is classified against the recorded
/// nearest-neighbor snapshot:
///
/// * **inherited** — the subtree has a standing counterpart, the
///   counterpart is in the round's snapshot, and the recorded neighbor's
///   counterpart is still active: reuse the recorded `(neighbor,
///   region-distance, score)` verbatim (`O(1)`);
/// * **stale** — counterpart exists but its recorded neighbor was
///   consumed: fresh nearest-neighbor scan (exactly what the incremental
///   planner's dirty-list requery computes);
/// * **novel** — no counterpart (the dirty cone): fresh scan, *and* the
///   subtree may take over any inherited entry it sits strictly closer
///   to, mirroring the planner's supersession rule for newly registered
///   subtrees. (Mapped counterparts never take over: their effect on
///   clean entries is already baked into the standing snapshots.)
///
/// Pair selection then ranks every entry by the planner's `(score bits,
/// lo, hi)` key and takes disjoint pairs up to the round limit —
/// the planner's exact selection semantics. Selected pairs whose children
/// both map onto one recorded merge (same orientation) are adopted
/// bit-for-bit; the rest merge fresh. Fresh scans are charged against a
/// work budget of `(64·n + 65536) · max(k, 1)` subtree visits for a
/// k-sink dirty set — the scans are what the dirty cone costs, so the
/// allowance scales with it; exhausting the budget returns `None` (fall
/// back to a full reroute) so flush latency stays bounded even when a
/// replay degenerates.
///
/// Returns `None` also if a round produced no entries — never the case
/// for well-formed recordings, but cheap to guard.
fn replay_merges(
    rec: &Recording,
    edited: &Instance,
    model: DelayModel,
    plan: &StagePlan,
    dirty: &[bool],
) -> Option<Replayed> {
    let topo = &plan.topo;
    let n = edited.sink_count();
    let mut forest = MergeForest::for_instance_with_model(edited, model, plan.engine);
    let leaves = forest.leaves();
    let mut out_rec = MergeRecording::for_forest(&forest);
    if n == 1 {
        return Some(Replayed {
            root: leaves[0],
            forest,
            trace: MergeTrace::default(),
            merges: out_rec,
            rounds: Vec::new(),
            adopted: 0,
            fresh: 0,
            replayed_rounds: 0,
            planned_rounds: 0,
        });
    }

    let std_nodes = rec.forest.node_count();
    // Bidirectional node translation: clean leaves map index-for-index;
    // adopted merges extend the maps as they land.
    let mut std_to_new: Vec<u32> = vec![NO_NODE; std_nodes];
    let mut new_to_std: Vec<u32> = vec![NO_NODE; n];
    for i in 0..n {
        if !dirty[i] {
            std_to_new[i] = i as u32;
            new_to_std[i] = i as u32;
        }
    }
    // Which recorded merge consumed each standing node as a child.
    let mut log_of_child: Vec<u32> = vec![NO_LOG; std_nodes];
    for (li, log) in rec.merges.logs().iter().enumerate() {
        log_of_child[log.a as usize] = li as u32;
        log_of_child[log.b as usize] = li as u32;
    }
    // Per-round row lookup over the snapshot (stamped, reused each round).
    let mut row_stamp: Vec<u32> = vec![0; std_nodes];
    let mut row_slot: Vec<u32> = vec![0; std_nodes];

    // Active set with the exact swap_remove discipline both drivers use —
    // active order is what breaks exact score ties, so it must match.
    let mut active: Vec<usize> = leaves.iter().map(|l| l.index()).collect();
    let mut pos: Vec<u32> = vec![NO_POS; n];
    for (i, &k) in active.iter().enumerate() {
        pos[k] = i as u32;
    }

    let mut out_rounds: Vec<RoundSnap> = Vec::new();
    let mut trace = MergeTrace::default();
    let (mut adopted, mut fresh) = (0usize, 0usize);
    let (mut replayed_rounds, mut planned_rounds) = (0usize, 0usize);
    let mut scan_work: u64 = 0;
    let k_dirty = dirty.iter().filter(|&&d| d).count() as u64;
    let scan_budget: u64 = (64 * n as u64 + 65_536) * k_dirty.max(1);

    let mut round_idx = 0usize;
    while active.len() > 1 {
        let n_present = active.len();
        let snap = rec
            .rounds
            .get(round_idx)
            .filter(|s| s.grid && n_present > BRUTE_FORCE_CUTOFF);
        let pairs: Vec<(usize, usize)> = match snap {
            None => {
                // Tail rounds (and rounds the recording cannot cover):
                // re-plan from scratch — the reference planner, which the
                // incremental planner is equivalence-tested against.
                planned_rounds += 1;
                out_rounds.push(RoundSnap {
                    grid: false,
                    rows: Vec::new(),
                });
                let pairs = plan_round(&ForestSpace::new(&forest), &active, topo);
                assert!(!pairs.is_empty(), "planner must make progress");
                pairs
            }
            Some(snap) => {
                replayed_rounds += 1;
                let stamp = round_idx as u32 + 1;
                for (ri, row) in snap.rows.iter().enumerate() {
                    if row.key < std_nodes {
                        row_stamp[row.key] = stamp;
                        row_slot[row.key] = ri as u32;
                    }
                }
                let mut nn_of: Vec<Option<(usize, f64, u64)>> = vec![None; n_present];
                let mut inherited = vec![false; n_present];
                let mut refresh: Vec<usize> = Vec::new();
                let mut novel: Vec<usize> = Vec::new();
                for (ai, &x) in active.iter().enumerate() {
                    let m = new_to_std[x];
                    if m == NO_NODE || row_stamp[m as usize] != stamp {
                        refresh.push(ai);
                        novel.push(ai);
                        continue;
                    }
                    let row = &snap.rows[row_slot[m as usize] as usize];
                    let valid = row.nn.and_then(|(v, rd, score)| {
                        let sv = *std_to_new.get(v)?;
                        if sv == NO_NODE {
                            return None;
                        }
                        let sv = sv as usize;
                        (sv < pos.len() && pos[sv] != NO_POS).then_some((sv, rd, score))
                    });
                    match valid {
                        Some(t) => {
                            nn_of[ai] = Some(t);
                            inherited[ai] = true;
                        }
                        None => refresh.push(ai),
                    }
                }
                scan_work += (refresh.len() + novel.len()) as u64 * n_present as u64;
                if scan_work > scan_budget {
                    return None;
                }
                {
                    let space = ForestSpace::new(&forest);
                    // Fresh own-neighbor scans: exact region-distance
                    // argmin, first-wins in active order (the brute-force
                    // planner's tie rule).
                    for &ai in &refresh {
                        let x = active[ai];
                        let rx = forest.representative_region(NodeId::from_index(x));
                        let mut best: Option<(usize, f64)> = None;
                        for &y in &active {
                            if y == x {
                                continue;
                            }
                            let d =
                                rx.distance(&forest.representative_region(NodeId::from_index(y)));
                            if best.is_none_or(|(_, bd)| d < bd) {
                                best = Some((y, d));
                            }
                        }
                        let (v, rd) = best.expect("two or more active subtrees");
                        let exact =
                            forest.merge_distance(NodeId::from_index(x), NodeId::from_index(v));
                        let (lo, hi) = if x < v { (x, v) } else { (v, x) };
                        nn_of[ai] =
                            Some((v, rd, score_bits(pair_score(&space, topo, lo, hi, exact))));
                    }
                    // Takeover: a novel subtree strictly closer than an
                    // inherited entry's recorded neighbor supersedes it.
                    for &ci in &novel {
                        let d = active[ci];
                        let rd_region = forest.representative_region(NodeId::from_index(d));
                        for ui in 0..n_present {
                            if ui == ci || !inherited[ui] {
                                continue;
                            }
                            let Some((_, urd, _)) = nn_of[ui] else {
                                continue;
                            };
                            let u = active[ui];
                            let nd = forest
                                .representative_region(NodeId::from_index(u))
                                .distance(&rd_region);
                            if nd < urd {
                                let exact = forest
                                    .merge_distance(NodeId::from_index(u), NodeId::from_index(d));
                                let (lo, hi) = if u < d { (u, d) } else { (d, u) };
                                nn_of[ui] = Some((
                                    d,
                                    nd,
                                    score_bits(pair_score(&space, topo, lo, hi, exact)),
                                ));
                            }
                        }
                    }
                }
                // Rank by the planner's (score bits, lo, hi) key and take
                // disjoint pairs up to the round limit.
                let mut ranked: Vec<(u64, usize, usize)> = Vec::with_capacity(n_present);
                for (ai, &x) in active.iter().enumerate() {
                    let (v, _, score) = nn_of[ai]?;
                    let (lo, hi) = if x < v { (x, v) } else { (v, x) };
                    ranked.push((score, lo, hi));
                }
                ranked.sort_unstable();
                ranked.dedup();
                let pairs = select_disjoint(
                    ranked.iter().map(|&(_, a, b)| (a, b)),
                    round_limit(topo.order, n_present),
                );
                if pairs.is_empty() {
                    return None;
                }
                // The replay's own snapshot, in the new id space, so the
                // next flush replays off this route.
                out_rounds.push(RoundSnap {
                    grid: true,
                    rows: active
                        .iter()
                        .enumerate()
                        .map(|(ai, &x)| NnSnapshotRow {
                            key: x,
                            nn: nn_of[ai],
                        })
                        .collect(),
                });
                pairs
            }
        };

        for &(x, y) in &pairs {
            let mx = new_to_std[x];
            let my = new_to_std[y];
            let mut adopted_as: Option<(NodeId, u32)> = None;
            if mx != NO_NODE && my != NO_NODE {
                let li = log_of_child[mx as usize];
                if li != NO_LOG && li == log_of_child[my as usize] {
                    let log = &rec.merges.logs()[li as usize];
                    // Orientation matters: merge(a, b) != merge(b, a) in
                    // candidate layout, so only the recorded orientation
                    // reproduces what a from-scratch run would execute.
                    if log.a == mx && log.b == my {
                        if let Some(m) = forest.adopt_merge(
                            NodeId::from_index(x),
                            NodeId::from_index(y),
                            &rec.forest,
                            log,
                            &rec.merges,
                            &std_to_new,
                            Some(&mut out_rec),
                        ) {
                            adopted_as = Some((m, log.result));
                        }
                    }
                }
            }
            let m = match adopted_as {
                Some((m, result)) => {
                    adopted += 1;
                    std_to_new[result as usize] = m.index() as u32;
                    m
                }
                None => {
                    fresh += 1;
                    forest.merge_recorded(
                        NodeId::from_index(x),
                        NodeId::from_index(y),
                        &mut out_rec,
                    )
                }
            };
            let mk = m.index();
            for k in [x, y] {
                let i = pos[k] as usize;
                pos[k] = NO_POS;
                active.swap_remove(i);
                if i < active.len() {
                    pos[active[i]] = i as u32;
                }
            }
            if mk >= pos.len() {
                pos.resize(mk + 1, NO_POS);
            }
            pos[mk] = active.len() as u32;
            active.push(mk);
            if mk >= new_to_std.len() {
                new_to_std.resize(mk + 1, NO_NODE);
            }
            if let Some((_, result)) = adopted_as {
                new_to_std[mk] = result;
            }
        }
        trace.rounds += 1;
        trace.merges += pairs.len();
        round_idx += 1;
    }

    Some(Replayed {
        root: NodeId::from_index(active[0]),
        forest,
        trace,
        merges: out_rec,
        rounds: out_rounds,
        adopted,
        fresh,
        replayed_rounds,
        planned_rounds,
    })
}
