//! Routing errors.

use core::fmt;
use std::error::Error;

use astdme_engine::InstanceError;

use crate::pipeline::StageId;

/// Error produced by a [`crate::ClockRouter`].
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// The instance (or a derived re-grouping) failed validation.
    Instance(InstanceError),
    /// A router parameter is invalid (e.g. a negative skew bound).
    BadParameter(String),
    /// The router panicked while routing this instance. Produced by the
    /// fleet layer ([`crate::fleet`]), which catches per-instance panics
    /// so one crashing route cannot poison the rest of a batch; carries
    /// the batch index and sink count of the instance that died, so sweep
    /// failure accounting and service logs can attribute the fault.
    Panicked {
        /// Batch (or sweep variant) index of the instance that panicked.
        instance: usize,
        /// Sink count of the instance that panicked.
        sinks: usize,
        /// The panic message.
        message: String,
    },
    /// The per-instance deadline budget ran out between pipeline stages
    /// (see [`crate::fleet::BatchPolicy::deadline_seconds`]). The
    /// overrunning instance fails alone; survivors' outcomes return
    /// unchanged.
    DeadlineExceeded {
        /// Batch (or sweep variant) index of the overrunning instance.
        instance: usize,
        /// The stage after which the overrun was detected.
        stage: StageId,
        /// The configured budget, in seconds.
        budget_seconds: f64,
        /// Elapsed wall-clock at the failing checkpoint, in seconds.
        elapsed_seconds: f64,
    },
    /// The pipeline produced a structurally invalid tree (non-finite
    /// wire/position, or sinks not covered exactly once). Surfaced as a
    /// typed error instead of an audit panic so batch callers can account
    /// for it per instance; exercised on purpose by
    /// [`FaultKind::Corrupt`](crate::fault::FaultKind::Corrupt) injection.
    MalformedOutput {
        /// Batch index when routed through the fleet layer, `None` for a
        /// direct `route_traced` call.
        instance: Option<usize>,
        /// What the output validation found.
        detail: String,
    },
}

impl RouteError {
    /// A short, stable identifier for failure accounting (robustness
    /// reports, bench JSON, service logs): one of `"instance"`,
    /// `"bad_parameter"`, `"panicked"`, `"deadline_exceeded"`,
    /// `"malformed_output"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Instance(_) => "instance",
            Self::BadParameter(_) => "bad_parameter",
            Self::Panicked { .. } => "panicked",
            Self::DeadlineExceeded { .. } => "deadline_exceeded",
            Self::MalformedOutput { .. } => "malformed_output",
        }
    }
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Instance(e) => write!(f, "invalid instance: {e}"),
            Self::BadParameter(msg) => write!(f, "invalid router parameter: {msg}"),
            Self::Panicked {
                instance,
                sinks,
                message,
            } => write!(
                f,
                "router panicked on instance {instance} (n={sinks}): {message}"
            ),
            Self::DeadlineExceeded {
                instance,
                stage,
                budget_seconds,
                elapsed_seconds,
            } => write!(
                f,
                "instance {instance} exceeded its deadline after the {stage} stage: \
                 {elapsed_seconds:.4}s elapsed of a {budget_seconds:.4}s budget"
            ),
            Self::MalformedOutput { instance, detail } => match instance {
                Some(i) => write!(f, "malformed routed tree for instance {i}: {detail}"),
                None => write!(f, "malformed routed tree: {detail}"),
            },
        }
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Instance(e) => Some(e),
            Self::BadParameter(_)
            | Self::Panicked { .. }
            | Self::DeadlineExceeded { .. }
            | Self::MalformedOutput { .. } => None,
        }
    }
}

impl From<InstanceError> for RouteError {
    fn from(e: InstanceError) -> Self {
        Self::Instance(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_instance_errors() {
        let e: RouteError = InstanceError::NoSinks.into();
        assert!(matches!(e, RouteError::Instance(_)));
        assert!(e.to_string().contains("no sinks"));
        assert!(e.source().is_some());
        assert_eq!(e.kind(), "instance");
    }

    #[test]
    fn bad_parameter_display() {
        let e = RouteError::BadParameter("bound must be non-negative".into());
        assert!(e.to_string().contains("bound"));
        assert!(e.source().is_none());
        assert_eq!(e.kind(), "bad_parameter");
    }

    #[test]
    fn panicked_attributes_the_instance() {
        let e = RouteError::Panicked {
            instance: 7,
            sinks: 250,
            message: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(s.contains("panicked"));
        assert!(s.contains("instance 7"));
        assert!(s.contains("n=250"));
        assert!(s.contains("index out of bounds"));
        assert!(e.source().is_none());
        assert_eq!(e.kind(), "panicked");
    }

    #[test]
    fn deadline_display_names_stage_and_budget() {
        let e = RouteError::DeadlineExceeded {
            instance: 3,
            stage: StageId::Merge,
            budget_seconds: 0.5,
            elapsed_seconds: 0.75,
        };
        let s = e.to_string();
        assert!(s.contains("instance 3"));
        assert!(s.contains("merge"));
        assert!(s.contains("0.5"));
        assert_eq!(e.kind(), "deadline_exceeded");
    }

    #[test]
    fn malformed_output_display() {
        let anon = RouteError::MalformedOutput {
            instance: None,
            detail: "node 0 wire is NaN".into(),
        };
        assert!(anon.to_string().contains("malformed"));
        let indexed = RouteError::MalformedOutput {
            instance: Some(4),
            detail: "node 0 wire is NaN".into(),
        };
        assert!(indexed.to_string().contains("instance 4"));
        assert_eq!(indexed.kind(), "malformed_output");
    }
}
