//! Routing errors.

use core::fmt;
use std::error::Error;

use astdme_engine::InstanceError;

/// Error produced by a [`crate::ClockRouter`].
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// The instance (or a derived re-grouping) failed validation.
    Instance(InstanceError),
    /// A router parameter is invalid (e.g. a negative skew bound).
    BadParameter(String),
    /// The router panicked while routing this instance. Produced by the
    /// fleet layer ([`crate::fleet`]), which catches per-instance panics
    /// so one crashing route cannot poison the rest of a batch; carries
    /// the panic message.
    Panicked(String),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Instance(e) => write!(f, "invalid instance: {e}"),
            Self::BadParameter(msg) => write!(f, "invalid router parameter: {msg}"),
            Self::Panicked(msg) => write!(f, "router panicked: {msg}"),
        }
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Instance(e) => Some(e),
            Self::BadParameter(_) | Self::Panicked(_) => None,
        }
    }
}

impl From<InstanceError> for RouteError {
    fn from(e: InstanceError) -> Self {
        Self::Instance(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_instance_errors() {
        let e: RouteError = InstanceError::NoSinks.into();
        assert!(matches!(e, RouteError::Instance(_)));
        assert!(e.to_string().contains("no sinks"));
        assert!(e.source().is_some());
    }

    #[test]
    fn bad_parameter_display() {
        let e = RouteError::BadParameter("bound must be non-negative".into());
        assert!(e.to_string().contains("bound"));
        assert!(e.source().is_none());
    }

    #[test]
    fn panicked_display() {
        let e = RouteError::Panicked("index out of bounds".into());
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("index out of bounds"));
        assert!(e.source().is_none());
    }
}
