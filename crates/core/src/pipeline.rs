//! The staged routing pipeline every router runs through.
//!
//! All four routers used to carry bespoke `route()` bodies that repeated
//! the same flow with small variations. The flow is now explicit — five
//! stages, each timed:
//!
//! 1. **group** — derive the instance the tree is routed against (keep the
//!    instance's own groups, or collapse to one global group with an
//!    optional bound);
//! 2. **merge** — build the merge forest and run the bottom-up planning
//!    loop (flat, or per-group-then-stitch);
//! 3. **embed** — top-down embedding of the surviving root into a
//!    [`RoutedTree`];
//! 4. **repair** — the post-embedding skew repair pass, skipped when the
//!    engine reports no residual;
//! 5. **audit** — independent verification against the *original*
//!    instance and the routing model.
//!
//! A router is just a [`StagePlan`] — the stage configuration — and
//! [`run`] is the one body that executes it. [`RouteOutcome`] carries the
//! tree together with the audit report and per-stage [`StageStats`], so
//! harnesses (the bench tables, the fleet layer, `examples/fleet.rs`) stop
//! hand-timing routers from the outside.

use core::fmt;
use std::time::Instant;

use astdme_delay::DelayModel;
use astdme_engine::{
    audit, repair_group_skew, AuditReport, EngineConfig, GroupId, Groups, Instance, MergeForest,
    RoutedTree,
};
use astdme_topo::TopoConfig;

use crate::drivers::{merge_until_one_traced, MergeTrace};
use crate::{fault, RouteError};

/// Iteration budget for the post-embedding skew repair pass.
const REPAIR_ITERS: usize = 80;

/// The five pipeline stages, in execution order. Names the stage a
/// [`fault`] checkpoint fired at — the injection point of a
/// [`fault::Fault`] and the attribution of a
/// [`RouteError::DeadlineExceeded`] overrun.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageId {
    /// Stage 1: deriving the routed-against instance.
    Group,
    /// Stage 2: forest construction plus the bottom-up merge loop.
    Merge,
    /// Stage 3: top-down embedding.
    Embed,
    /// Stage 4: post-embedding skew repair.
    Repair,
    /// Stage 5: the independent audit.
    Audit,
}

impl StageId {
    /// The stage's lowercase name, as used in error messages and bench
    /// JSON: `"group"`, `"merge"`, `"embed"`, `"repair"`, `"audit"`.
    pub fn name(self) -> &'static str {
        match self {
            Self::Group => "group",
            Self::Merge => "merge",
            Self::Embed => "embed",
            Self::Repair => "repair",
            Self::Audit => "audit",
        }
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock and work counters for one pipeline stage. Fields that do
/// not apply to a stage (e.g. `rounds` outside the merge stage) stay zero.
///
/// The `seconds` fields are also the fleet layer's scheduling feedback:
/// observed stage wall-clock fed to a [`crate::fleet::CostModel`] refines
/// the cost estimates its [`crate::fleet::BatchPlan`] orders batches by.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Wall-clock seconds spent in the stage.
    pub seconds: f64,
    /// Planning rounds executed (merge stage only).
    pub rounds: usize,
    /// Merges performed (merge stage only).
    pub merges: usize,
    /// Iterations of the skew-repair loop (repair stage only; zero when
    /// the stage was a no-op).
    pub repair_iterations: usize,
}

/// Per-stage statistics of one routing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouteStats {
    /// Stage 1: deriving the routed-against instance.
    pub group: StageStats,
    /// Stage 2: forest construction plus the bottom-up merge loop.
    pub merge: StageStats,
    /// Stage 3: top-down embedding.
    pub embed: StageStats,
    /// Stage 4: post-embedding skew repair (no-op on cleanly solved
    /// instances).
    pub repair: StageStats,
    /// Stage 5: the independent audit.
    pub audit: StageStats,
}

impl RouteStats {
    /// Wall-clock of the routing stages proper (group through repair) —
    /// what an external timer around [`crate::ClockRouter::route`] used to
    /// measure, excluding the audit stage.
    pub fn route_seconds(&self) -> f64 {
        self.group.seconds + self.merge.seconds + self.embed.seconds + self.repair.seconds
    }

    /// Wall-clock of the whole pipeline including the audit stage.
    pub fn total_seconds(&self) -> f64 {
        self.route_seconds() + self.audit.seconds
    }
}

/// The result of a traced routing run: the tree, the independent audit of
/// it (against the original instance and the routing model), and the
/// per-stage statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// The routed tree — exactly what [`crate::ClockRouter::route`]
    /// returns.
    pub tree: RoutedTree,
    /// Independent audit of `tree` against the original instance.
    pub report: AuditReport,
    /// Per-stage wall-clock and work counters.
    pub stats: RouteStats,
}

/// Stage 1 configuration: which instance the tree is routed against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupingStage {
    /// Route against the instance's own groups (AST-DME).
    Keep,
    /// Collapse every sink into one global group: zero-skew when `bound`
    /// is `None` (greedy-DME, stitching), bounded-skew otherwise
    /// (EXT-BST).
    Single {
        /// The global skew bound, or `None` for zero skew.
        bound: Option<f64>,
    },
}

/// Stage 2 configuration: how the bottom-up merge loop covers the leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeStage {
    /// One loop over all leaves (every router except stitching).
    Flat,
    /// Finish each of the *original* instance's groups before any
    /// cross-group merge (the stitch-per-group strawman).
    PerGroupThenStitch,
}

/// A router expressed as stage configuration: everything [`run`] needs to
/// execute the five-stage pipeline. The four [`crate::ClockRouter`]
/// implementations are thin builders of this struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePlan {
    /// Delay model override; `None` means Elmore over the instance's RC.
    pub model: Option<DelayModel>,
    /// Engine configuration (candidate budgets, skew tolerance).
    pub engine: EngineConfig,
    /// Merge-order configuration.
    pub topo: TopoConfig,
    /// Stage 1: grouping.
    pub grouping: GroupingStage,
    /// Stage 2: merge coverage.
    pub merge: MergeStage,
}

/// Executes the staged pipeline over `inst`.
///
/// Produces exactly the tree the pre-pipeline bespoke router bodies
/// produced (the stages are the same operations in the same order); the
/// outcome additionally carries the audit and the per-stage stats.
///
/// # Errors
///
/// Returns [`RouteError`] if a derived re-grouping is invalid.
pub fn run(inst: &Instance, plan: &StagePlan) -> Result<RouteOutcome, RouteError> {
    let mut stats = RouteStats::default();

    // Stage 1: group.
    let t0 = Instant::now();
    let regrouped = match plan.grouping {
        GroupingStage::Keep => None,
        GroupingStage::Single { bound } => {
            let mut groups = Groups::single(inst.sink_count())?;
            if let Some(b) = bound {
                groups = groups.with_uniform_bound(b)?;
            }
            Some(inst.with_groups(groups)?)
        }
    };
    let routed_against = regrouped.as_ref().unwrap_or(inst);
    let model = plan.model.unwrap_or(DelayModel::elmore(*inst.rc()));
    stats.group.seconds = t0.elapsed().as_secs_f64();
    fault::checkpoint(StageId::Group)?;

    // Stage 2: plan/merge.
    let t0 = Instant::now();
    let mut forest = MergeForest::for_instance_with_model(routed_against, model, plan.engine);
    let leaves = forest.leaves();
    let (root, trace) = match plan.merge {
        MergeStage::Flat => merge_until_one_traced(&mut forest, leaves, &plan.topo),
        MergeStage::PerGroupThenStitch => {
            let mut trace = MergeTrace::default();
            let mut group_roots = Vec::with_capacity(inst.groups().group_count());
            for g in 0..inst.groups().group_count() {
                let members: Vec<_> = inst
                    .groups()
                    .members(GroupId(g as u32))
                    .iter()
                    .map(|&s| leaves[s])
                    .collect();
                let (root, t) = merge_until_one_traced(&mut forest, members, &plan.topo);
                trace.absorb(t);
                group_roots.push(root);
            }
            let (root, t) = merge_until_one_traced(&mut forest, group_roots, &plan.topo);
            trace.absorb(t);
            (root, trace)
        }
    };
    stats.merge = StageStats {
        seconds: t0.elapsed().as_secs_f64(),
        rounds: trace.rounds,
        merges: trace.merges,
        repair_iterations: 0,
    };
    fault::checkpoint(StageId::Merge)?;

    // Stage 3: embed.
    let t0 = Instant::now();
    let tree = forest.embed(root, routed_against.source());
    stats.embed.seconds = t0.elapsed().as_secs_f64();
    let tree = corrupt_if_requested(tree, StageId::Embed);
    fault::checkpoint(StageId::Embed)?;

    // Stage 4: repair. The pass snakes leaf edges when a deep offset
    // conflict left residual skew (see [`repair_group_skew`]); on cleanly
    // solved instances it is skipped outright.
    let t0 = Instant::now();
    let tree = if forest.residual() <= plan.engine.skew_tol {
        tree
    } else {
        let repaired = repair_group_skew(
            &tree,
            routed_against,
            &model,
            plan.engine.skew_tol,
            REPAIR_ITERS,
        );
        stats.repair.repair_iterations = repaired.iterations;
        repaired.tree
    };
    stats.repair.seconds = t0.elapsed().as_secs_f64();
    let tree = corrupt_if_requested(tree, StageId::Repair);
    fault::checkpoint(StageId::Repair)?;

    // Output validation: the audit panics on a structurally broken tree
    // (uncovered sinks), and downstream metrics would silently absorb a
    // NaN wire. Reject malformed output as a typed per-instance error
    // before auditing — the path [`fault::FaultKind::Corrupt`] injection
    // exercises on purpose.
    validate_tree(&tree, inst)?;

    // Stage 5: audit — against the *original* instance, so the report's
    // per-group skews refer to the groups the caller asked about, not a
    // relaxed routing surrogate.
    let t0 = Instant::now();
    let report = audit(&tree, inst, &model);
    stats.audit.seconds = t0.elapsed().as_secs_f64();
    fault::checkpoint(StageId::Audit)?;

    Ok(RouteOutcome {
        tree,
        report,
        stats,
    })
}

/// Applies an injected [`fault::FaultKind::Corrupt`] to the stage's tree
/// (root wire becomes NaN) when one is scheduled here; identity otherwise.
fn corrupt_if_requested(tree: RoutedTree, stage: StageId) -> RoutedTree {
    if !fault::corrupt_requested(stage) {
        return tree;
    }
    let mut nodes = tree.nodes().to_vec();
    if let Some(node) = nodes.first_mut() {
        node.wire = f64::NAN;
    }
    RoutedTree::new(tree.source(), nodes)
}

/// Structural validation of a routed tree against the instance it claims
/// to route: finite non-negative wire lengths, finite positions, and every
/// sink covered exactly once.
///
/// # Errors
///
/// Returns [`RouteError::MalformedOutput`] (attributed to the current
/// fleet batch index, when routing under one) describing the first
/// violation found.
fn validate_tree(tree: &RoutedTree, inst: &Instance) -> Result<(), RouteError> {
    let malformed = |detail: String| RouteError::MalformedOutput {
        instance: fault::current_instance(),
        detail,
    };
    let mut covered = vec![false; inst.sink_count()];
    for (i, node) in tree.nodes().iter().enumerate() {
        if !node.wire.is_finite() || node.wire < 0.0 {
            return Err(malformed(format!(
                "node {i} has a non-finite or negative wire length ({})",
                node.wire
            )));
        }
        if !node.pos.x.is_finite() || !node.pos.y.is_finite() {
            return Err(malformed(format!("node {i} has a non-finite position")));
        }
        if let Some(sink) = node.sink {
            if sink >= covered.len() {
                return Err(malformed(format!(
                    "node {i} claims out-of-range sink {sink}"
                )));
            }
            if covered[sink] {
                return Err(malformed(format!("sink {sink} is covered twice")));
            }
            covered[sink] = true;
        }
    }
    if let Some(missing) = covered.iter().position(|&c| !c) {
        return Err(malformed(format!("sink {missing} is not covered")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use astdme_delay::RcParams;
    use astdme_engine::Sink;
    use astdme_geom::Point;

    fn inst(n: usize, k: usize) -> Instance {
        let sinks: Vec<Sink> = (0..n)
            .map(|i| Sink::new(Point::new(700.0 * i as f64, (i % 3) as f64 * 250.0), 1e-14))
            .collect();
        let assignment: Vec<usize> = (0..n).map(|i| i % k).collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, k).unwrap(),
            RcParams::default(),
            Point::new(0.0, 4000.0),
        )
        .unwrap()
    }

    fn ast_plan() -> StagePlan {
        StagePlan {
            model: None,
            engine: EngineConfig::default(),
            topo: TopoConfig::default(),
            grouping: GroupingStage::Keep,
            merge: MergeStage::Flat,
        }
    }

    #[test]
    fn pipeline_counts_rounds_and_merges() {
        let out = run(&inst(9, 3), &ast_plan()).unwrap();
        assert_eq!(out.tree.sink_nodes().count(), 9);
        // n leaves merge down to one root: exactly n - 1 merges.
        assert_eq!(out.stats.merge.merges, 8);
        assert!(out.stats.merge.rounds >= 1);
        assert!(out.stats.merge.rounds <= out.stats.merge.merges);
        assert!(out.stats.route_seconds() <= out.stats.total_seconds());
    }

    #[test]
    fn audit_stage_reports_against_original_groups() {
        // A zero-bound grouped instance routed as one global zero-skew
        // group: intra-group skew (of the original groups) must be ~0.
        let out = run(
            &inst(8, 2),
            &StagePlan {
                grouping: GroupingStage::Single { bound: None },
                ..ast_plan()
            },
        )
        .unwrap();
        assert!(out.report.max_intra_group_skew() < 1e-16);
        assert!(out.report.global_skew() < 1e-16);
    }

    #[test]
    fn per_group_script_counts_all_subloops() {
        let out = run(
            &inst(10, 2),
            &StagePlan {
                grouping: GroupingStage::Single { bound: None },
                merge: MergeStage::PerGroupThenStitch,
                ..ast_plan()
            },
        )
        .unwrap();
        // Two groups of five (4 merges each) plus the stitch (1 merge).
        assert_eq!(out.stats.merge.merges, 9);
        assert_eq!(out.tree.sink_nodes().count(), 10);
    }
}
