//! The staged routing pipeline every router runs through.
//!
//! All four routers used to carry bespoke `route()` bodies that repeated
//! the same flow with small variations. The flow is now explicit — five
//! stages, each timed:
//!
//! 1. **group** — derive the instance the tree is routed against (keep the
//!    instance's own groups, or collapse to one global group with an
//!    optional bound);
//! 2. **merge** — build the merge forest and run the bottom-up planning
//!    loop (flat, or per-group-then-stitch);
//! 3. **embed** — top-down embedding of the surviving root into a
//!    [`RoutedTree`];
//! 4. **repair** — the post-embedding skew repair pass, skipped when the
//!    engine reports no residual;
//! 5. **audit** — independent verification against the *original*
//!    instance and the routing model.
//!
//! A router is just a [`StagePlan`] — the stage configuration — and
//! [`run`] is the one body that executes it. [`RouteOutcome`] carries the
//! tree together with the audit report and per-stage [`StageStats`], so
//! harnesses (the bench tables, the fleet layer, `examples/fleet.rs`) stop
//! hand-timing routers from the outside.

use crate::stopwatch::Stopwatch;
use core::fmt;
use std::sync::Arc;

use astdme_cache::{region_fingerprint, CachedRegion, SubtreeCache};
use astdme_delay::DelayModel;
use astdme_engine::{
    audit, repair_group_skew, AuditReport, EngineConfig, GroupId, Groups, Instance, MergeForest,
    NodeId, RoutedTree,
};
use astdme_geom::Point;
use astdme_topo::TopoConfig;

use crate::drivers::{merge_until_one_traced, MergeTrace};
use crate::{allocmeter, fault, RouteError};

/// Iteration budget for the post-embedding skew repair pass (shared with
/// the ECO flush path, which must repair identically to reroute
/// bit-identically).
pub(crate) const REPAIR_ITERS: usize = 80;

/// The five pipeline stages, in execution order. Names the stage a
/// [`fault`] checkpoint fired at — the injection point of a
/// [`fault::Fault`] and the attribution of a
/// [`RouteError::DeadlineExceeded`] overrun.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageId {
    /// Stage 1: deriving the routed-against instance.
    Group,
    /// Stage 2: forest construction plus the bottom-up merge loop.
    Merge,
    /// Stage 3: top-down embedding.
    Embed,
    /// Stage 4: post-embedding skew repair.
    Repair,
    /// Stage 5: the independent audit.
    Audit,
}

impl StageId {
    /// The stage's lowercase name, as used in error messages and bench
    /// JSON: `"group"`, `"merge"`, `"embed"`, `"repair"`, `"audit"`.
    pub fn name(self) -> &'static str {
        match self {
            Self::Group => "group",
            Self::Merge => "merge",
            Self::Embed => "embed",
            Self::Repair => "repair",
            Self::Audit => "audit",
        }
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock and work counters for one pipeline stage. Fields that do
/// not apply to a stage (e.g. `rounds` outside the merge stage) stay zero.
///
/// The `seconds` fields are also the fleet layer's scheduling feedback:
/// observed stage wall-clock fed to a [`crate::fleet::CostModel`] refines
/// the cost estimates its [`crate::fleet::BatchPlan`] orders batches by.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Wall-clock seconds spent in the stage.
    pub seconds: f64,
    /// Planning rounds executed (merge stage only).
    pub rounds: usize,
    /// Merges performed (merge stage only).
    pub merges: usize,
    /// Iterations of the skew-repair loop (repair stage only; zero when
    /// the stage was a no-op).
    pub repair_iterations: usize,
    /// Heap allocations observed during the stage, via
    /// [`crate::allocmeter`]. Zero unless the hosting binary installs an
    /// instrumented allocator (the scaling bench does).
    pub allocs: u64,
}

/// Per-stage statistics of one routing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouteStats {
    /// Stage 1: deriving the routed-against instance.
    pub group: StageStats,
    /// Stage 2: forest construction plus the bottom-up merge loop.
    pub merge: StageStats,
    /// Stage 3: top-down embedding.
    pub embed: StageStats,
    /// Stage 4: post-embedding skew repair (no-op on cleanly solved
    /// instances).
    pub repair: StageStats,
    /// Stage 5: the independent audit.
    pub audit: StageStats,
    /// Whether the merge/embed/repair work was satisfied from the
    /// content-addressed subtree cache instead of recomputed. Always
    /// `false` when no cache is attached. The outcome is bit-identical
    /// either way — this flag (and the stage seconds) are the only
    /// difference.
    pub cache_hit: bool,
    /// Subtree-cache lookups this run satisfied from the cache (0 or 1 for
    /// a single pipeline run; aggregate across a batch to derive a hit
    /// rate from route stats alone). Zero when no cache is attached.
    pub cache_hits: u64,
    /// Subtree-cache lookups this run missed (or failed verification).
    /// Zero when no cache is attached.
    pub cache_misses: u64,
}

impl RouteStats {
    /// Wall-clock of the routing stages proper (group through repair) —
    /// what an external timer around [`crate::ClockRouter::route`] used to
    /// measure, excluding the audit stage.
    pub fn route_seconds(&self) -> f64 {
        self.group.seconds + self.merge.seconds + self.embed.seconds + self.repair.seconds
    }

    /// Wall-clock of the whole pipeline including the audit stage.
    pub fn total_seconds(&self) -> f64 {
        self.route_seconds() + self.audit.seconds
    }

    /// Heap allocations across all five stages (see
    /// [`StageStats::allocs`]).
    pub fn total_allocs(&self) -> u64 {
        self.group.allocs
            + self.merge.allocs
            + self.embed.allocs
            + self.repair.allocs
            + self.audit.allocs
    }
}

/// The result of a traced routing run: the tree, the independent audit of
/// it (against the original instance and the routing model), and the
/// per-stage statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// The routed tree — exactly what [`crate::ClockRouter::route`]
    /// returns.
    pub tree: RoutedTree,
    /// Independent audit of `tree` against the original instance.
    pub report: AuditReport,
    /// Per-stage wall-clock and work counters.
    pub stats: RouteStats,
}

/// Stage 1 configuration: which instance the tree is routed against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupingStage {
    /// Route against the instance's own groups (AST-DME).
    Keep,
    /// Collapse every sink into one global group: zero-skew when `bound`
    /// is `None` (greedy-DME, stitching), bounded-skew otherwise
    /// (EXT-BST).
    Single {
        /// The global skew bound, or `None` for zero skew.
        bound: Option<f64>,
    },
}

/// Stage 2 configuration: how the bottom-up merge loop covers the leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeStage {
    /// One loop over all leaves (every router except stitching).
    Flat,
    /// Finish each of the *original* instance's groups before any
    /// cross-group merge (the stitch-per-group strawman).
    PerGroupThenStitch,
}

/// A router expressed as stage configuration: everything [`run`] needs to
/// execute the five-stage pipeline. The four [`crate::ClockRouter`]
/// implementations are thin builders of this struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePlan {
    /// Delay model override; `None` means Elmore over the instance's RC.
    pub model: Option<DelayModel>,
    /// Engine configuration (candidate budgets, skew tolerance).
    pub engine: EngineConfig,
    /// Merge-order configuration.
    pub topo: TopoConfig,
    /// Stage 1: grouping.
    pub grouping: GroupingStage,
    /// Stage 2: merge coverage.
    pub merge: MergeStage,
}

impl StagePlan {
    /// Stable `u64` encoding of every routing-relevant knob of the plan,
    /// for content-addressed cache fingerprints: the delay-model override
    /// (tagged; `None` = Elmore over the instance's own RC, which the
    /// instance fingerprint already covers), the engine words (excluding
    /// the diagnostics-only `debug` flag), the merge-order words, and the
    /// grouping/merge-stage discriminants with the grouping bound bits.
    /// Two plans route any instance identically iff their words agree.
    pub fn fingerprint_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(16);
        match self.model {
            None => words.push(0),
            Some(model) => {
                words.push(1);
                words.extend(model.fingerprint_words());
            }
        }
        words.extend(self.engine.fingerprint_words());
        words.extend(self.topo.fingerprint_words());
        match self.grouping {
            GroupingStage::Keep => words.push(0),
            GroupingStage::Single { bound: None } => words.push(1),
            GroupingStage::Single { bound: Some(b) } => {
                words.push(2);
                words.push(b.to_bits());
            }
        }
        words.push(match self.merge {
            MergeStage::Flat => 0,
            MergeStage::PerGroupThenStitch => 1,
        });
        words
    }
}

/// Executes the staged pipeline over `inst`.
///
/// Produces exactly the tree the pre-pipeline bespoke router bodies
/// produced (the stages are the same operations in the same order); the
/// outcome additionally carries the audit and the per-stage stats.
///
/// When the fleet layer attached a [`SubtreeCache`] to the current route
/// context (via [`crate::fleet::BatchPolicy::with_cache`]), the run
/// dispatches to [`run_with_cache`]; otherwise the historic uncached path
/// runs unchanged.
///
/// # Errors
///
/// Returns [`RouteError`] if a derived re-grouping is invalid.
pub fn run(inst: &Instance, plan: &StagePlan) -> Result<RouteOutcome, RouteError> {
    match fault::current_cache() {
        Some(cache) => run_with_cache(inst, plan, &cache),
        None => run_uncached(inst, plan),
    }
}

/// Derives the stage-1 regrouping of `inst` under the plan, or `None`
/// when the instance's own groups are kept.
pub(crate) fn derive_grouping(
    inst: &Instance,
    plan: &StagePlan,
) -> Result<Option<Instance>, RouteError> {
    match plan.grouping {
        GroupingStage::Keep => Ok(None),
        GroupingStage::Single { bound } => {
            let mut groups = Groups::single(inst.sink_count())?;
            if let Some(b) = bound {
                groups = groups.with_uniform_bound(b)?;
            }
            Ok(Some(inst.with_groups(groups)?))
        }
    }
}

/// Stage 2 proper: the bottom-up merge loop over `routed_against`'s
/// forest. `group_source` supplies the *original* group structure the
/// [`MergeStage::PerGroupThenStitch`] script iterates (the regrouped
/// surrogate has collapsed it).
fn merge_stage(
    forest: &mut MergeForest,
    group_source: &Instance,
    plan: &StagePlan,
) -> (NodeId, MergeTrace) {
    let leaves = forest.leaves();
    match plan.merge {
        MergeStage::Flat => merge_until_one_traced(forest, leaves, &plan.topo),
        MergeStage::PerGroupThenStitch => {
            let mut trace = MergeTrace::default();
            let mut group_roots = Vec::with_capacity(group_source.groups().group_count());
            for g in 0..group_source.groups().group_count() {
                let members: Vec<_> = group_source
                    .groups()
                    .members(GroupId(g as u32))
                    .iter()
                    .map(|&s| leaves[s])
                    .collect();
                let (root, t) = merge_until_one_traced(forest, members, &plan.topo);
                trace.absorb(t);
                group_roots.push(root);
            }
            let (root, t) = merge_until_one_traced(forest, group_roots, &plan.topo);
            trace.absorb(t);
            (root, trace)
        }
    }
}

/// The historic cache-free pipeline body.
fn run_uncached(inst: &Instance, plan: &StagePlan) -> Result<RouteOutcome, RouteError> {
    let mut stats = RouteStats::default();

    // Stage 1: group.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let regrouped = derive_grouping(inst, plan)?;
    let routed_against = regrouped.as_ref().unwrap_or(inst);
    let model = plan.model.unwrap_or(DelayModel::elmore(*inst.rc()));
    stats.group.seconds = t0.seconds();
    stats.group.allocs = allocmeter::current().saturating_sub(a0);
    fault::checkpoint(StageId::Group)?;

    // Stage 2: plan/merge.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let mut forest = MergeForest::for_instance_with_model(routed_against, model, plan.engine);
    let (root, trace) = merge_stage(&mut forest, inst, plan);
    stats.merge = StageStats {
        seconds: t0.seconds(),
        rounds: trace.rounds,
        merges: trace.merges,
        repair_iterations: 0,
        allocs: allocmeter::current().saturating_sub(a0),
    };
    fault::checkpoint(StageId::Merge)?;

    // Stage 3: embed.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let tree = forest.embed(root, routed_against.source());
    stats.embed.seconds = t0.seconds();
    stats.embed.allocs = allocmeter::current().saturating_sub(a0);
    let tree = corrupt_if_requested(tree, StageId::Embed);
    fault::checkpoint(StageId::Embed)?;

    // Stage 4: repair. The pass snakes leaf edges when a deep offset
    // conflict left residual skew (see [`repair_group_skew`]); on cleanly
    // solved instances it is skipped outright.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let tree = if forest.residual() <= plan.engine.skew_tol {
        tree
    } else {
        let repaired = repair_group_skew(
            &tree,
            routed_against,
            &model,
            plan.engine.skew_tol,
            REPAIR_ITERS,
        );
        stats.repair.repair_iterations = repaired.iterations;
        repaired.tree
    };
    stats.repair.seconds = t0.seconds();
    stats.repair.allocs = allocmeter::current().saturating_sub(a0);
    let tree = corrupt_if_requested(tree, StageId::Repair);
    fault::checkpoint(StageId::Repair)?;

    // Output validation: the audit panics on a structurally broken tree
    // (uncovered sinks), and downstream metrics would silently absorb a
    // NaN wire. Reject malformed output as a typed per-instance error
    // before auditing — the path [`fault::FaultKind::Corrupt`] injection
    // exercises on purpose.
    validate_tree(&tree, inst)?;

    // Stage 5: audit — against the *original* instance, so the report's
    // per-group skews refer to the groups the caller asked about, not a
    // relaxed routing surrogate.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let report = audit(&tree, inst, &model);
    stats.audit.seconds = t0.seconds();
    stats.audit.allocs = allocmeter::current().saturating_sub(a0);
    fault::checkpoint(StageId::Audit)?;

    Ok(RouteOutcome {
        tree,
        report,
        stats,
    })
}

/// The region produced by the merge/embed/repair stages of the cached
/// pipeline: shared from the cache on a hit, freshly routed on a miss.
enum Planned {
    Hit(Arc<CachedRegion>),
    Fresh(CachedRegion),
}

impl Planned {
    fn region(&self) -> &CachedRegion {
        match self {
            Self::Hit(r) => r,
            Self::Fresh(r) => r,
        }
    }
}

/// Executes the staged pipeline over `inst` with a content-addressed
/// subtree cache consulted between the group and merge stages.
///
/// The instance is **translation-normalized** first (the bounding-box
/// minimum corner becomes the origin) and stages 2–4 route the normalized
/// instance; both on a cache hit and on a miss, the final tree is then
/// assembled by the *same* [`CachedRegion::splice`] call — translate the
/// normalized nodes back by the anchor, root at the caller's source — so
/// **a hit is bit-identical to a recompute**: tree, audit report, and
/// wirelength, at every thread count and under every eviction order —
/// outcomes are a pure function of the instance and plan, never of cache
/// state. The audit always runs fresh against the original instance; only
/// planned geometry is ever cached, never verdicts about it.
///
/// Relative to the cache-*free* [`run`]: for an instance whose
/// bounding-box minimum corner is already the origin, normalization is
/// the exact identity (`a - a = +0.0`) and the cached outcome equals the
/// uncached one. For other instances the normalized frame can shift
/// last-ulp merge coordinates (floating-point addition is not translation
/// invariant), so the two *modes* may differ in final bits — each mode is
/// internally exact, and both are independently audited.
///
/// Fault-injection semantics are preserved: checkpoints fire in the same
/// stage order as the uncached path on both hit and miss, and a
/// [`fault::FaultKind::Corrupt`] injection poisons the final tree so
/// validation rejects it *before* the cache insert — corrupted output can
/// never be memoized.
///
/// An instance whose normalization fails (coordinates so large the
/// translation overflows) silently falls back to the uncached path.
///
/// # Errors
///
/// Returns [`RouteError`] if a derived re-grouping is invalid.
pub fn run_with_cache(
    inst: &Instance,
    plan: &StagePlan,
    cache: &SubtreeCache,
) -> Result<RouteOutcome, RouteError> {
    let mut stats = RouteStats::default();

    // Stage 1: group + canonicalize. The anchor is the bounding-box
    // minimum corner; subtracting a coordinate from itself is exactly
    // +0.0, so an instance already anchored at the origin normalizes to
    // itself bit for bit.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let bb = inst.bounding_box();
    let (ax, ay) = (bb.x0(), bb.y0());
    let Ok(norm) = inst.translated(-ax, -ay) else {
        return run_uncached(inst, plan);
    };
    let (key, verify) = region_fingerprint(&norm, &plan.fingerprint_words());
    let regrouped = derive_grouping(&norm, plan)?;
    let routed_against = regrouped.as_ref().unwrap_or(&norm);
    let model = plan.model.unwrap_or(DelayModel::elmore(*inst.rc()));
    stats.group.seconds = t0.seconds();
    stats.group.allocs = allocmeter::current().saturating_sub(a0);
    fault::checkpoint(StageId::Group)?;

    // Stage 2: plan/merge — satisfied by a verified cache hit, or routed
    // fresh on the normalized instance.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    enum MergePhase {
        Hit(Arc<CachedRegion>),
        Miss {
            forest: Box<MergeForest>,
            root: NodeId,
            trace: MergeTrace,
        },
    }
    let merged = match cache.lookup(key, verify, norm.sink_count()) {
        Some(region) => {
            stats.cache_hit = true;
            stats.cache_hits = 1;
            stats.merge.rounds = region.rounds;
            stats.merge.merges = region.merges;
            MergePhase::Hit(region)
        }
        None => {
            stats.cache_misses = 1;
            let mut forest = Box::new(MergeForest::for_instance_with_model(
                routed_against,
                model,
                plan.engine,
            ));
            let (root, trace) = merge_stage(&mut forest, &norm, plan);
            stats.merge.rounds = trace.rounds;
            stats.merge.merges = trace.merges;
            MergePhase::Miss {
                forest,
                root,
                trace,
            }
        }
    };
    stats.merge.seconds = t0.seconds();
    stats.merge.allocs = allocmeter::current().saturating_sub(a0);
    fault::checkpoint(StageId::Merge)?;

    // Stage 3: embed (a hit has nothing left to embed — the cached nodes
    // *are* the embedded subtree). Corruption injected at this stage or
    // the next poisons the final spliced tree below, exactly like the
    // uncached path's output.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    enum EmbedPhase {
        Hit(Arc<CachedRegion>),
        Miss {
            forest: Box<MergeForest>,
            trace: MergeTrace,
            tree: RoutedTree,
        },
    }
    let embedded = match merged {
        MergePhase::Hit(region) => EmbedPhase::Hit(region),
        MergePhase::Miss {
            forest,
            root,
            trace,
        } => {
            let tree = forest.embed(root, routed_against.source());
            EmbedPhase::Miss {
                forest,
                trace,
                tree,
            }
        }
    };
    stats.embed.seconds = t0.seconds();
    stats.embed.allocs = allocmeter::current().saturating_sub(a0);
    let mut corrupt = fault::corrupt_requested(StageId::Embed);
    fault::checkpoint(StageId::Embed)?;

    // Stage 4: repair, then capture the normalized region.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let planned = match embedded {
        EmbedPhase::Hit(region) => {
            stats.repair.repair_iterations = region.repair_iterations;
            Planned::Hit(region)
        }
        EmbedPhase::Miss {
            forest,
            trace,
            tree,
        } => {
            let tree = if forest.residual() <= plan.engine.skew_tol {
                tree
            } else {
                let repaired = repair_group_skew(
                    &tree,
                    routed_against,
                    &model,
                    plan.engine.skew_tol,
                    REPAIR_ITERS,
                );
                stats.repair.repair_iterations = repaired.iterations;
                repaired.tree
            };
            Planned::Fresh(CachedRegion {
                verify,
                sink_count: norm.sink_count(),
                nodes: tree.nodes().to_vec(),
                rounds: trace.rounds,
                merges: trace.merges,
                repair_iterations: stats.repair.repair_iterations,
            })
        }
    };
    stats.repair.seconds = t0.seconds();
    stats.repair.allocs = allocmeter::current().saturating_sub(a0);
    corrupt = corrupt || fault::corrupt_requested(StageId::Repair);
    fault::checkpoint(StageId::Repair)?;

    // Final assembly: ONE splice call shared by hit and miss — identical
    // arithmetic is what makes hit ≡ recompute bit-exact. The source comes
    // from the original instance verbatim (never round-tripped through the
    // translation).
    let tree = planned.region().splice(Point::new(ax, ay), inst.source());
    let tree = if corrupt { corrupt_tree(tree) } else { tree };

    // Validation precedes the insert: corrupted (or otherwise malformed)
    // output returns here and is never memoized.
    validate_tree(&tree, inst)?;
    if let Planned::Fresh(region) = planned {
        cache.insert(key, region);
    }

    // Stage 5: audit — always fresh, always against the original
    // instance. Cache hits reuse geometry, never verdicts.
    let t0 = Stopwatch::start();
    let a0 = allocmeter::current();
    let report = audit(&tree, inst, &model);
    stats.audit.seconds = t0.seconds();
    stats.audit.allocs = allocmeter::current().saturating_sub(a0);
    fault::checkpoint(StageId::Audit)?;

    Ok(RouteOutcome {
        tree,
        report,
        stats,
    })
}

/// Applies an injected [`fault::FaultKind::Corrupt`] to the stage's tree
/// (root wire becomes NaN) when one is scheduled here; identity otherwise.
fn corrupt_if_requested(tree: RoutedTree, stage: StageId) -> RoutedTree {
    if !fault::corrupt_requested(stage) {
        return tree;
    }
    corrupt_tree(tree)
}

/// The corruption a [`fault::FaultKind::Corrupt`] fault injects: the root
/// wire becomes NaN, which output validation rejects.
fn corrupt_tree(tree: RoutedTree) -> RoutedTree {
    let mut nodes = tree.nodes().to_vec();
    if let Some(node) = nodes.first_mut() {
        node.wire = f64::NAN;
    }
    RoutedTree::new(tree.source(), nodes)
}

/// Structural validation of a routed tree against the instance it claims
/// to route: finite non-negative wire lengths, finite positions, and every
/// sink covered exactly once.
///
/// # Errors
///
/// Returns [`RouteError::MalformedOutput`] (attributed to the current
/// fleet batch index, when routing under one) describing the first
/// violation found.
pub(crate) fn validate_tree(tree: &RoutedTree, inst: &Instance) -> Result<(), RouteError> {
    let malformed = |detail: String| RouteError::MalformedOutput {
        instance: fault::current_instance(),
        detail,
    };
    let mut covered = vec![false; inst.sink_count()];
    for (i, node) in tree.nodes().iter().enumerate() {
        if !node.wire.is_finite() || node.wire < 0.0 {
            return Err(malformed(format!(
                "node {i} has a non-finite or negative wire length ({})",
                node.wire
            )));
        }
        if !node.pos.x.is_finite() || !node.pos.y.is_finite() {
            return Err(malformed(format!("node {i} has a non-finite position")));
        }
        if let Some(sink) = node.sink {
            if sink >= covered.len() {
                return Err(malformed(format!(
                    "node {i} claims out-of-range sink {sink}"
                )));
            }
            if covered[sink] {
                return Err(malformed(format!("sink {sink} is covered twice")));
            }
            covered[sink] = true;
        }
    }
    if let Some(missing) = covered.iter().position(|&c| !c) {
        return Err(malformed(format!("sink {missing} is not covered")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use astdme_delay::RcParams;
    use astdme_engine::Sink;
    use astdme_geom::Point;

    fn inst(n: usize, k: usize) -> Instance {
        let sinks: Vec<Sink> = (0..n)
            .map(|i| Sink::new(Point::new(700.0 * i as f64, (i % 3) as f64 * 250.0), 1e-14))
            .collect();
        let assignment: Vec<usize> = (0..n).map(|i| i % k).collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, k).unwrap(),
            RcParams::default(),
            Point::new(0.0, 4000.0),
        )
        .unwrap()
    }

    fn ast_plan() -> StagePlan {
        StagePlan {
            model: None,
            engine: EngineConfig::default(),
            topo: TopoConfig::default(),
            grouping: GroupingStage::Keep,
            merge: MergeStage::Flat,
        }
    }

    #[test]
    fn pipeline_counts_rounds_and_merges() {
        let out = run(&inst(9, 3), &ast_plan()).unwrap();
        assert_eq!(out.tree.sink_nodes().count(), 9);
        // n leaves merge down to one root: exactly n - 1 merges.
        assert_eq!(out.stats.merge.merges, 8);
        assert!(out.stats.merge.rounds >= 1);
        assert!(out.stats.merge.rounds <= out.stats.merge.merges);
        assert!(out.stats.route_seconds() <= out.stats.total_seconds());
    }

    #[test]
    fn audit_stage_reports_against_original_groups() {
        // A zero-bound grouped instance routed as one global zero-skew
        // group: intra-group skew (of the original groups) must be ~0.
        let out = run(
            &inst(8, 2),
            &StagePlan {
                grouping: GroupingStage::Single { bound: None },
                ..ast_plan()
            },
        )
        .unwrap();
        assert!(out.report.max_intra_group_skew() < 1e-16);
        assert!(out.report.global_skew() < 1e-16);
    }

    #[test]
    fn per_group_script_counts_all_subloops() {
        let out = run(
            &inst(10, 2),
            &StagePlan {
                grouping: GroupingStage::Single { bound: None },
                merge: MergeStage::PerGroupThenStitch,
                ..ast_plan()
            },
        )
        .unwrap();
        // Two groups of five (4 merges each) plus the stitch (1 merge).
        assert_eq!(out.stats.merge.merges, 9);
        assert_eq!(out.tree.sink_nodes().count(), 10);
    }
}
