//! Criterion benches for the merging-order ablation (Ch. V.F enhancement
//! 1): simultaneous multi-merging exists to cut runtime; measure it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use astdme_core::{AstDme, ClockRouter, MergeOrder, TopoConfig};
use astdme_instances::{partition, r_benchmark, RBench};

fn bench_merge_order(c: &mut Criterion) {
    let placement = r_benchmark(RBench::R1, 2006);
    let inst = partition::intermingled(&placement, 6, 2012).expect("valid");

    let mut g = c.benchmark_group("merge_order_r1");
    g.sample_size(10);
    g.bench_function("greedy_single_pair", |b| {
        b.iter(|| {
            AstDme::new()
                .with_topo(TopoConfig::greedy())
                .route(black_box(&inst))
                .unwrap()
        })
    });
    g.bench_function("multi_merge_25pct", |b| {
        b.iter(|| {
            AstDme::new()
                .with_topo(TopoConfig {
                    order: MergeOrder::MultiMerge { fraction: 0.25 },
                    delay_weight: 0.0,
                })
                .route(black_box(&inst))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_merge_order);
criterion_main!(benches);
