//! Criterion benches for the table experiments: routing runtime of
//! AST-DME and EXT-BST on the smallest circuit (r1) in both partition
//! regimes — the CPU column of Tables I and II at bench precision.
//!
//! The full tables (all circuits, wirelength/skew columns) are produced by
//! the `table1` / `table2` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use astdme_bench::PAPER_BOUND;
use astdme_core::{AstDme, ClockRouter, ExtBst};
use astdme_instances::{partition, r_benchmark, RBench};

fn bench_tables(c: &mut Criterion) {
    let placement = r_benchmark(RBench::R1, 2006);
    let single = partition::single(&placement).expect("valid");
    let clustered = partition::clustered(&placement, 6, 0)
        .and_then(|i| i.with_groups(i.groups().clone().with_uniform_bound(PAPER_BOUND)?))
        .expect("valid");
    let intermingled = partition::intermingled(&placement, 6, 2012)
        .and_then(|i| i.with_groups(i.groups().clone().with_uniform_bound(PAPER_BOUND)?))
        .expect("valid");

    let mut g = c.benchmark_group("tables_r1");
    g.sample_size(10);
    g.bench_function("ext_bst_baseline", |b| {
        b.iter(|| ExtBst::new(PAPER_BOUND).route(black_box(&single)).unwrap())
    });
    g.bench_function("ast_dme_clustered_k6_table1", |b| {
        b.iter(|| AstDme::new().route(black_box(&clustered)).unwrap())
    });
    g.bench_function("ast_dme_intermingled_k6_table2", |b| {
        b.iter(|| AstDme::new().route(black_box(&intermingled)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
