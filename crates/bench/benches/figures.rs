//! Criterion benches for the figure reproductions: the toy scenarios of
//! Figs. 1, 2 and 5 (see the corresponding binaries for the actual
//! wirelength/skew numbers — these measure their routing cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use astdme_core::{
    AstDme, ClockRouter, EngineConfig, ExtBst, GreedyDme, Groups, Instance, MergeForest, Point,
    RcParams, Sink, StitchPerGroup,
};

fn fig1_instance() -> Instance {
    Instance::new(
        vec![
            Sink::new(Point::new(0.0, 0.0), 4e-14),
            Sink::new(Point::new(3000.0, 1000.0), 1e-14),
            Sink::new(Point::new(7000.0, 0.0), 5e-14),
            Sink::new(Point::new(10000.0, 2000.0), 1e-14),
        ],
        Groups::single(4).expect("4 sinks"),
        RcParams::default(),
        Point::new(5000.0, 6000.0),
    )
    .expect("valid")
}

fn fig2_instance() -> Instance {
    Instance::new(
        vec![
            Sink::new(Point::new(0.0, 0.0), 2e-14),
            Sink::new(Point::new(1000.0, 0.0), 2e-14),
            Sink::new(Point::new(2000.0, 0.0), 2e-14),
            Sink::new(Point::new(3000.0, 0.0), 2e-14),
        ],
        Groups::from_assignments(vec![0, 1, 0, 1], 2).expect("valid"),
        RcParams::default(),
        Point::new(1500.0, 1500.0),
    )
    .expect("valid")
}

fn fig5_instance() -> Instance {
    Instance::new(
        vec![
            Sink::new(Point::new(0.0, 0.0), 1e-14),
            Sink::new(Point::new(1200.0, 0.0), 4e-14),
            Sink::new(Point::new(5000.0, 300.0), 5e-14),
            Sink::new(Point::new(6400.0, 0.0), 1e-14),
        ],
        Groups::from_assignments(vec![0, 1, 0, 1], 2).expect("valid"),
        RcParams::default(),
        Point::new(3200.0, 4000.0),
    )
    .expect("valid")
}

fn bench_figures(c: &mut Criterion) {
    let f1 = fig1_instance();
    let f2 = fig2_instance();
    let f5 = fig5_instance();

    let mut g = c.benchmark_group("figures");
    g.bench_function("fig1_zero_skew_dme", |b| {
        b.iter(|| GreedyDme::new().route(black_box(&f1)).unwrap())
    });
    g.bench_function("fig1_bounded_skew_bst", |b| {
        b.iter(|| ExtBst::new(5e-13).route(black_box(&f1)).unwrap())
    });
    g.bench_function("fig2_stitch_per_group", |b| {
        b.iter(|| StitchPerGroup::new().route(black_box(&f2)).unwrap())
    });
    g.bench_function("fig2_ast_dme", |b| {
        b.iter(|| AstDme::new().route(black_box(&f2)).unwrap())
    });
    g.bench_function("fig5_instance2_sneaking", |b| {
        b.iter(|| {
            // The figure's explicit merge order through the engine.
            let cfg = EngineConfig {
                fuse_groups: false,
                ..EngineConfig::default()
            };
            let mut forest = MergeForest::for_instance(black_box(&f5), cfg);
            let leaves = forest.leaves();
            let c1 = forest.merge(leaves[0], leaves[1]);
            let c2 = forest.merge(leaves[2], leaves[3]);
            let root = forest.merge(c1, c2);
            forest.embed(root, f5.source())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
