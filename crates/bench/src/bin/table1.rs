//! Regenerates **Table I** of the paper: AST-DME vs EXT-BST with
//! *clustered* sink groups on r1–r5.
//!
//! Usage: `cargo run -p astdme-bench --release --bin table1 [--quick] [--json]`

use astdme_bench::{circuits, flags, run_table, to_json, to_markdown, PartitionMode};

fn main() {
    let (quick, json) = flags();
    let rows = run_table(PartitionMode::Clustered, &circuits(quick), 2006);
    if json {
        println!("{}", to_json(&rows));
    } else {
        println!("Table I — clustered sink groups (paper: 2.05%-3.62% reduction)\n");
        println!("{}", to_markdown(&rows));
    }
}
