//! Regenerates **Table II** of the paper: AST-DME vs EXT-BST with
//! *intermingled* sink groups on r1–r5 — the "difficult instances".
//!
//! Usage: `cargo run -p astdme-bench --release --bin table2 [--quick] [--json]`

use astdme_bench::{circuits, flags, run_table, to_json, to_markdown, PartitionMode};

fn main() {
    let (quick, json) = flags();
    let rows = run_table(PartitionMode::Intermingled, &circuits(quick), 2006);
    if json {
        println!("{}", to_json(&rows));
    } else {
        println!("Table II — intermingled sink groups (paper: 9.39%-14.50% reduction)\n");
        println!("{}", to_markdown(&rows));
    }
}
