//! Regenerates **Figure 1** of the paper: zero-skew DME routing vs
//! bounded-skew BST routing on a small instance — the relaxed bound yields
//! less total wirelength (the paper's toy shows 17 vs 16).

use astdme_core::{
    audit, ClockRouter, DelayModel, ExtBst, GreedyDme, Groups, Instance, Point, RcParams, Sink,
};

fn main() {
    // Four sinks placed so exact zero skew needs off-center merge points.
    let sinks = vec![
        Sink::new(Point::new(0.0, 0.0), 4e-14),
        Sink::new(Point::new(3000.0, 1000.0), 1e-14),
        Sink::new(Point::new(7000.0, 0.0), 5e-14),
        Sink::new(Point::new(10000.0, 2000.0), 1e-14),
    ];
    let inst = Instance::new(
        sinks,
        Groups::single(4).expect("4 sinks"),
        RcParams::default(),
        Point::new(5000.0, 6000.0),
    )
    .expect("valid instance");
    let model = DelayModel::elmore(*inst.rc());

    let zst = GreedyDme::new().route(&inst).expect("ZST routes");
    let rz = audit(&zst, &inst, &model);
    // A generous bound relative to this toy's delays, mirroring the
    // figure's bounded-skew tree.
    let bst = ExtBst::new(5e-13).route(&inst).expect("BST routes");
    let rb = audit(&bst, &inst, &model);

    println!("Figure 1 — zero-skew vs bounded-skew routing\n");
    println!("| Routing | Wirelength (um) | Skew (ps) |");
    println!("|---------|-----------------|-----------|");
    println!(
        "| (a) zero-skew DME     | {:.0} | {:.3} |",
        rz.wirelength(),
        rz.global_skew() * 1e12
    );
    println!(
        "| (b) bounded-skew BST  | {:.0} | {:.3} |",
        rb.wirelength(),
        rb.global_skew() * 1e12
    );
    println!(
        "\nBounded-skew saves {:.1}% wirelength (paper's toy: 17 vs 16 ~ 5.9%).",
        (1.0 - rb.wirelength() / rz.wirelength()) * 100.0
    );
    assert!(
        rb.wirelength() <= rz.wirelength() + 1e-9,
        "bounded-skew routing must not use more wire than zero-skew"
    );
}
